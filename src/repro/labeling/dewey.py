"""Dewey order labels (Tatarinov et al., SIGMOD'02).

A node's label is the tuple of 1-based sibling ordinals on the path from the
root (the root's label is the empty tuple).  The paper cites Dewey as the
prefix-flavoured scheme that "achieves a good tradeoff between query
performance and dynamic updates"; we include it as an extension baseline.

Ancestor test: proper tuple prefix.  Document order: lexicographic
comparison of the tuples — Dewey encodes global order directly, which is
exactly why order-sensitive insertion forces it to relabel following
siblings (and their subtrees), like the other prefix schemes.
"""

from __future__ import annotations

from typing import Tuple

from repro.labeling.base import LabelingScheme
from repro.xmlkit.tree import XmlElement

__all__ = ["DeweyScheme"]

DeweyLabel = Tuple[int, ...]


class DeweyScheme(LabelingScheme):
    """Dewey decimal labeling with canonical (order-encoding) components."""

    name = "dewey"

    def _assign_labels(self, root: XmlElement) -> None:
        self._set_label(root, ())
        stack = [root]
        while stack:
            node = stack.pop()
            label: DeweyLabel = self.label_of(node)
            for ordinal, child in enumerate(node.children, start=1):
                self._set_label(child, label + (ordinal,))
                stack.append(child)

    def is_ancestor_label(self, ancestor_label: DeweyLabel, descendant_label: DeweyLabel) -> bool:
        return (
            len(ancestor_label) < len(descendant_label)
            and descendant_label[: len(ancestor_label)] == ancestor_label
        )

    def label_bits(self, label: DeweyLabel) -> int:
        """Component bits plus one delimiter bit per component.

        Dewey needs component boundaries to be recoverable; we charge the
        cheapest possible delimiter (one bit per component), which slightly
        favours Dewey in space comparisons.
        """
        return sum(max(component.bit_length(), 1) + 1 for component in label)

    def document_order_key(self, label: DeweyLabel) -> DeweyLabel:
        """Dewey labels sort in document order lexicographically."""
        return label
