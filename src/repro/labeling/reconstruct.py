"""Reconstructing tree structure from labels alone.

The paper's first requirement for a labeling scheme is that it be
*deterministic*: "the relationships between two nodes can be uniquely and
quickly determined simply by examining their labels".  Taken to its
logical end, a deterministic scheme's label set encodes the entire tree —
this module performs that reconstruction, which is both a practical
recovery tool (rebuild structure from a persisted label column) and the
strongest possible correctness oracle: ``reconstruct(label_tree(T)) ≅ T``
is asserted across schemes in the test suite.

Supported label families:

* prime top-down (:class:`~repro.labeling.prime.PrimeLabel`) — the parent's
  full label is ``value // self_label``; sibling order is ascending
  self-label (primes are issued in document order, and Opt2's power-of-two
  leaf labels order leaves after conversion to their issue ordinal);
* intervals — containment nesting, sibling order by start;
* prefix ``Bits`` — the prefix lattice, sibling order lexicographic;
* Dewey tuples — trivially.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import LabelingError
from repro.labeling.interval import OrderSizeLabel, StartEndLabel
from repro.labeling.prefix import Bits
from repro.labeling.prime import PrimeLabel
from repro.xmlkit.tree import XmlElement

__all__ = [
    "reconstruct_from_prime",
    "reconstruct_from_intervals",
    "reconstruct_from_prefix",
    "reconstruct_from_dewey",
]

TaggedLabel = Tuple[str, object]


def _attach_sorted(
    items: Sequence[Tuple[str, object]],
    parent_of: Dict[int, int],
    order_key,
) -> XmlElement:
    """Build the tree given each item's parent index and a sibling key.

    ``parent_of`` maps item index -> parent item index (roots map to -1);
    exactly one root is required.
    """
    roots = [index for index in range(len(items)) if parent_of[index] == -1]
    if len(roots) != 1:
        raise LabelingError(f"label set has {len(roots)} roots; expected exactly 1")
    elements = [XmlElement(tag) for tag, _label in items]
    children: Dict[int, List[int]] = {index: [] for index in range(len(items))}
    for index in range(len(items)):
        parent = parent_of[index]
        if parent >= 0:
            children[parent].append(index)
    for parent, kids in children.items():
        kids.sort(key=lambda index: order_key(items[index][1]))
        for kid in kids:
            elements[parent].append(elements[kid])
    return elements[roots[0]]


def reconstruct_from_prime(
    labeled: Sequence[TaggedLabel], sc_table=None
) -> XmlElement:
    """Rebuild the tree from ``(tag, PrimeLabel)`` pairs.

    Structure (who is whose parent) is always exact — that is the
    determinism property.  Sibling *order* is exact for the original
    scheme on a bulk-labeled document (primes ascend in document order);
    for Opt2 labelings or post-update documents, pass the document's
    ``sc_table`` (:class:`repro.order.sc_table.SCTable`) and order is
    recovered from the SC values — exactly the paper's division of labour
    between labels (structure) and SC table (order).
    """
    by_value: Dict[int, int] = {}
    for index, (_tag, label) in enumerate(labeled):
        if not isinstance(label, PrimeLabel):
            raise LabelingError(f"expected PrimeLabel, got {label!r}")
        if label.value in by_value:
            raise LabelingError(f"duplicate label value {label.value}")
        by_value[label.value] = index
    parent_of: Dict[int, int] = {}
    for index, (_tag, label) in enumerate(labeled):
        if label.value == 1:
            parent_of[index] = -1
            continue
        parent_value = label.parent_value
        parent_index = by_value.get(parent_value)
        if parent_index is None:
            raise LabelingError(
                f"label {label.value} has no parent with value {parent_value}"
            )
        parent_of[index] = parent_index

    if sc_table is not None:

        def sibling_key(label: PrimeLabel):
            if label.self_label == 1:
                return -1  # the root; never a sibling anyway
            return sc_table.order_of(label.self_label)

    else:

        def sibling_key(label: PrimeLabel):
            # Original scheme: primes are issued in document order, so raw
            # magnitude is sibling order.  (Opt2 interleaves two monotone
            # sequences — primes for internals, powers of two for leaves —
            # whose relative order is NOT recoverable from magnitude; that
            # is precisely why the paper stores order in the SC table.)
            return label.self_label

    return _attach_sorted(list(labeled), parent_of, sibling_key)


def reconstruct_from_intervals(labeled: Sequence[TaggedLabel]) -> XmlElement:
    """Rebuild from ``(tag, OrderSizeLabel | StartEndLabel)`` pairs."""

    def as_range(label) -> Tuple[int, int]:
        if isinstance(label, OrderSizeLabel):
            return (label.order, label.order + label.size)
        if isinstance(label, StartEndLabel):
            return (int(label.start), int(label.end))
        raise LabelingError(f"expected an interval label, got {label!r}")

    indexed = sorted(range(len(labeled)), key=lambda i: as_range(labeled[i][1])[0])
    parent_of: Dict[int, int] = {}
    stack: List[int] = []  # indices of open ancestors
    for index in indexed:
        start, _end = as_range(labeled[index][1])
        while stack and as_range(labeled[stack[-1]][1])[1] < start:
            stack.pop()
        parent_of[index] = stack[-1] if stack else -1
        stack.append(index)
    return _attach_sorted(list(labeled), parent_of, lambda label: as_range(label)[0])


def reconstruct_from_prefix(labeled: Sequence[TaggedLabel]) -> XmlElement:
    """Rebuild from ``(tag, Bits)`` pairs (Prefix-1 or Prefix-2 labels)."""
    for _tag, label in labeled:
        if not isinstance(label, Bits):
            raise LabelingError(f"expected Bits, got {label!r}")
    # Parent = the longest proper prefix present in the set.  Sorting by
    # length groups candidates; labels are unique.
    indexed = sorted(range(len(labeled)), key=lambda i: len(labeled[i][1]))
    by_string: Dict[str, int] = {}
    parent_of: Dict[int, int] = {}
    for index in indexed:
        label: Bits = labeled[index][1]
        text = str(label)
        if text in by_string:
            raise LabelingError(f"duplicate prefix label {text!r}")
        parent_of[index] = -1
        for length in range(len(text) - 1, -1, -1):
            candidate = by_string.get(text[:length])
            if candidate is not None:
                parent_of[index] = candidate
                break
        by_string[text] = index
    return _attach_sorted(list(labeled), parent_of, lambda label: str(label))


def reconstruct_from_dewey(labeled: Sequence[TaggedLabel]) -> XmlElement:
    """Rebuild from ``(tag, tuple)`` Dewey pairs."""
    by_tuple: Dict[tuple, int] = {}
    for index, (_tag, label) in enumerate(labeled):
        if not isinstance(label, tuple):
            raise LabelingError(f"expected a Dewey tuple, got {label!r}")
        if label in by_tuple:
            raise LabelingError(f"duplicate Dewey label {label}")
        by_tuple[label] = index
    parent_of: Dict[int, int] = {}
    for index, (_tag, label) in enumerate(labeled):
        if not label:
            parent_of[index] = -1
            continue
        parent = by_tuple.get(label[:-1])
        if parent is None:
            raise LabelingError(f"Dewey label {label} has no parent in the set")
        parent_of[index] = parent
    return _attach_sorted(list(labeled), parent_of, lambda label: label)
