"""Binary prefix labeling baselines (Cohen, Kaplan & Milo, PODS'02).

A node's label is the concatenation of *sibling codes* along the path from
the root; ``x`` is an ancestor of ``y`` iff ``label(x)`` is a proper prefix
of ``label(y)``.  Correctness rests on sibling codes being prefix-free.

* :class:`Prefix1Scheme` — the basic scheme: the i-th child's code is
  ``1^(i-1) 0``, so label sizes grow *linearly* with fan-out
  (equation 1: ``Lmax = D * F``).
* :class:`Prefix2Scheme` — the optimized scheme: sibling codes follow the
  binary increment rule ``0, 10, 1100, 1101, 1110, 11110000, ...`` (when an
  increment would produce all ones, the code doubles in length by appending
  zeros), giving ``Lmax = D * 4 log F`` (equation 2).

Both schemes are dynamic in the unordered sense: a new sibling takes the
next unused code for its parent, relabeling nobody else.  Order-sensitive
insertion between siblings (Figure 18) forces the canonical, order-encoding
assignment and therefore relabels the shifted siblings' subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.labeling.base import LabelingScheme, RelabelReport
from repro.xmlkit.tree import XmlElement

__all__ = ["Bits", "Prefix1Scheme", "Prefix2Scheme"]


@dataclass(frozen=True)
class Bits:
    """An immutable bit string stored as ``(value, length)``, MSB first.

    ``Bits(0b110, 3)`` is the string ``110``.  Supports concatenation and
    prefix testing — everything a prefix labeling scheme needs.
    """

    value: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"length must be >= 0, got {self.length}")
        if self.value < 0 or self.value >> self.length:
            raise ValueError(f"value {self.value} does not fit in {self.length} bits")

    @classmethod
    def empty(cls) -> "Bits":
        return cls(0, 0)

    @classmethod
    def from_string(cls, text: str) -> "Bits":
        """Parse a string of ``0``/``1`` characters, e.g. ``Bits.from_string("1101")``."""
        if text and set(text) - {"0", "1"}:
            raise ValueError(f"not a bit string: {text!r}")
        return cls(int(text, 2) if text else 0, len(text))

    def __str__(self) -> str:
        return format(self.value, f"0{self.length}b") if self.length else ""

    def __len__(self) -> int:
        return self.length

    def concat(self, other: "Bits") -> "Bits":
        """Return ``self`` followed by ``other``."""
        return Bits((self.value << other.length) | other.value, self.length + other.length)

    def is_prefix_of(self, other: "Bits") -> bool:
        """True iff ``self`` is a (not necessarily proper) prefix of ``other``."""
        if self.length > other.length:
            return False
        return (other.value >> (other.length - self.length)) == self.value

    def is_proper_prefix_of(self, other: "Bits") -> bool:
        """True iff ``self`` is a strictly shorter prefix of ``other``."""
        return self.length < other.length and self.is_prefix_of(other)

    @property
    def all_ones(self) -> bool:
        return self.length > 0 and self.value == (1 << self.length) - 1


def prefix1_code(ordinal: int) -> Bits:
    """Sibling code of the ``ordinal``-th child (1-based) in Prefix-1: ``1^(i-1) 0``."""
    if ordinal < 1:
        raise ValueError(f"ordinal must be >= 1, got {ordinal}")
    return Bits(((1 << (ordinal - 1)) - 1) << 1, ordinal)


def prefix2_first_code() -> Bits:
    """The first sibling code in Prefix-2: ``0``."""
    return Bits(0, 1)


def prefix2_next_code(code: Bits) -> Bits:
    """The sibling code following ``code`` in Prefix-2.

    Increment as a binary number; if the result is all ones, double the
    length by appending that many zeros.  Reproduces the paper's sequence
    ``0, 10, 1100, 1101, 1110, 11110000, ...``.
    """
    incremented = Bits(code.value + 1, code.length)
    if incremented.all_ones:
        return Bits(incremented.value << incremented.length, incremented.length * 2)
    return incremented


class _PrefixSchemeBase(LabelingScheme):
    """Shared machinery for both prefix schemes.

    Subclasses provide the sibling-code sequence via :meth:`_first_code` and
    :meth:`_next_code`.  Per-parent "last issued code" state makes unordered
    insertion O(1) relabels.
    """

    def __init__(self) -> None:
        super().__init__()
        self._last_code: Dict[int, Bits] = {}

    def _first_code(self) -> Bits:
        raise NotImplementedError

    def _next_code(self, code: Bits) -> Bits:
        raise NotImplementedError

    def _issue_code(self, parent: XmlElement) -> Bits:
        previous = self._last_code.get(id(parent))
        code = self._first_code() if previous is None else self._next_code(previous)
        self._last_code[id(parent)] = code
        return code

    def _assign_labels(self, root: XmlElement) -> None:
        self._last_code.clear()
        self._set_label(root, Bits.empty())
        stack = [root]
        while stack:
            node = stack.pop()
            label: Bits = self.label_of(node)
            for child in node.children:
                self._set_label(child, label.concat(self._issue_code(node)))
                stack.append(child)

    def is_ancestor_label(self, ancestor_label: Bits, descendant_label: Bits) -> bool:
        return ancestor_label.is_proper_prefix_of(descendant_label)

    def label_bits(self, label: Bits) -> int:
        return label.length

    def _relabel_subtree(self, top: XmlElement) -> None:
        """Assign fresh labels to ``top`` and its descendants only."""
        parent = top.parent
        assert parent is not None
        self._set_label(top, self.label_of(parent).concat(self._issue_code(parent)))
        self._last_code.pop(id(top), None)
        stack = [top]
        while stack:
            node = stack.pop()
            label: Bits = self.label_of(node)
            for child in node.children:
                self._set_label(child, label.concat(self._issue_code(node)))
                stack.append(child)

    def _after_structural_change(self, new_node: XmlElement) -> None:
        if new_node.is_leaf:
            parent = new_node.parent
            assert parent is not None
            self._set_label(
                new_node, self.label_of(parent).concat(self._issue_code(parent))
            )
        else:
            # A wrap: the new internal node and everything moved under it
            # inherit a fresh path; nothing outside the subtree changes.
            self._relabel_subtree(new_node)

    def insert_leaf_ordered(
        self, parent: XmlElement, index: int, tag: str = "new"
    ) -> RelabelReport:
        """Order-sensitive insertion: codes must reflect sibling order.

        Canonically relabels ``parent``'s children from position ``index``
        onwards (codes shift), together with their subtrees — the update
        cost Figure 18 charts for prefix schemes.
        """
        before = self._snapshot()
        node = XmlElement(tag)
        parent.insert(index, node)
        # Rewind the parent's code counter to the code of the sibling that
        # previously occupied `index`, then reissue codes from there.
        self._last_code.pop(id(parent), None)
        for position, child in enumerate(parent.children):
            if position < index:
                # Recreate counter state for the untouched leading siblings.
                self._issue_code(parent)
            else:
                self._relabel_subtree(child)
        return self._diff_report(before, node)


class Prefix1Scheme(_PrefixSchemeBase):
    """The basic unary-coded prefix scheme (``Lmax = D * F``)."""

    name = "prefix-1"

    def _first_code(self) -> Bits:
        return prefix1_code(1)

    def _next_code(self, code: Bits) -> Bits:
        return prefix1_code(code.length + 1)


class Prefix2Scheme(_PrefixSchemeBase):
    """The optimized binary-increment prefix scheme (``Lmax = D * 4 log F``)."""

    name = "prefix-2"

    def _first_code(self) -> Bits:
        return prefix2_first_code()

    def _next_code(self, code: Bits) -> Bits:
        return prefix2_next_code(code)
