"""The prime number labeling schemes — the paper's core contribution.

:class:`PrimeScheme` implements the *top-down* scheme of Section 3 /
Figure 7: every node's label is ``parent_label * self_label``, where the
self-label is

* ``1`` for the root,
* a fresh prime for each non-leaf node — drawn from a reserved pool of the
  smallest primes when the node sits directly below the root (Opt1), and
* ``2**n`` for the ``n``-th leaf child of a parent when Opt2 is enabled
  (else a fresh prime).

Ancestor tests are a single modulo (Properties 2/3):

* plain top-down: ``x`` ancestor of ``y``  iff  ``label(y) mod label(x) == 0``
  (labels distinct);
* with Opt2: additionally require ``label(x)`` odd, because even labels
  belong to leaves, which have no descendants.

:class:`BottomUpPrimeScheme` implements the motivating bottom-up variant of
Figure 1 (leaves get primes, parents get products of their children, plus
the "special handling" the paper notes for single-child nodes).

Dynamic behaviour: inserting a node never relabels anyone outside the
insertion site — the new node takes a never-used prime.  The single
exception is Opt2's leaf-turned-parent case, which the paper calls out
("the optimized prime number labeling scheme needs to re-label 2 nodes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LabelingError
from repro.labeling.base import LabelingScheme, RelabelReport
from repro.obs import metrics
from repro.primes.gen import PrimeGenerator
from repro.xmlkit.tree import XmlElement

__all__ = ["PrimeLabel", "PrimeScheme", "BottomUpPrimeScheme"]

#: Default size of the Opt1 reserved pool of small primes for top-level nodes.
DEFAULT_RESERVED_PRIMES = 64


@dataclass(frozen=True)
class PrimeLabel:
    """A top-down prime label.

    ``value`` is the full label (product of self-labels from the root);
    ``self_label`` is the factor assigned to this node itself.  The parent's
    full label is always ``value // self_label``.
    """

    value: int
    self_label: int

    @property
    def parent_value(self) -> int:
        """The full label of this node's parent (1 for top-level nodes)."""
        return self.value // self.self_label

    def __post_init__(self) -> None:
        if self.self_label < 1 or self.value % self.self_label:
            raise ValueError(
                f"self_label {self.self_label} does not divide label {self.value}"
            )


class PrimeScheme(LabelingScheme):
    """Top-down prime number labeling (Figure 7's ``PrimeLabel`` algorithm).

    Parameters
    ----------
    reserved_primes:
        Size of the Opt1 pool of smallest primes kept for top-level nodes.
        ``0`` disables Opt1 (the "Original" configuration of Figure 13).
    power2_leaves:
        Enable Opt2 — label the n-th leaf child of a parent ``2**n``.
    leaf_threshold_bits:
        Optional Opt2 refinement from Section 3.2: once a power-of-two leaf
        self-label would exceed this many bits, remaining leaf siblings of
        that parent fall back to fresh primes.
    """

    name = "prime"

    # Every dynamic update below writes labels only through _set_label (no
    # wholesale relabeling), so insert_leaf reports can be tracked in
    # O(changes) instead of diffing the full mapping.
    _tracks_relabels = True

    def __init__(
        self,
        reserved_primes: int = DEFAULT_RESERVED_PRIMES,
        power2_leaves: bool = True,
        leaf_threshold_bits: Optional[int] = None,
    ) -> None:
        super().__init__()
        if leaf_threshold_bits is not None and leaf_threshold_bits < 2:
            raise ValueError(
                f"leaf_threshold_bits must be >= 2, got {leaf_threshold_bits}"
            )
        self.reserved_primes = reserved_primes
        self.power2_leaves = power2_leaves
        self.leaf_threshold_bits = leaf_threshold_bits
        self._generator = PrimeGenerator(reserved=reserved_primes)
        #: per-parent count of leaf children labeled so far (Fig 7's
        #: childNum), keyed by the parent's *full label value* — a stable
        #: identity that survives snapshot/restore (fresh objects, fresh
        #: ``id()``\ s) and can never alias a recycled address.  Label
        #: values are unique within a document: every internal value
        #: contains its own fresh prime, every Opt2 leaf value a distinct
        #: power of two under its parent.
        self._leaf_counter: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Label issuing
    # ------------------------------------------------------------------

    def _issue_internal_self_label(self, node: XmlElement) -> int:
        if node.parent is not None and node.parent.is_root:
            return self._generator.get_reserved_prime()
        return self._generator.get_prime()

    def _issue_leaf_self_label(self, parent: XmlElement) -> int:
        if not self.power2_leaves:
            return self._generator.get_prime()
        parent_value = self.label_of(parent).value
        ordinal = self._leaf_counter.get(parent_value, 0) + 1
        candidate = PrimeGenerator.get_power2(ordinal)
        if (
            self.leaf_threshold_bits is not None
            and candidate.bit_length() > self.leaf_threshold_bits
        ):
            return self._generator.get_prime()
        self._leaf_counter[parent_value] = ordinal
        metrics.incr("label.power2_leaves")
        return candidate

    def _label_node(self, node: XmlElement) -> PrimeLabel:
        if node.is_root:
            return PrimeLabel(value=1, self_label=1)
        parent_label: PrimeLabel = self.label_of(node.parent)
        if node.is_leaf:
            self_label = self._issue_leaf_self_label(node.parent)
        else:
            self_label = self._issue_internal_self_label(node)
        return PrimeLabel(value=parent_label.value * self_label, self_label=self_label)

    def _discard_prime_two(self) -> None:
        """Under Opt2 the prime 2 is never issued as a self-label.

        Non-leaf labels must be odd (Property 3's test is ``odd(label(x))``),
        and a pool-issued 2 would collide with the power-of-two leaf label
        ``2**1`` — "the number 2 is the only even prime number", so the
        optimized scheme reserves evenness entirely for leaves.
        """
        if not self.power2_leaves:
            return
        if self.reserved_primes > 0:
            discarded = self._generator.get_reserved_prime()
        else:
            discarded = self._generator.get_prime()
        assert discarded == 2

    def _assign_labels(self, root: XmlElement) -> None:
        self._generator = PrimeGenerator(reserved=self.reserved_primes)
        self._discard_prime_two()
        self._leaf_counter.clear()
        for node in root.iter_preorder():
            self._set_label(node, self._label_node(node))

    # ------------------------------------------------------------------
    # Relationship tests
    # ------------------------------------------------------------------

    def is_ancestor_label(self, ancestor_label: PrimeLabel, descendant_label: PrimeLabel) -> bool:
        if ancestor_label.value == descendant_label.value:
            return False
        if self.power2_leaves and ancestor_label.value % 2 == 0:
            # Property 3: even labels are leaves, never ancestors.
            return False
        return descendant_label.value % ancestor_label.value == 0

    def is_parent_label(self, parent_label: PrimeLabel, child_label: PrimeLabel) -> bool:
        """Parent/child test: the child's inherited part equals the parent."""
        return child_label.value // child_label.self_label == parent_label.value

    def label_bits(self, label: PrimeLabel) -> int:
        return max(label.value.bit_length(), 1)

    def self_label_bits(self, label: PrimeLabel) -> int:
        """Width of the self-label alone, in bits."""
        return max(label.self_label.bit_length(), 1)

    def max_self_label_bits(self) -> int:
        """Largest *self*-label width — the quantity Figures 4/5 model."""
        return max(self.self_label_bits(label) for label in self._labels.values())

    # ------------------------------------------------------------------
    # Dynamic updates (genuinely incremental)
    # ------------------------------------------------------------------

    def _after_structural_change(self, new_node: XmlElement) -> None:
        parent = new_node.parent
        assert parent is not None
        if new_node.is_leaf:
            # Opt2's documented cost: a parent that used to be a leaf holds a
            # power-of-two self-label and must be upgraded to a prime.
            parent_label: PrimeLabel = self.label_of(parent)
            if self.power2_leaves and not parent.is_root and parent_label.self_label % 2 == 0:
                new_self = self._issue_internal_self_label(parent)
                grandparent_value = parent_label.value // parent_label.self_label
                self._set_label(
                    parent,
                    PrimeLabel(value=grandparent_value * new_self, self_label=new_self),
                )
                metrics.incr("label.opt2_upgrades")
            self._set_label(new_node, self._label_node(new_node))
        else:
            # A wrap: the new internal node takes a fresh prime; every moved
            # descendant's full label gains that factor (self-labels keep).
            self_label = self._issue_internal_self_label(new_node)
            parent_value = self.label_of(parent).value
            self._set_label(
                new_node,
                PrimeLabel(value=parent_value * self_label, self_label=self_label),
            )
            cascade = 0
            for descendant in new_node.iter_descendants():
                old: PrimeLabel = self.label_of(descendant)
                new_value = old.value * self_label
                # The leaf counter is keyed by label value, and every moved
                # descendant's value just gained the wrapper's factor — move
                # its counter entry along (fresh prime, so the new key
                # cannot collide with any not-yet-moved old key).
                pending = self._leaf_counter.pop(old.value, None)
                if pending is not None:
                    self._leaf_counter[new_value] = pending
                self._set_label(
                    descendant,
                    PrimeLabel(value=new_value, self_label=old.self_label),
                )
                cascade += 1
            metrics.incr("label.relabel_cascade", cascade)

    def delete(self, node: XmlElement) -> RelabelReport:
        """Delete ``node``'s subtree, purging its ``_leaf_counter`` entries.

        Without cleanup a deleted parent's counter entry leaks under churn;
        purging on delete makes the entry's lifetime match the node's.  The
        keys are the deleted nodes' label *values*, which must be collected
        before ``super()`` drops the labels.
        """
        stale = [
            self._labels[id(gone)].value
            for gone in node.iter_preorder()
            if id(gone) in self._labels
        ]
        report = super().delete(node)
        for value in stale:
            self._leaf_counter.pop(value, None)
        return report

    def insert_leaf_ordered(
        self, parent: XmlElement, index: int, tag: str = "new"
    ) -> RelabelReport:
        """Order-sensitive insertion costs the prime scheme nothing extra.

        The label itself carries no order, so inserting between siblings is
        identical to appending; document order lives in the SC table
        (:mod:`repro.order`), which charges its own record updates.
        """
        return self.insert_leaf(parent, tag=tag, index=index)

    # ------------------------------------------------------------------
    # Snapshot / recovery state
    # ------------------------------------------------------------------

    def export_state(
        self,
    ) -> Tuple[Tuple[int, int, int, int], Tuple[Tuple[int, int], ...]]:
        """The dynamic state a snapshot must carry beyond the labels.

        Returns ``(generator position, sorted Opt2 leaf counters)``.  The
        counters are ``(parent label value, leaf count)`` pairs — without
        them a restored scheme under ``power2_leaves=True`` would restart
        every parent's leaf ordinal at 1 and re-issue already-used
        power-of-two self-labels, diverging from a never-snapshotted twin.
        """
        return self._generator.state(), tuple(sorted(self._leaf_counter.items()))

    def restore_state(
        self,
        root: XmlElement,
        labels: Sequence[Tuple[int, int]],
        generator_state: Tuple[int, int, int, int],
        leaf_counters: Sequence[Tuple[int, int]] = (),
    ) -> "PrimeScheme":
        """Rebind this scheme to a freshly materialised tree, relabeling nothing.

        ``labels`` are ``(value, self_label)`` pairs in preorder;
        ``generator_state`` and ``leaf_counters`` come from
        :meth:`export_state` (snapshots written before the counter existed
        restore with empty counters, preserving their legacy behaviour).
        Returns ``self``.
        """
        nodes = list(root.iter_preorder())
        if len(nodes) != len(labels):
            raise LabelingError(
                f"restore_state got {len(labels)} labels for {len(nodes)} nodes"
            )
        for stale in list(self._nodes.values()):
            self._drop_label(stale)
        self._root = root
        for node, (value, self_label) in zip(nodes, labels):
            self._set_label(node, PrimeLabel(value=value, self_label=self_label))
        self._generator = PrimeGenerator.from_state(generator_state)
        self._leaf_counter = dict(leaf_counters)
        return self


class BottomUpPrimeScheme(LabelingScheme):
    """Bottom-up prime labeling (Figure 1): parents are products of children.

    Leaves take fresh primes in document order; an internal node's label is
    the product of its children's labels, multiplied by one extra fresh
    prime when it has a single child (the "special handling" the paper
    notes, without which a one-child parent would equal its child).

    Ancestor test is Property 2: ``x`` ancestor of ``y`` iff
    ``label(x) mod label(y) == 0``.
    """

    name = "prime-bottomup"

    def __init__(self) -> None:
        super().__init__()
        self._generator = PrimeGenerator()

    def _assign_labels(self, root: XmlElement) -> None:
        self._generator = PrimeGenerator()

        def visit(node: XmlElement) -> int:
            if node.is_leaf:
                label = self._generator.get_prime()
            else:
                label = 1
                for child in node.children:
                    label *= visit(child)
                if len(node.children) == 1:
                    label *= self._generator.get_prime()
            self._set_label(node, label)
            return label

        visit(root)

    def is_ancestor_label(self, ancestor_label: int, descendant_label: int) -> bool:
        if ancestor_label == descendant_label:
            return False
        return ancestor_label % descendant_label == 0

    def label_bits(self, label: int) -> int:
        return max(label.bit_length(), 1)

    def _after_structural_change(self, new_node: XmlElement) -> None:
        if new_node.is_leaf:
            prime = self._generator.get_prime()
            self._set_label(new_node, prime)
            # Every ancestor's product gains the new leaf's prime factor.
            ancestor = new_node.parent
            while ancestor is not None:
                self._set_label(ancestor, self.label_of(ancestor) * prime)
                ancestor = ancestor.parent
        else:
            # A wrapper's children may be *all* of its parent's children, in
            # which case the bare product would equal the parent's label (the
            # single-child collision in general form) — so every dynamically
            # inserted wrapper gets its own fresh prime factor, propagated to
            # the ancestors like any new leaf prime.
            extra = self._generator.get_prime()
            label = extra
            for child in new_node.children:
                label *= self.label_of(child)
            self._set_label(new_node, label)
            ancestor = new_node.parent
            while ancestor is not None:
                self._set_label(ancestor, self.label_of(ancestor) * extra)
                ancestor = ancestor.parent
            # If the wrap took *all* of the parent's children, the parent's
            # product now equals the wrapper's — the single-child collision
            # one level up.  Re-distinguish with fresh primes, cascading as
            # far as the equalities reach.
            node = new_node.parent
            while node is not None and any(
                self.label_of(node) == self.label_of(child) for child in node.children
            ):
                distinguisher = self._generator.get_prime()
                cursor = node
                while cursor is not None:
                    self._set_label(cursor, self.label_of(cursor) * distinguisher)
                    cursor = cursor.parent
                node = node.parent
