"""Interval (range-based) labeling baselines.

Three variants, all *static* schemes — compact but forced into wholesale
relabeling by insertions:

* :class:`XissIntervalScheme` — XISS (Li & Moon, VLDB'01): each node gets
  ``(order, size)``; ``x`` is an ancestor of ``y`` iff
  ``order(x) < order(y) <= order(x) + size(x)``.
* :class:`StartEndIntervalScheme` — XRel-style (Yoshikawa & Amagasa): a
  depth-first counter assigns a ``start`` on first visit and an ``end`` on
  the way back; ancestor test is strict interval containment.
* :class:`FloatIntervalScheme` — the QRS idea (Amagasa et al., ICDE'03
  poster): float endpoints admit midpoint insertion without relabeling —
  until the mantissa runs out, after which a full relabel is unavoidable.
  Implemented with explicit binary fractions so exhaustion is deterministic
  rather than at the mercy of IEEE rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

from repro.errors import LabelOverflowError
from repro.labeling.base import LabelingScheme, RelabelReport
from repro.xmlkit.tree import XmlElement

__all__ = [
    "XissIntervalScheme",
    "StartEndIntervalScheme",
    "FloatIntervalScheme",
    "OrderSizeLabel",
    "StartEndLabel",
]


@dataclass(frozen=True)
class OrderSizeLabel:
    """XISS label: preorder ``order`` plus subtree ``size`` (descendant count)."""

    order: int
    size: int


@dataclass(frozen=True)
class StartEndLabel:
    """Start/end label from a single depth-first counter."""

    start: int
    end: int


class XissIntervalScheme(LabelingScheme):
    """XISS ``(order, size)`` labeling.

    The canonical assignment is the densest one: ``order`` is the 1-based
    preorder rank and ``size`` the exact descendant count, so any insertion
    shifts every later ``order`` and widens every ancestor ``size`` — the
    behaviour Figure 16 charts.
    """

    name = "interval"

    def _assign_labels(self, root: XmlElement) -> None:
        counter = 0

        def visit(node: XmlElement) -> int:
            nonlocal counter
            counter += 1
            my_order = counter
            descendants = 0
            for child in node.children:
                descendants += visit(child)
            self._set_label(node, OrderSizeLabel(order=my_order, size=descendants))
            return descendants + 1

        visit(root)

    def is_ancestor_label(self, ancestor_label, descendant_label) -> bool:
        return (
            ancestor_label.order
            < descendant_label.order
            <= ancestor_label.order + ancestor_label.size
        )

    def label_bits(self, label: OrderSizeLabel) -> int:
        """Two fields, each wide enough for the larger of the pair.

        Matches the paper's estimate of ``2 * (1 + log N)`` bits: interval
        labels are stored as two fixed-width integers.
        """
        widest = max(label.order, label.size, 1)
        return 2 * widest.bit_length()


class StartEndIntervalScheme(LabelingScheme):
    """Start/end labeling driven by one depth-first counter (XRel)."""

    name = "interval-startend"

    def _assign_labels(self, root: XmlElement) -> None:
        counter = 0

        def visit(node: XmlElement) -> None:
            nonlocal counter
            counter += 1
            start = counter
            for child in node.children:
                visit(child)
            counter += 1
            self._set_label(node, StartEndLabel(start=start, end=counter))

        visit(root)

    def is_ancestor_label(self, ancestor_label, descendant_label) -> bool:
        return (
            ancestor_label.start < descendant_label.start
            and descendant_label.end < ancestor_label.end
        )

    def label_bits(self, label: StartEndLabel) -> int:
        widest = max(label.start, label.end, 1)
        return 2 * widest.bit_length()


class FloatIntervalScheme(LabelingScheme):
    """Interval labels with fractional endpoints for in-place insertion.

    Endpoints are dyadic rationals with a bounded denominator; a midpoint
    insertion succeeds as long as the new endpoints stay representable in
    ``mantissa_bits`` fractional bits, modeling the fixed mantissa of the
    floating point numbers QRS uses.  Once the budget is exhausted the
    insertion triggers a full relabel — "when the number of insertions
    exceeds certain limits, re-labeling is necessary".
    """

    name = "interval-float"

    def __init__(self, mantissa_bits: int = 52):
        super().__init__()
        if mantissa_bits < 1:
            raise ValueError(f"mantissa_bits must be >= 1, got {mantissa_bits}")
        self.mantissa_bits = mantissa_bits
        self.full_relabels = 0

    def _assign_labels(self, root: XmlElement) -> None:
        counter = 0

        def visit(node: XmlElement) -> None:
            nonlocal counter
            counter += 1
            start = Fraction(counter)
            for child in node.children:
                visit(child)
            counter += 1
            self._set_label(node, StartEndLabel(start=start, end=Fraction(counter)))

        visit(root)

    def is_ancestor_label(self, ancestor_label, descendant_label) -> bool:
        return (
            ancestor_label.start < descendant_label.start
            and descendant_label.end < ancestor_label.end
        )

    def label_bits(self, label: StartEndLabel) -> int:
        integer_bits = max(int(label.start), int(label.end), 1).bit_length()
        return 2 * (integer_bits + self.mantissa_bits)

    def _representable(self, value: Fraction) -> bool:
        denominator = value.denominator  # power of two for midpoints of dyadics
        return denominator <= (1 << self.mantissa_bits) and (
            denominator & (denominator - 1) == 0
        )

    def _gap_endpoints(
        self, parent: XmlElement, index: int
    ) -> Tuple[Fraction, Fraction]:
        """The open interval available for a child inserted at ``index``."""
        parent_label: StartEndLabel = self.label_of(parent)
        children = parent.children
        low = parent_label.start if index == 0 else self.label_of(children[index - 1]).end
        high = (
            parent_label.end
            if index >= len(children)
            else self.label_of(children[index]).start
        )
        return low, high

    def insert_leaf(
        self,
        parent: XmlElement,
        tag: str = "new",
        index: Optional[int] = None,
    ) -> RelabelReport:
        """Midpoint insertion; falls back to full relabel on precision loss."""
        before = self._snapshot()
        position = len(parent.children) if index is None else index
        low, high = self._gap_endpoints(parent, position)
        node = XmlElement(tag)
        parent.insert(position, node)
        quarter = (high - low) / 4
        start, end = low + quarter, high - quarter
        if self._representable(start) and self._representable(end) and start < end:
            self._set_label(node, StartEndLabel(start=start, end=end))
        else:
            self.full_relabels += 1
            self._assign_labels(self.root)
        return self._diff_report(before, node)

    def try_insert_leaf(
        self, parent: XmlElement, tag: str = "new", index: Optional[int] = None
    ) -> RelabelReport:
        """Like :meth:`insert_leaf` but raising instead of relabeling.

        Raises :class:`repro.errors.LabelOverflowError` when the gap can no
        longer be split, leaving tree and labels untouched.
        """
        position = len(parent.children) if index is None else index
        low, high = self._gap_endpoints(parent, position)
        quarter = (high - low) / 4
        start, end = low + quarter, high - quarter
        if not (self._representable(start) and self._representable(end) and start < end):
            raise LabelOverflowError(
                f"no representable midpoint left in ({low}, {high}) "
                f"with {self.mantissa_bits} mantissa bits"
            )
        return self.insert_leaf(parent, tag, index)
