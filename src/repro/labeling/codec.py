"""Binary codecs for labels — the storage story of Section 3.1.

The paper's size analysis exists because labels live in database columns:
"it is possible to use a fixed length representation for storing the
labels. In so doing, we can take advantage of the standard DBMS functions
for XML query processing."  This module provides that representation:

* :class:`FixedWidthCodec` — every label of a document encoded at the
  width of the widest one (the paper's fixed-length columns).  Decoding is
  O(1) per label and the column is directly comparable byte-wise for
  integer labels.
* :class:`VarintCodec` — the variable-length (LEB128-style) encoding that
  format v3 of every binary file uses on disk: the RPLS label store, the
  RPSN snapshot, and RPWL WAL payloads all write label integers through
  :func:`write_uvarint` and read them back through :func:`read_uvarint`,
  which bounds each field at :data:`MAX_VARINT_FIELD_BYTES` so corrupt
  continuation runs fail fast instead of allocating huge integers.

Codecs cover every label type in the library: ``PrimeLabel`` (two
integers), interval labels (two integers), prefix ``Bits`` (length +
payload) and Dewey tuples.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import LabelingError
from repro.labeling.base import LabelingScheme
from repro.labeling.interval import OrderSizeLabel, StartEndLabel
from repro.labeling.prefix import Bits
from repro.labeling.prime import PrimeLabel

__all__ = [
    "FixedWidthCodec",
    "MAX_VARINT_FIELD_BYTES",
    "VarintCodec",
    "ints_to_label",
    "label_to_ints",
    "read_uvarint",
    "write_uvarint",
]

#: Sanity bound on one varint-encoded integer field, as magnitude bytes.
#: 1 MiB of magnitude (2^23 bits) is 16x the 64 KiB ceiling the legacy
#: ``>H``-length snapshot encoding imposed and far beyond any label a real
#: document produces; past it, a run of continuation bytes is treated as
#: corruption instead of being accumulated into an ever-larger integer.
MAX_VARINT_FIELD_BYTES = 1 << 20
_MAX_FIELD_BITS = MAX_VARINT_FIELD_BYTES * 8


def write_uvarint(value: int, out: List[int]) -> None:
    """Append the LEB128 encoding of ``value`` (an unsigned int) to ``out``.

    The shared integer encoding of every format-v3 file (RPLS store, RPSN
    snapshot, RPWL WAL payloads).  Raises :class:`repro.errors.LabelingError`
    for negative values and for fields beyond :data:`MAX_VARINT_FIELD_BYTES`
    — the write-side twin of the read-side cap, so nothing encodable is
    ever unreadable.
    """
    if value < 0:
        raise LabelingError(f"varints are unsigned; got {value}")
    if value.bit_length() > _MAX_FIELD_BITS:
        raise LabelingError(
            f"integer field of {value.bit_length()} bits exceeds the "
            f"{_MAX_FIELD_BITS}-bit varint field bound"
        )
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(blob: bytes, offset: int) -> Tuple[int, int]:
    """Decode one LEB128 integer from ``blob`` at ``offset``.

    Returns ``(value, next_offset)``.  Raises
    :class:`repro.errors.LabelingError` on a truncated field or when the
    continuation run exceeds :data:`MAX_VARINT_FIELD_BYTES` of magnitude —
    a crafted blob of ``0x80`` bytes must fail fast instead of allocating
    an arbitrarily large integer before any checksum is consulted.
    """
    result = 0
    shift = 0
    while True:
        if offset >= len(blob):
            raise LabelingError("truncated varint")
        if shift >= _MAX_FIELD_BITS:
            raise LabelingError(
                f"varint field exceeds the {_MAX_FIELD_BITS}-bit bound "
                "(corrupt or adversarial continuation run)"
            )
        byte = blob[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def label_to_ints(label: Any) -> Tuple[int, ...]:
    """Decompose any supported label into a tuple of non-negative ints.

    ``PrimeLabel`` -> (value, self_label); interval labels -> their two
    endpoints; ``Bits`` -> (length, value); Dewey tuples pass through.
    """
    if isinstance(label, PrimeLabel):
        return (label.value, label.self_label)
    if isinstance(label, OrderSizeLabel):
        return (label.order, label.size)
    if isinstance(label, StartEndLabel):
        start, end = label.start, label.end
        if int(start) != start or int(end) != end:
            raise LabelingError("fractional interval labels are not codec-encodable")
        return (int(start), int(end))
    if isinstance(label, Bits):
        return (label.length, label.value)
    if isinstance(label, tuple):
        return tuple(int(component) for component in label)
    if isinstance(label, int):  # bottom-up prime labels are bare products
        return (label,)
    raise LabelingError(f"no integer decomposition for label {label!r}")


def ints_to_label(kind: str, parts: Tuple[int, ...]) -> Any:
    """Reassemble a label from :func:`label_to_ints` output.

    ``kind`` is one of ``prime``, ``order-size``, ``start-end``, ``bits``,
    ``dewey``.
    """
    if kind == "prime":
        value, self_label = parts
        return PrimeLabel(value=value, self_label=self_label)
    if kind == "order-size":
        order, size = parts
        return OrderSizeLabel(order=order, size=size)
    if kind == "start-end":
        start, end = parts
        return StartEndLabel(start=start, end=end)
    if kind == "bits":
        length, value = parts
        return Bits(value, length)
    if kind == "dewey":
        return tuple(parts)
    if kind == "int":
        (value,) = parts
        return value
    raise LabelingError(f"unknown label kind {kind!r}")


def _kind_of(label: Any) -> str:
    if isinstance(label, PrimeLabel):
        return "prime"
    if isinstance(label, OrderSizeLabel):
        return "order-size"
    if isinstance(label, StartEndLabel):
        return "start-end"
    if isinstance(label, Bits):
        return "bits"
    if isinstance(label, tuple):
        return "dewey"
    if isinstance(label, int):
        return "int"
    raise LabelingError(f"no codec kind for label {label!r}")


class FixedWidthCodec:
    """Fixed-length encoding sized to a document's widest label.

    Construct from a labeled scheme (:meth:`for_scheme`) or explicitly with
    ``(kind, field_count, field_bytes)``.  Every encoded label occupies
    ``field_count * field_bytes`` bytes (Dewey labels are padded to the
    document's maximum component count with zeros, which are invalid Dewey
    ordinals and therefore unambiguous).
    """

    def __init__(self, kind: str, field_count: int, field_bytes: int):
        if field_count < 1 or field_bytes < 1:
            raise LabelingError("field_count and field_bytes must be >= 1")
        self.kind = kind
        self.field_count = field_count
        self.field_bytes = field_bytes

    @classmethod
    def for_scheme(cls, scheme: LabelingScheme) -> "FixedWidthCodec":
        """Size a codec to hold every label the scheme has issued."""
        labels = [scheme.label_of(node) for node in scheme.labeled_nodes()]
        if not labels:
            raise LabelingError("scheme has no labels to size a codec from")
        kind = _kind_of(labels[0])
        # A lone Dewey root has the empty label; keep at least one field so
        # records have nonzero width.
        field_count = max(1, max(len(label_to_ints(label)) for label in labels))
        widest = max(
            (part for label in labels for part in label_to_ints(label)), default=0
        )
        field_bytes = max((widest.bit_length() + 7) // 8, 1)
        return cls(kind, field_count, field_bytes)

    @property
    def record_bytes(self) -> int:
        """Encoded size of one label, in bytes."""
        return self.field_count * self.field_bytes

    def encode(self, label: Any) -> bytes:
        """Encode one label into exactly ``record_bytes`` bytes."""
        parts = label_to_ints(label)
        if len(parts) > self.field_count:
            raise LabelingError(
                f"label has {len(parts)} fields; codec holds {self.field_count}"
            )
        padded = parts + (0,) * (self.field_count - len(parts))
        chunks = []
        for part in padded:
            if part < 0 or part.bit_length() > self.field_bytes * 8:
                raise LabelingError(
                    f"field {part} does not fit in {self.field_bytes} bytes"
                )
            chunks.append(part.to_bytes(self.field_bytes, "big"))
        return b"".join(chunks)

    def decode(self, blob: bytes) -> Any:
        """Decode one fixed-width record back into a label."""
        if len(blob) != self.record_bytes:
            raise LabelingError(
                f"expected {self.record_bytes} bytes, got {len(blob)}"
            )
        parts = tuple(
            int.from_bytes(blob[i * self.field_bytes : (i + 1) * self.field_bytes], "big")
            for i in range(self.field_count)
        )
        if self.kind == "dewey":
            parts = tuple(part for part in parts if part != 0)
        return ints_to_label(self.kind, parts)

    def encode_column(self, scheme: LabelingScheme) -> bytes:
        """Encode every label of the scheme into one packed column."""
        return b"".join(
            self.encode(scheme.label_of(node)) for node in scheme.labeled_nodes()
        )

    def decode_column(self, blob: bytes) -> List[Any]:
        """Decode a packed column into its label list."""
        if len(blob) % self.record_bytes:
            raise LabelingError("column length is not a multiple of the record size")
        return [
            self.decode(blob[offset : offset + self.record_bytes])
            for offset in range(0, len(blob), self.record_bytes)
        ]


class VarintCodec:
    """Variable-length (LEB128-style) label encoding with field counts.

    Layout per label: ``varint(field_count) || varint(field_0) || ...``.
    Self-delimiting, so columns can be decoded without a side table.
    """

    def __init__(self, kind: str):
        self.kind = kind

    @classmethod
    def for_scheme(cls, scheme: LabelingScheme) -> "VarintCodec":
        nodes = list(scheme.labeled_nodes())
        if not nodes:
            raise LabelingError("scheme has no labels to derive a codec from")
        return cls(_kind_of(scheme.label_of(nodes[0])))

    # Kept as static methods for callers that sized codecs before the
    # module-level helpers existed; both delegate to the bounded encoding.
    _write_varint = staticmethod(write_uvarint)
    _read_varint = staticmethod(read_uvarint)

    def encode(self, label: Any) -> bytes:
        """Encode one label as a self-delimiting varint record."""
        parts = label_to_ints(label)
        out: List[int] = []
        self._write_varint(len(parts), out)
        for part in parts:
            self._write_varint(part, out)
        return bytes(out)

    def decode(self, blob: bytes, offset: int = 0) -> Tuple[Any, int]:
        """Decode one label starting at ``offset``; returns (label, next)."""
        count, offset = self._read_varint(blob, offset)
        if count > len(blob) - offset:
            # Every field costs at least one byte, so a count beyond the
            # remaining bytes is corruption — reject before looping.
            raise LabelingError(
                f"varint record claims {count} fields but only "
                f"{len(blob) - offset} bytes remain"
            )
        parts = []
        for _ in range(count):
            part, offset = self._read_varint(blob, offset)
            parts.append(part)
        return ints_to_label(self.kind, tuple(parts)), offset

    def encode_column(self, scheme: LabelingScheme) -> bytes:
        """Encode every label of the scheme into one packed column."""
        return b"".join(
            self.encode(scheme.label_of(node)) for node in scheme.labeled_nodes()
        )

    def decode_column(self, blob: bytes) -> List[Any]:
        """Decode a packed varint column into its label list."""
        labels = []
        offset = 0
        while offset < len(blob):
            label, offset = self.decode(blob, offset)
            labels.append(label)
        return labels
