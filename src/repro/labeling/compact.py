"""Near-optimal compact ancestry labelings — the theoretical floor.

The prime scheme's labels grow multiplicatively with depth (Section 3.1's
own size analysis), so the natural question is how far that sits from the
information-theoretic optimum.  For ancestry alone the answer is known:
Dahlgaard, Knudsen & Rotbart's "simple and optimal" scheme needs
``lg n + 2 lg lg n + O(1)`` bits, matching the Alstrup–Dahlgaard–Knudsen
lower bound, and Fraigniaud & Korman's small-depth schemes trade the
``2 lg lg n`` term for ``lg d`` on shallow trees.  This module implements
both as :class:`~repro.labeling.base.LabelingScheme` baselines so the
Fig 14 space comparison can chart the gap.

Both are tunings of one construction, a *slack interval* scheme built on
heavy-path decomposition:

* Decompose the tree into heavy paths (each node's heavy child is the one
  with the largest subtree).
* Lay a path ``v1 … vk`` out left to right: ``v_i``'s point, then the full
  blocks of ``v_i``'s light subtrees, then ``v_{i+1}`` — so every
  descendant of ``v_i`` occupies positions strictly between ``v_i``'s
  point and the path's shared *content end* ``E``.
* A node stores its point ``x`` and a **rounded** interval length drawn
  from the floating-point family ``{i * 2**j : 0 <= i < 2**m}`` (``m``
  mantissa bits): ``L = round_up(E - 1 - x)``.  Rounding up can overshoot
  by at most one unit in the last place, so each path reserves that many
  *empty* pad positions after its block — the overshoot lands where no
  node's point can be, and the test stays exact.
* Ancestry is point-in-interval: ``u`` is a proper ancestor of ``w`` iff
  ``x_u < x_w <= x_u + L_u``.

Any root-to-leaf path crosses at most ``lg n`` light edges, i.e. at most
``lg n`` nested pads, so the universe blows up by at most
``(1 + 2**(1-m)) ** lg n`` — a constant factor for the DKR tuning
``m ~ lg lg n`` (giving ``lg n + 2 lg lg n + O(1)`` bits total) and a
``(1 + 1/d)``-per-level factor for the FK tuning ``m ~ lg d`` (giving
``lg n + lg lg n + lg d + O(1)`` bits, the better trade when
``lg d < lg lg n``, which covers the shallow XML corpus here).

Labels are packed :class:`~repro.labeling.prefix.Bits` strings —
``[x | exponent | mantissa]`` at document-wide fixed widths — so the
standard codecs and the Fig 14 fixed-length accounting apply unchanged.
Updates relabel canonically (the schemes are static, like the interval
baseline); that is exactly the contrast the exhibit is meant to show.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import LabelingError
from repro.labeling.base import LabelingScheme
from repro.labeling.prefix import Bits
from repro.xmlkit.tree import XmlElement

__all__ = ["DahlgaardScheme", "FraigniaudKormanScheme", "round_up_family"]


def round_up_family(length: int, mantissa_bits: int) -> Tuple[int, int]:
    """Round ``length`` up to the floating-point family ``i * 2**j``.

    Returns ``(j, i)`` with ``0 <= i < 2**mantissa_bits`` and
    ``i * 2**j >= length``, overshooting by less than one unit in the last
    place (``2**(bit_length(length) - mantissa_bits)``).
    """
    if length < 0:
        raise LabelingError(f"interval length must be >= 0, got {length}")
    if length < (1 << mantissa_bits):
        return 0, length  # every small integer is exactly representable
    exponent = length.bit_length() - mantissa_bits
    mantissa = length >> exponent
    if (mantissa << exponent) < length:
        mantissa += 1
    if mantissa >> mantissa_bits:  # carried past the mantissa width
        mantissa >>= 1
        exponent += 1
    return exponent, mantissa


class _SlackIntervalScheme(LabelingScheme):
    """Shared allocator for both compact schemes (see the module docstring).

    Subclasses choose the mantissa width via :meth:`_mantissa_bits`; the
    allocator, the packed-``Bits`` label layout, and the point-in-interval
    ancestry test are identical.
    """

    def __init__(self) -> None:
        super().__init__()
        self._x_bits = 1
        self._exp_bits = 1
        self._mant_bits = 1
        #: Total allocated universe (points + pads) of the last labeling.
        self.universe = 0

    def _mantissa_bits(self, node_count: int, depth: int) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Labeling
    # ------------------------------------------------------------------

    def _assign_labels(self, root: XmlElement) -> None:
        nodes = list(root.iter_preorder())
        depths: Dict[int, int] = {id(root): 0}
        for node in nodes[1:]:
            depths[id(node)] = depths[id(node.parent)] + 1
        mantissa_bits = max(2, self._mantissa_bits(len(nodes), max(depths.values())))

        # Pass 1 (bottom-up): subtree sizes and heavy children.
        size: Dict[int, int] = {id(node): 1 for node in nodes}
        heavy: Dict[int, Optional[XmlElement]] = {id(node): None for node in nodes}
        for node in reversed(nodes[1:]):
            parent = node.parent
            size[id(parent)] += size[id(node)]
            best = heavy[id(parent)]
            if best is None or size[id(node)] > size[id(best)]:
                heavy[id(parent)] = node

        # Pass 2 (bottom-up): per-path content and padded allocation.
        # ``content_below[v]`` spans v, its light subtrees' full (padded)
        # blocks, and the heavy continuation; a path top additionally
        # reserves ``pad`` empty slots bounding the rounding overshoot.
        content_below: Dict[int, int] = {}
        allocation: Dict[int, int] = {}
        for node in reversed(nodes):
            total = 1
            heavy_child = heavy[id(node)]
            for child in node.children:
                if child is heavy_child:
                    total += content_below[id(child)]
                else:
                    total += allocation[id(child)]
            content_below[id(node)] = total
            if node is root or heavy[id(node.parent)] is not node:
                allocation[id(node)] = total + self._pad(total, mantissa_bits)
        self.universe = allocation[id(root)]

        # Pass 3 (top-down): assign points in path-layout order (light
        # subtrees before the heavy continuation), skipping each path's pad
        # once its whole block is placed, and round every interval length.
        raw: List[Tuple[XmlElement, int, int, int]] = []
        position = 0
        stack: List[Tuple[object, Optional[int]]] = [(root, None)]
        while stack:
            node, content_end = stack.pop()
            if node is None:  # pad marker: the path block above is complete
                position += content_end or 0
                continue
            assert isinstance(node, XmlElement)
            if content_end is None:  # path top: fix E, schedule the pad
                content_end = position + content_below[id(node)]
                stack.append(
                    (None, allocation[id(node)] - content_below[id(node)])
                )
            point = position
            position += 1
            exponent, mantissa = round_up_family(
                content_end - 1 - point, mantissa_bits
            )
            raw.append((node, point, exponent, mantissa))
            heavy_child = heavy[id(node)]
            visit = [child for child in node.children if child is not heavy_child]
            if heavy_child is not None:
                visit.append(heavy_child)
            for child in reversed(visit):
                stack.append((child, content_end if child is heavy_child else None))

        # Pack at document-wide fixed widths so every label is one
        # comparable fixed-length bit string (the Fig 14 accounting).
        self._x_bits = max(1, max(point for _, point, _, _ in raw).bit_length())
        self._exp_bits = max(1, max(exp for _, _, exp, _ in raw).bit_length())
        self._mant_bits = mantissa_bits
        for node, point, exponent, mantissa in raw:
            value = (
                (point << (self._exp_bits + self._mant_bits))
                | (exponent << self._mant_bits)
                | mantissa
            )
            self._set_label(node, Bits(value, self.label_length))

    @staticmethod
    def _pad(content: int, mantissa_bits: int) -> int:
        """Empty slots a path reserves: one unit in the last place at its
        content scale, which strictly bounds any member's round-up
        overshoot (lengths never exceed ``content - 1``)."""
        if content < (1 << mantissa_bits):
            return 0
        return 1 << (content.bit_length() - mantissa_bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def label_length(self) -> int:
        """Fixed per-document label width: point + exponent + mantissa."""
        return self._x_bits + self._exp_bits + self._mant_bits

    def label_components(self, label: Bits) -> Tuple[int, int, int]:
        """Unpack a label into ``(point, exponent, mantissa)``."""
        if label.length != self.label_length:
            raise LabelingError(
                f"label width {label.length} does not match this scheme's "
                f"layout ({self.label_length} bits)"
            )
        mantissa = label.value & ((1 << self._mant_bits) - 1)
        exponent = (label.value >> self._mant_bits) & ((1 << self._exp_bits) - 1)
        point = label.value >> (self._mant_bits + self._exp_bits)
        return point, exponent, mantissa

    def is_ancestor_label(self, ancestor_label: Bits, descendant_label: Bits) -> bool:
        point_a, exponent, mantissa = self.label_components(ancestor_label)
        point_d, _, _ = self.label_components(descendant_label)
        return point_a < point_d <= point_a + (mantissa << exponent)

    def label_bits(self, label: Bits) -> int:
        return max(label.length, 1)


class DahlgaardScheme(_SlackIntervalScheme):
    """The Dahlgaard–Knudsen–Rotbart tuning: ``lg n + 2 lg lg n + O(1)`` bits.

    Mantissa width ``~ lg lg n`` makes the per-light-edge slack factor
    ``1 + 1/lg n``; with at most ``lg n`` light edges on any root-leaf
    path the universe stays within a constant factor of ``n``, so the
    point costs ``lg n + O(1)`` bits and the rounded length
    ``2 lg lg n + O(1)`` more — the optimal total for ancestry labels
    (ESA'15, "A simple and optimal ancestry labeling scheme for trees").
    """

    name = "dkr"

    def _mantissa_bits(self, node_count: int, depth: int) -> int:
        log_n = max(1, (max(node_count, 2) - 1).bit_length())
        return log_n.bit_length() + 1


class FraigniaudKormanScheme(_SlackIntervalScheme):
    """A small-depth tuning in the spirit of Fraigniaud–Korman:
    ``lg n + lg lg n + lg d + O(1)`` bits.

    Mantissa width ``~ lg d`` caps the per-light-edge slack at ``1 + 1/d``;
    since nested light edges are also bounded by the depth ``d``, the
    universe again stays ``O(n)``, and the rounded length costs
    ``lg d + lg lg n`` bits instead of ``2 lg lg n`` — the better trade
    exactly when ``lg d < lg lg n``, i.e. on the shallow, wide documents
    that dominate real XML corpora (SODA'10's compact ancestry schemes
    for trees of small depth).
    """

    name = "fk-depth"

    def _mantissa_bits(self, node_count: int, depth: int) -> int:
        return max(depth, 1).bit_length() + 1
