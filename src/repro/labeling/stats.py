"""Per-scheme label-space statistics and storage estimates.

Section 5.1 reports only the *maximum* label size per dataset; an adopter
deciding on column types needs the whole distribution.  This module
computes, for any labeled scheme:

* the label-size histogram (bits, bucketed),
* the fixed-length column cost (every label at the widest size — what the
  paper's Figure 14 charges),
* the exact variable-length cost, and the varint-encoded on-disk cost,

and renders them as a :class:`~repro.tables.ResultTable` for easy
printing alongside the paper's exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.labeling.base import LabelingScheme
from repro.labeling.codec import VarintCodec
from repro.tables import ResultTable

__all__ = [
    "DEFAULT_SPACE_FACTORIES",
    "LabelSpaceReport",
    "compare_space",
    "default_space_factories",
    "label_space_report",
]


def default_space_factories() -> Sequence:
    """The standard scheme line-up for space comparisons.

    Interval, Prime (Opt1+Opt2 with the experiments' 16-bit leaf
    threshold), Prefix-2, and the two compact ancestry baselines of
    :mod:`repro.labeling.compact` — the same five columns the extended
    Fig 14 exhibit charts.  Imported lazily so this module keeps no
    import-time dependency on every scheme.
    """
    from repro.labeling.compact import DahlgaardScheme, FraigniaudKormanScheme
    from repro.labeling.interval import XissIntervalScheme
    from repro.labeling.prefix import Prefix2Scheme
    from repro.labeling.prime import PrimeScheme

    return (
        XissIntervalScheme,
        lambda: PrimeScheme(
            reserved_primes=64, power2_leaves=True, leaf_threshold_bits=16
        ),
        Prefix2Scheme,
        DahlgaardScheme,
        FraigniaudKormanScheme,
    )


#: Sentinel so :func:`compare_space` can default to the standard line-up
#: without resolving the factories at import time.
DEFAULT_SPACE_FACTORIES = None


@dataclass(frozen=True)
class LabelSpaceReport:
    """Space statistics for one scheme on one document."""

    scheme: str
    node_count: int
    max_bits: int
    mean_bits: float
    median_bits: int
    total_bits: int
    fixed_column_bytes: int
    varint_column_bytes: int
    histogram: Dict[int, int]  # bucket lower bound (bits) -> count

    @property
    def fixed_overhead_ratio(self) -> float:
        """How much padding the fixed-length layout wastes vs exact bits."""
        exact_bytes = (self.total_bits + 7) // 8
        if exact_bytes == 0:
            return 0.0
        return self.fixed_column_bytes / exact_bytes


def label_space_report(
    scheme: LabelingScheme, bucket_bits: int = 8
) -> LabelSpaceReport:
    """Measure the label-space profile of a labeled ``scheme``."""
    if bucket_bits < 1:
        raise ValueError(f"bucket_bits must be >= 1, got {bucket_bits}")
    sizes = sorted(
        scheme.label_bits(scheme.label_of(node)) for node in scheme.labeled_nodes()
    )
    if not sizes:
        raise ValueError("scheme has no labels; call label_tree() first")
    histogram: Dict[int, int] = {}
    for size in sizes:
        bucket = (size // bucket_bits) * bucket_bits
        histogram[bucket] = histogram.get(bucket, 0) + 1
    max_bits = sizes[-1]
    fixed_record_bytes = (max_bits + 7) // 8
    varint = VarintCodec.for_scheme(scheme)
    return LabelSpaceReport(
        scheme=scheme.name,
        node_count=len(sizes),
        max_bits=max_bits,
        mean_bits=sum(sizes) / len(sizes),
        median_bits=sizes[len(sizes) // 2],
        total_bits=sum(sizes),
        fixed_column_bytes=fixed_record_bytes * len(sizes),
        varint_column_bytes=len(varint.encode_column(scheme)),
        histogram=histogram,
    )


def compare_space(
    root, scheme_factories: Sequence = DEFAULT_SPACE_FACTORIES, bucket_bits: int = 8
) -> ResultTable:
    """Label ``root`` with each factory and tabulate the space profiles.

    ``scheme_factories`` is a sequence of zero-argument callables returning
    fresh :class:`~repro.labeling.base.LabelingScheme` instances; omitted,
    it defaults to :func:`default_space_factories` (which includes the
    compact ancestry baselines).
    """
    if scheme_factories is DEFAULT_SPACE_FACTORIES:
        scheme_factories = default_space_factories()
    table = ResultTable(
        title="Label space comparison",
        columns=(
            "scheme",
            "max bits",
            "mean bits",
            "fixed KiB",
            "varint KiB",
            "padding x",
        ),
    )
    for factory in scheme_factories:
        scheme = factory()
        scheme.label_tree(root)
        report = label_space_report(scheme, bucket_bits=bucket_bits)
        table.add_row(
            report.scheme,
            report.max_bits,
            round(report.mean_bits, 1),
            round(report.fixed_column_bytes / 1024, 2),
            round(report.varint_column_bytes / 1024, 2),
            round(report.fixed_overhead_ratio, 2),
        )
    return table
