"""The common protocol every labeling scheme implements.

A *labeling scheme* assigns each element node a label such that structural
relationships (ancestor/descendant, and for most schemes parent/child) can
be decided from two labels alone, without touching the tree.  The paper's
experiments additionally need each scheme to support *dynamic updates* and
to report exactly how many existing nodes had to be relabeled — that count
is the y-axis of Figures 16, 17 and 18.

Design notes
------------
* A scheme instance is bound to one document: :meth:`LabelingScheme.label_tree`
  stores the node→label mapping inside the instance.  Nodes are keyed by
  identity (``XmlElement`` does not define value equality).
* Update operations mutate the tree *and* the label mapping, returning a
  :class:`RelabelReport`.  The report is computed by diffing labels before
  and after, so a scheme cannot accidentally under-report its relabeling
  work; the newly inserted node counts as one relabel, matching the paper
  ("the number of nodes that need to be re-labeled for the prefix labeling
  scheme is 1, which is essentially the inserted node").
* Schemes whose updates only ever touch labels through :meth:`_set_label`
  (never clearing and re-assigning the whole mapping) can set
  ``_tracks_relabels = True``: ``insert_leaf`` then records the labels
  actually written during the structural change instead of snapshotting
  and diffing the full mapping, turning an O(document) report into an
  O(changes) one with identical contents.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import LabelingError
from repro.xmlkit.tree import XmlElement

__all__ = ["Relationship", "RelabelReport", "LabelingScheme"]


class Relationship(enum.Enum):
    """Structural relationship between two nodes, decided from labels."""

    SELF = "self"
    ANCESTOR = "ancestor"  # first node is an ancestor of the second
    DESCENDANT = "descendant"  # first node is a descendant of the second
    UNRELATED = "unrelated"


@dataclass
class RelabelReport:
    """Outcome of one dynamic update.

    ``relabeled`` lists every node whose label changed, *including* the newly
    inserted node (if any).  ``new_node`` is the inserted element, when the
    operation inserted one.
    """

    relabeled: List[XmlElement] = field(default_factory=list)
    new_node: Optional[XmlElement] = None

    @property
    def count(self) -> int:
        """Number of relabeled nodes — the paper's update-cost metric."""
        return len(self.relabeled)


class LabelingScheme(ABC):
    """Base class for all labeling schemes.

    Subclasses implement :meth:`_assign_labels` (bulk labeling),
    :meth:`is_ancestor_label` (the label-only ancestor test) and
    :meth:`label_bits` (storage size).  Default update operations relabel
    canonically and diff; schemes with cheaper incremental behaviour
    (prefix append, prime insert) override the mutation hooks.
    """

    #: Human-readable scheme name used by the benchmark harness.
    name: str = "abstract"

    #: Subclasses whose dynamic updates route every label write through
    #: :meth:`_set_label` (no wholesale re-assignment) may opt into the
    #: O(changes) relabel report of :meth:`insert_leaf`.
    _tracks_relabels: bool = False

    #: Sentinel recording "node had no label before this update".
    _NO_LABEL = object()

    def __init__(self) -> None:
        self._labels: Dict[int, Any] = {}
        self._nodes: Dict[int, XmlElement] = {}
        self._root: Optional[XmlElement] = None
        #: While an update is being tracked: node id -> label it carried
        #: before the update (``_NO_LABEL`` if it had none).
        self._relabel_track: Optional[Dict[int, Any]] = None

    # ------------------------------------------------------------------
    # Labeling
    # ------------------------------------------------------------------

    def label_tree(self, root: XmlElement) -> "LabelingScheme":
        """Label every node in the tree rooted at ``root``; returns self."""
        self._labels.clear()
        self._nodes.clear()
        self._root = root
        self._assign_labels(root)
        return self

    @abstractmethod
    def _assign_labels(self, root: XmlElement) -> None:
        """Populate the label mapping for every node under ``root``."""

    @property
    def root(self) -> XmlElement:
        if self._root is None:
            raise LabelingError("label_tree() has not been called")
        return self._root

    def _set_label(self, node: XmlElement, label: Any) -> None:
        key = id(node)
        if self._relabel_track is not None and key not in self._relabel_track:
            self._relabel_track[key] = self._labels.get(key, self._NO_LABEL)
        self._labels[key] = label
        self._nodes[key] = node

    def _drop_label(self, node: XmlElement) -> None:
        self._labels.pop(id(node), None)
        self._nodes.pop(id(node), None)

    def label_of(self, node: XmlElement) -> Any:
        """Return the label assigned to ``node``."""
        try:
            return self._labels[id(node)]
        except KeyError:
            raise LabelingError(f"node {node!r} has no label") from None

    def labeled_nodes(self) -> Iterable[XmlElement]:
        """All nodes that currently carry a label."""
        return list(self._nodes.values())

    # ------------------------------------------------------------------
    # Relationship tests (label-only)
    # ------------------------------------------------------------------

    @abstractmethod
    def is_ancestor_label(self, ancestor_label: Any, descendant_label: Any) -> bool:
        """True iff the first label's node is a *proper* ancestor of the second's."""

    def is_ancestor(self, ancestor: XmlElement, descendant: XmlElement) -> bool:
        """Ancestor test on nodes, delegated to the label-only test."""
        return self.is_ancestor_label(self.label_of(ancestor), self.label_of(descendant))

    def relationship(self, first: XmlElement, second: XmlElement) -> Relationship:
        """Classify the relationship between two labeled nodes."""
        label_a, label_b = self.label_of(first), self.label_of(second)
        if label_a == label_b:
            return Relationship.SELF
        if self.is_ancestor_label(label_a, label_b):
            return Relationship.ANCESTOR
        if self.is_ancestor_label(label_b, label_a):
            return Relationship.DESCENDANT
        return Relationship.UNRELATED

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @abstractmethod
    def label_bits(self, label: Any) -> int:
        """Storage size of one label, in bits."""

    def max_label_bits(self) -> int:
        """Largest label size over the whole document, in bits.

        This is the "fixed length label" size of Section 5.1.2: storing every
        label at the width of the widest one.
        """
        if not self._labels:
            raise LabelingError("label_tree() has not been called")
        return max(self.label_bits(label) for label in self._labels.values())

    def total_label_bits(self) -> int:
        """Sum of all label sizes (variable-length storage), in bits."""
        if not self._labels:
            raise LabelingError("label_tree() has not been called")
        return sum(self.label_bits(label) for label in self._labels.values())

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------

    def _snapshot(self) -> Dict[int, Any]:
        return dict(self._labels)

    def _diff_report(
        self, before: Dict[int, Any], new_node: Optional[XmlElement]
    ) -> RelabelReport:
        changed = [
            self._nodes[node_id]
            for node_id, label in self._labels.items()
            if before.get(node_id) != label
        ]
        return RelabelReport(relabeled=changed, new_node=new_node)

    def _tracked_report(
        self, track: Dict[int, Any], new_node: Optional[XmlElement]
    ) -> RelabelReport:
        """Relabel report from recorded label writes, in write order.

        Equivalent to :meth:`_diff_report` whenever every label change of
        the update went through :meth:`_set_label`: a node counts as
        relabeled iff it still carries a label and that label differs from
        the one captured before its first write.
        """
        changed = [
            self._nodes[node_id]
            for node_id, old in track.items()
            if node_id in self._labels and self._labels[node_id] != old
        ]
        return RelabelReport(relabeled=changed, new_node=new_node)

    def insert_leaf(
        self,
        parent: XmlElement,
        tag: str = "new",
        index: Optional[int] = None,
    ) -> RelabelReport:
        """Insert a new leaf under ``parent`` and label it.

        ``index=None`` appends as the last child (the unordered-update
        workload of Figure 16); an explicit index inserts at that sibling
        position.  Returns the relabel report.
        """
        if self._tracks_relabels:
            node = XmlElement(tag)
            parent.insert(len(parent.children) if index is None else index, node)
            self._relabel_track = track = {}
            try:
                self._after_structural_change(node)
            finally:
                self._relabel_track = None
            return self._tracked_report(track, node)
        before = self._snapshot()
        node = XmlElement(tag)
        parent.insert(len(parent.children) if index is None else index, node)
        self._after_structural_change(node)
        return self._diff_report(before, node)

    def insert_internal(
        self,
        parent: XmlElement,
        start: int,
        end: int,
        tag: str = "wrapper",
    ) -> RelabelReport:
        """Interpose a new element over children ``[start, end)`` of ``parent``.

        This is the non-leaf insertion of Figure 17 ("insert a node as a
        parent of the first level-4 node").
        """
        before = self._snapshot()
        node = parent.wrap_children(tag, start, end)
        self._after_structural_change(node)
        return self._diff_report(before, node)

    def delete(self, node: XmlElement) -> RelabelReport:
        """Delete ``node`` and its subtree.

        Deletion never forces relabeling in any scheme the paper studies
        ("the deletion of nodes does not affect the labels of other nodes"),
        and the default implementation honours that: it only removes labels.
        """
        if node.is_root:
            raise LabelingError("cannot delete the document root")
        for gone in node.iter_preorder():
            self._drop_label(gone)
        node.detach()
        return RelabelReport()

    def _after_structural_change(self, new_node: XmlElement) -> None:
        """Re-establish a valid labeling after an insertion.

        The default *canonically relabels the whole tree*, which models
        static schemes (interval): the diff then reveals how much of the
        document a static scheme must touch.  Dynamic schemes override this
        with genuinely incremental logic.
        """
        self._assign_labels(self.root)

    # ------------------------------------------------------------------
    # Verification helper (used heavily by the test suite)
    # ------------------------------------------------------------------

    def check_against_tree(self) -> Tuple[int, int]:
        """Exhaustively verify label tests against ground-truth tree walks.

        Returns ``(pairs_checked, mismatches)``; a correct scheme always has
        zero mismatches.  Quadratic — intended for tests on small trees.
        """
        nodes = list(self.root.iter_preorder())
        mismatches = 0
        pairs = 0
        for first in nodes:
            for second in nodes:
                if first is second:
                    continue
                pairs += 1
                truth = first.is_ancestor_of(second)
                claimed = self.is_ancestor(first, second)
                if truth != claimed:
                    mismatches += 1
        return pairs, mismatches
