"""Tree decomposition for deep trees (Kaplan, Milo & Shabo, SODA'02).

Section 3.2 notes the prime scheme "can also benefit from the tree
decomposition approach when the depth of the tree is high": split the tree
into sub-trees of bounded depth, label each sub-tree independently, and
label a *global tree* formed by the sub-tree roots.  A node's effective
label is then ``(global label of its sub-tree root, local label)``, and the
per-component label sizes stay bounded by the (much smaller) component
depth.

Ancestor test on decomposed labels: ``x`` is an ancestor of ``y`` iff

* same component: local ancestor test, or
* different components: ``x``'s component root is a (non-strict) global
  ancestor of ``y``'s component root **and** (when ``x`` is not its
  component's root) ``x`` is a local ancestor of the *entry node* — the
  ancestor of ``y``'s component root that lives in ``x``'s component.

To keep that second case decidable from stored labels alone, the global
tree stores, for every component, the local label of its *attachment node*
(the parent, inside the parent component, of the component's root).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.labeling.base import LabelingScheme
from repro.xmlkit.tree import XmlElement

__all__ = ["DecomposedLabeling", "decompose_tree"]


@dataclass(frozen=True)
class _Component:
    """One sub-tree of the decomposition."""

    index: int
    root: XmlElement
    parent_component: Optional[int]
    #: node (in the parent component) that the component root hangs below
    attachment: Optional[XmlElement]


class DecomposedLabeling:
    """Labels a deep tree as bounded-depth components plus a component tree.

    Parameters
    ----------
    root:
        Document root.
    scheme_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.labeling.base.LabelingScheme` for each component and
        for the global component tree.
    max_depth:
        Maximum depth (edges) of any component; the tree is cut every
        ``max_depth + 1`` levels.
    """

    def __init__(
        self,
        root: XmlElement,
        scheme_factory: Callable[[], LabelingScheme],
        max_depth: int = 3,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.root = root
        self.max_depth = max_depth
        self._components: List[_Component] = []
        self._component_of: Dict[int, int] = {}
        self._local_schemes: List[LabelingScheme] = []
        self._decompose(root)
        for component in self._components:
            scheme = scheme_factory()
            self._label_component(scheme, component)
            self._local_schemes.append(scheme)
        self._global_scheme = scheme_factory()
        self._global_scheme.label_tree(self._build_component_tree())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _decompose(self, root: XmlElement) -> None:
        """Cut the tree into components of depth <= max_depth."""
        pending = [(root, None, None)]  # (component root, parent comp, attachment)
        while pending:
            comp_root, parent_index, attachment = pending.pop()
            index = len(self._components)
            self._components.append(
                _Component(
                    index=index,
                    root=comp_root,
                    parent_component=parent_index,
                    attachment=attachment,
                )
            )
            frontier = [(comp_root, 0)]
            while frontier:
                node, depth = frontier.pop()
                self._component_of[id(node)] = index
                for child in node.children:
                    if depth + 1 > self.max_depth:
                        pending.append((child, index, node))
                    else:
                        frontier.append((child, depth + 1))

    def _component_members(self, component: _Component) -> List[XmlElement]:
        members = []
        frontier = [component.root]
        while frontier:
            node = frontier.pop()
            members.append(node)
            frontier.extend(
                child
                for child in node.children
                if self._component_of[id(child)] == component.index
            )
        return members

    def _label_component(self, scheme: LabelingScheme, component: _Component) -> None:
        """Label one component in isolation (as a detached copy of its shape).

        We cannot call ``label_tree`` on the in-place subtree because its
        children cross component boundaries, so we rebuild the component's
        shape, label it, and transfer labels back by construction order.
        """
        mapping: Dict[int, XmlElement] = {}

        def rebuild(node: XmlElement) -> XmlElement:
            clone = XmlElement(node.tag)
            mapping[id(clone)] = node
            for child in node.children:
                if self._component_of[id(child)] == component.index:
                    clone.append(rebuild(child))
            return clone

        shadow_root = rebuild(component.root)
        scheme.label_tree(shadow_root)
        # Transfer: label_of(shadow) becomes label of the original node.
        for shadow in shadow_root.iter_preorder():
            original = mapping[id(shadow)]
            scheme._set_label(original, scheme.label_of(shadow))

    def _build_component_tree(self) -> XmlElement:
        nodes = [XmlElement(f"component-{c.index}") for c in self._components]
        self._global_nodes = nodes
        for component in self._components:
            if component.parent_component is not None:
                nodes[component.parent_component].append(nodes[component.index])
        return nodes[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def component_index(self, node: XmlElement) -> int:
        """Index of the component containing ``node``."""
        return self._component_of[id(node)]

    def local_label(self, node: XmlElement):
        """The node's label within its own component."""
        return self._local_schemes[self.component_index(node)].label_of(node)

    def global_label(self, node: XmlElement):
        """The component-tree label of the node's component."""
        index = self.component_index(node)
        return self._global_scheme.label_of(self._global_nodes[index])

    def is_ancestor(self, first: XmlElement, second: XmlElement) -> bool:
        """Ancestor test across the decomposition."""
        comp_a, comp_b = self.component_index(first), self.component_index(second)
        if comp_a == comp_b:
            return self._local_schemes[comp_a].is_ancestor(first, second)
        node_a = self._global_nodes[comp_a]
        node_b = self._global_nodes[comp_b]
        if not self._global_scheme.is_ancestor_label(
            self._global_scheme.label_of(node_a), self._global_scheme.label_of(node_b)
        ):
            return False
        # first's component strictly contains an ancestor of second's
        # component root; find the component on the path whose parent is
        # comp_a and test locally against its attachment node.
        component = self._components[comp_b]
        while component.parent_component is not None and component.parent_component != comp_a:
            component = self._components[component.parent_component]
        if component.parent_component != comp_a:
            return False
        attachment = component.attachment
        assert attachment is not None
        if attachment is first:
            return True
        return self._local_schemes[comp_a].is_ancestor(first, attachment)

    def max_label_bits(self) -> int:
        """Widest combined (global + local) label over the document, in bits."""
        global_bits = self._global_scheme.max_label_bits()
        local_bits = max(scheme.max_label_bits() for scheme in self._local_schemes)
        return global_bits + local_bits

    @property
    def component_count(self) -> int:
        return len(self._components)


def decompose_tree(
    root: XmlElement,
    scheme_factory: Callable[[], LabelingScheme],
    max_depth: int = 3,
) -> DecomposedLabeling:
    """Convenience wrapper around :class:`DecomposedLabeling`."""
    return DecomposedLabeling(root, scheme_factory, max_depth=max_depth)
