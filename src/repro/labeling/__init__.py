"""Labeling schemes: the paper's prime scheme and every baseline it fights.

All schemes implement the :class:`repro.labeling.base.LabelingScheme`
protocol — label a tree, answer ancestor/descendant questions from labels
alone, report label sizes in bits, and apply dynamic updates while counting
exactly which nodes had to be relabeled (the currency of Figures 16–18).

* :mod:`repro.labeling.interval` — interval/range baselines: XISS
  ``(order, size)``, XRel-style ``(start, end)``, and the QRS float variant.
* :mod:`repro.labeling.prefix` — binary prefix baselines Prefix-1 and
  Prefix-2 (Cohen–Kaplan–Milo).
* :mod:`repro.labeling.dewey` — Dewey order labels (Tatarinov et al.).
* :mod:`repro.labeling.compact` — near-optimal compact ancestry baselines:
  the Dahlgaard–Knudsen–Rotbart ``lg n + 2 lg lg n``-bit scheme and a
  Fraigniaud–Korman-style small-depth tuning.
* :mod:`repro.labeling.prime` — the paper's bottom-up and top-down prime
  number schemes, the latter with optimizations Opt1/Opt2.
* :mod:`repro.labeling.pathcollapse` — optimization Opt3 (combine repeated
  paths).
* :mod:`repro.labeling.decompose` — tree decomposition for deep trees.
* :mod:`repro.labeling.sizemodel` — the analytic maximum-label-size formulas
  of Section 3.1 (Figures 4 and 5).
"""

from repro.labeling.base import LabelingScheme, RelabelReport, Relationship
from repro.labeling.codec import FixedWidthCodec, VarintCodec
from repro.labeling.compact import DahlgaardScheme, FraigniaudKormanScheme
from repro.labeling.dewey import DeweyScheme
from repro.labeling.interval import (
    FloatIntervalScheme,
    StartEndIntervalScheme,
    XissIntervalScheme,
)
from repro.labeling.prefix import Bits, Prefix1Scheme, Prefix2Scheme
from repro.labeling.prime import BottomUpPrimeScheme, PrimeLabel, PrimeScheme
from repro.labeling.reconstruct import (
    reconstruct_from_dewey,
    reconstruct_from_intervals,
    reconstruct_from_prefix,
    reconstruct_from_prime,
)
from repro.labeling.stats import LabelSpaceReport, compare_space, label_space_report

__all__ = [
    "LabelingScheme",
    "RelabelReport",
    "Relationship",
    "FixedWidthCodec",
    "VarintCodec",
    "DahlgaardScheme",
    "DeweyScheme",
    "FraigniaudKormanScheme",
    "FloatIntervalScheme",
    "StartEndIntervalScheme",
    "XissIntervalScheme",
    "Bits",
    "Prefix1Scheme",
    "Prefix2Scheme",
    "BottomUpPrimeScheme",
    "PrimeLabel",
    "PrimeScheme",
    "reconstruct_from_dewey",
    "reconstruct_from_intervals",
    "reconstruct_from_prefix",
    "reconstruct_from_prime",
    "LabelSpaceReport",
    "compare_space",
    "label_space_report",
]
