"""Analytic maximum-label-size models (Section 3.1, equations 1–3).

The paper compares the three dynamic schemes by the maximum number of bits a
label can need on a worst-case *perfect* tree with depth ``D`` and fan-out
``F``:

* Prefix-1:  ``Lmax = D * F``                                   (eq. 1)
* Prefix-2:  ``Lmax = D * 4 * log2(F)``                         (eq. 2)
* Prime:     ``Lmax = D * log2(N * log2(N))`` with
  ``N = sum_{i=0..D} F^i``                                      (eq. 3)

Figures 4 and 5 plot the *per-level* factor of each formula (the "maximum
size of a self label", i.e. ``Lmax / D``) against fan-out (D fixed at 2) and
against depth (F fixed at 15).  The functions here return exactly those
series so the benchmark harness can print them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "perfect_tree_nodes",
    "prefix1_max_bits",
    "prefix2_max_bits",
    "prime_max_bits",
    "prefix1_self_label_bits",
    "prefix2_self_label_bits",
    "prime_self_label_bits",
    "figure4_series",
    "figure5_series",
]


def perfect_tree_nodes(depth: int, fanout: int) -> int:
    """Number of nodes in a perfect tree: ``sum_{i=0..D} F^i``."""
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if fanout == 1:
        return depth + 1
    return (fanout ** (depth + 1) - 1) // (fanout - 1)


def prefix1_self_label_bits(fanout: int) -> float:
    """Per-level label growth of Prefix-1: the ``F``-th sibling code has F bits."""
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    return float(fanout)


def prefix2_self_label_bits(fanout: int) -> float:
    """Per-level label growth of Prefix-2: ``4 * log2(F)`` bits."""
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    return 4.0 * math.log2(fanout) if fanout > 1 else 1.0


def prime_self_label_bits(depth: int, fanout: int) -> float:
    """Per-level label growth of Prime: bits of the ``N``-th prime,
    estimated as ``log2(N * log2(N))`` with ``N`` the perfect-tree node count.
    """
    nodes = perfect_tree_nodes(depth, fanout)
    if nodes < 2:
        return 1.0
    return math.log2(nodes * math.log2(nodes))


def prefix1_max_bits(depth: int, fanout: int) -> float:
    """Equation 1: ``Lmax = D * F``."""
    return depth * prefix1_self_label_bits(fanout)


def prefix2_max_bits(depth: int, fanout: int) -> float:
    """Equation 2: ``Lmax = D * 4 log2(F)``."""
    return depth * prefix2_self_label_bits(fanout)


def prime_max_bits(depth: int, fanout: int) -> float:
    """Equation 3: ``Lmax = D * log2(N log2 N)`` on the perfect tree."""
    return depth * prime_self_label_bits(depth, fanout)


def figure4_series(
    fanouts: Iterable[int] = range(1, 51), depth: int = 2
) -> List[Tuple[int, Dict[str, float]]]:
    """Figure 4: self-label bits vs fan-out at fixed depth (default D=2)."""
    rows = []
    for fanout in fanouts:
        rows.append(
            (
                fanout,
                {
                    "prefix-1": prefix1_self_label_bits(fanout),
                    "prefix-2": prefix2_self_label_bits(fanout),
                    "prime": prime_self_label_bits(depth, fanout),
                },
            )
        )
    return rows


def figure5_series(
    depths: Iterable[int] = range(0, 11), fanout: int = 15
) -> List[Tuple[int, Dict[str, float]]]:
    """Figure 5: self-label bits vs depth at fixed fan-out (default F=15)."""
    rows = []
    for depth in depths:
        rows.append(
            (
                depth,
                {
                    "prefix-1": prefix1_self_label_bits(fanout),
                    "prefix-2": prefix2_self_label_bits(fanout),
                    "prime": prime_self_label_bits(depth, fanout),
                },
            )
        )
    return rows
