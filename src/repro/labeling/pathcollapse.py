"""Optimization Opt3: combine repeated paths (Section 3.2, Figure 6).

Real-world XML conforming to a DTD repeats structural patterns — a ``book``
with three ``author`` children carries the path ``book/author`` three times.
Opt3 collapses identical sibling subtree *shapes* into one representative
node, so the shared structure is labeled once; the collapsed node remembers
how many original siblings it stands for and their sibling positions, which
is "the position information at the leaf nodes to indicate their orders
among the siblings".

The collapse operates on the *shape* of subtrees (tag structure, ignoring
text and attributes): two sibling subtrees merge iff they are shape-equal.
Labeling the collapsed tree with any scheme yields an upper bound on
structural-query fidelity with a strictly smaller label budget; the
experiments (Figure 13's "Opt3" bars) measure exactly that size reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.xmlkit.tree import XmlElement

__all__ = ["CollapsedNode", "collapse_tree", "collapse_ratio"]


@dataclass
class CollapsedNode:
    """A node of the collapsed tree.

    ``multiplicity`` counts how many original sibling subtrees this node
    represents; ``positions`` records their original sibling indices so
    document order can be reconstructed.
    """

    tag: str
    multiplicity: int = 1
    positions: List[int] = field(default_factory=list)
    children: List["CollapsedNode"] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        """Nodes in this collapsed subtree (each merged group counts once)."""
        return 1 + sum(child.node_count for child in self.children)

    def to_element(self) -> XmlElement:
        """Materialize the collapsed structure as a plain element tree."""
        node = XmlElement(self.tag)
        if self.multiplicity > 1:
            node.attributes["repro:count"] = str(self.multiplicity)
            node.attributes["repro:positions"] = ",".join(map(str, self.positions))
        for child in self.children:
            node.append(child.to_element())
        return node


def _shape_signature(node: XmlElement, cache: Dict[int, Tuple]) -> Tuple:
    """A hashable signature of the subtree's tag structure."""
    cached = cache.get(id(node))
    if cached is None:
        cached = (node.tag, tuple(_shape_signature(child, cache) for child in node.children))
        cache[id(node)] = cached
    return cached


def collapse_tree(root: XmlElement) -> CollapsedNode:
    """Collapse repeated sibling patterns under every node of ``root``.

    Sibling subtrees with identical shape signatures merge into a single
    collapsed child whose ``multiplicity``/``positions`` record the originals.
    Children are recursively collapsed first, so nested repetition (three
    ``act``s each holding five identical ``scene`` shapes) compounds.
    """
    cache: Dict[int, Tuple] = {}

    def visit(node: XmlElement, position: int) -> CollapsedNode:
        collapsed = CollapsedNode(tag=node.tag, positions=[position])
        groups: Dict[Tuple, CollapsedNode] = {}
        for index, child in enumerate(node.children):
            signature = _shape_signature(child, cache)
            existing = groups.get(signature)
            if existing is None:
                child_collapsed = visit(child, index)
                groups[signature] = child_collapsed
                collapsed.children.append(child_collapsed)
            else:
                existing.multiplicity += 1
                existing.positions.append(index)
        return collapsed

    return visit(root, 0)


def collapse_ratio(root: XmlElement) -> float:
    """Fraction of nodes removed by Opt3 (0.0 = nothing collapsed)."""
    original = root.stats().node_count
    collapsed = collapse_tree(root).node_count
    return 1.0 - collapsed / original
