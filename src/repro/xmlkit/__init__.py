"""From-scratch XML substrate: tokenizer, parser, ordered tree, serializer.

The paper's data model is the *ordered XML tree*: element nodes whose
children appear in document order.  This subpackage provides everything the
labeling schemes need without touching the standard library's ``xml``
package:

* :mod:`repro.xmlkit.tokenizer` — a hand-written scanner for a practical XML
  subset (elements, attributes, character data, CDATA, comments, processing
  instructions, the five predefined entities, and numeric character
  references);
* :mod:`repro.xmlkit.events` + :mod:`repro.xmlkit.parser` — a SAX-like event
  stream with well-formedness checking, and a DOM builder on top;
* :mod:`repro.xmlkit.tree` — the ordered :class:`XmlElement` tree with the
  structural statistics (node count, depth, fan-out) the size analysis needs;
* :mod:`repro.xmlkit.serialize` — serialization back to XML text;
* :mod:`repro.xmlkit.builder` — terse programmatic construction
  (``element("book", element("author", text="John"))``).
"""

from repro.xmlkit.builder import element
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.parser import iter_events, parse_document
from repro.xmlkit.serialize import serialize
from repro.xmlkit.streaming import StreamedLabel, stream_labels, stream_prime_labels
from repro.xmlkit.tree import TreeStats, XmlElement

__all__ = [
    "element",
    "Characters",
    "Comment",
    "EndElement",
    "ProcessingInstruction",
    "StartElement",
    "XmlEvent",
    "iter_events",
    "parse_document",
    "serialize",
    "StreamedLabel",
    "stream_labels",
    "stream_prime_labels",
    "TreeStats",
    "XmlElement",
]
