"""Single-pass (streaming) labelers over the SAX event stream.

Bulk-loading a repository should not require materializing each document:
the top-down prime scheme, start/end intervals and Dewey labels can all be
assigned in one pass over parse events, holding only the open-element
stack.  :func:`stream_labels` yields ``StreamedLabel`` records (tag, path,
depth, label) in document order, byte-for-byte equal to what the
tree-based schemes assign (the tests cross-validate).

Opt2 (power-of-two leaves) is *not* streamable at start-tags — whether a
node is a leaf is unknown until its end-tag — so the streaming prime
labeler implements the original scheme, exactly like
:class:`repro.order.document.OrderedDocument` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List

from repro.primes.gen import PrimeGenerator
from repro.xmlkit.events import EndElement, StartElement
from repro.xmlkit.parser import iter_events

__all__ = ["StreamedLabel", "stream_labels", "stream_prime_labels"]


@dataclass(frozen=True)
class StreamedLabel:
    """One labeled element from a streaming pass."""

    tag: str
    path: str
    depth: int
    label: Any


def _stream_prime(text: str) -> Iterator[StreamedLabel]:
    from repro.labeling.prime import PrimeLabel

    generator = PrimeGenerator()
    stack: List[tuple[str, int]] = []  # (tag, full label value)
    for event in iter_events(text):
        if isinstance(event, StartElement):
            if not stack:
                value = 1
                self_label = 1
            else:
                self_label = generator.get_prime()
                value = stack[-1][1] * self_label
            path = "/" + "/".join([tag for tag, _v in stack] + [event.name])
            yield StreamedLabel(
                tag=event.name,
                path=path,
                depth=len(stack),
                label=PrimeLabel(value=value, self_label=self_label),
            )
            stack.append((event.name, value))
        elif isinstance(event, EndElement):
            stack.pop()


def _stream_startend(text: str) -> Iterator[StreamedLabel]:
    """Start/end intervals need the end counter, so elements are emitted at
    their end-tags — still one pass, still document-completion order."""
    from repro.labeling.interval import StartEndLabel

    counter = 0
    stack: List[tuple[str, int]] = []  # (tag, start)
    for event in iter_events(text):
        if isinstance(event, StartElement):
            counter += 1
            stack.append((event.name, counter))
        elif isinstance(event, EndElement):
            counter += 1
            tag, start = stack.pop()
            path = "/" + "/".join([t for t, _s in stack] + [tag])
            yield StreamedLabel(
                tag=tag,
                path=path,
                depth=len(stack),
                label=StartEndLabel(start=start, end=counter),
            )


def _stream_dewey(text: str) -> Iterator[StreamedLabel]:
    stack: List[tuple[str, tuple, int]] = []  # (tag, label, children so far)
    for event in iter_events(text):
        if isinstance(event, StartElement):
            if stack:
                tag, parent_label, count = stack[-1]
                label = parent_label + (count + 1,)
                stack[-1] = (tag, parent_label, count + 1)
            else:
                label = ()
            path = "/" + "/".join([t for t, _l, _c in stack] + [event.name])
            yield StreamedLabel(
                tag=event.name, path=path, depth=len(stack), label=label
            )
            stack.append((event.name, label, 0))
        elif isinstance(event, EndElement):
            stack.pop()


_STREAMERS = {
    "prime": _stream_prime,
    "interval-startend": _stream_startend,
    "dewey": _stream_dewey,
}


def stream_labels(text: str, scheme: str = "prime") -> Iterator[StreamedLabel]:
    """Label ``text`` in one pass; yields :class:`StreamedLabel` records.

    ``scheme`` is ``"prime"`` (original top-down; emits at start-tags, in
    document order), ``"interval-startend"`` (emits at end-tags) or
    ``"dewey"``.  Memory use is O(depth), independent of document size.
    """
    try:
        streamer = _STREAMERS[scheme]
    except KeyError:
        raise ValueError(
            f"unknown streaming scheme {scheme!r}; "
            f"choose from {', '.join(sorted(_STREAMERS))}"
        ) from None
    return streamer(text)


def stream_prime_labels(text: str) -> Iterator[StreamedLabel]:
    """Shorthand for ``stream_labels(text, "prime")``."""
    return _stream_prime(text)
