"""Terse programmatic tree construction.

``element("book", element("title", text="TCP/IP"), element("author"))``
builds the same tree a parse of the corresponding document would, which
keeps tests and examples readable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.xmlkit.tree import XmlElement

__all__ = ["element"]


def element(
    tag: str,
    *children: XmlElement,
    attributes: Optional[Dict[str, str]] = None,
    text: str = "",
) -> XmlElement:
    """Create an :class:`XmlElement` with ``children`` already attached."""
    node = XmlElement(tag, attributes, text)
    for child in children:
        node.append(child)
    return node
