"""Serialize element trees back to XML text."""

from __future__ import annotations

from typing import List

from repro.xmlkit.tree import XmlElement

__all__ = ["serialize", "escape_text", "escape_attribute"]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return escape_text(value).replace('"', "&quot;")


def _open_tag(node: XmlElement, self_closing: bool) -> str:
    parts = [node.tag]
    parts.extend(
        f'{name}="{escape_attribute(value)}"' for name, value in node.attributes.items()
    )
    slash = "/" if self_closing else ""
    return f"<{' '.join(parts)}{slash}>"


def serialize(node: XmlElement, indent: int | None = None) -> str:
    """Serialize the subtree rooted at ``node`` to XML text.

    With ``indent=None`` (default) the output is compact, a lossless
    round-trip partner for :func:`repro.xmlkit.parser.parse_document` when
    the document has no mixed content.  With an integer ``indent``, children
    are pretty-printed ``indent`` spaces per level (text-bearing elements are
    kept on one line so their text survives a re-parse).
    """
    chunks: List[str] = []
    _serialize_into(node, chunks, indent, 0)
    return "".join(chunks)


def _serialize_into(
    node: XmlElement, chunks: List[str], indent: int | None, level: int
) -> None:
    pad = "" if indent is None else " " * (indent * level)
    newline = "" if indent is None else "\n"
    if not node.children and not node.text:
        chunks.append(f"{pad}{_open_tag(node, self_closing=True)}{newline}")
        return
    if not node.children:
        chunks.append(
            f"{pad}{_open_tag(node, False)}{escape_text(node.text)}</{node.tag}>{newline}"
        )
        return
    chunks.append(f"{pad}{_open_tag(node, False)}")
    if node.text:
        chunks.append(escape_text(node.text))
    chunks.append(newline)
    for child in node.children:
        _serialize_into(child, chunks, indent, level + 1)
    chunks.append(f"{pad}</{node.tag}>{newline}")
