"""SAX-like parse events.

The tokenizer/parser pipeline communicates through these small frozen
dataclasses.  Consumers that only care about structure (e.g. the relabeling
experiments that insert "the first level-4 node in SAX parse order",
Section 5.3) can iterate events without building a tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

__all__ = [
    "StartElement",
    "EndElement",
    "Characters",
    "Comment",
    "ProcessingInstruction",
    "XmlEvent",
]


@dataclass(frozen=True)
class StartElement:
    """An opening tag, e.g. ``<speech id="1">``."""

    name: str
    attributes: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class EndElement:
    """A closing tag, e.g. ``</speech>`` (also emitted for ``<empty/>``)."""

    name: str


@dataclass(frozen=True)
class Characters:
    """Character data between tags, entity references already resolved."""

    text: str


@dataclass(frozen=True)
class Comment:
    """An XML comment; the text excludes the ``<!--``/``-->`` delimiters."""

    text: str


@dataclass(frozen=True)
class ProcessingInstruction:
    """A processing instruction such as ``<?xml-stylesheet ...?>``."""

    target: str
    data: str


XmlEvent = Union[StartElement, EndElement, Characters, Comment, ProcessingInstruction]
