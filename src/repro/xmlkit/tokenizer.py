"""Hand-written XML tokenizer.

Scans XML text into the events defined in :mod:`repro.xmlkit.events`.
Supported subset (everything the paper's datasets use):

* start/end/empty element tags with attributes (single or double quoted),
* character data with the five predefined entities (``&amp;`` ``&lt;``
  ``&gt;`` ``&apos;`` ``&quot;``) and numeric character references
  (``&#65;`` / ``&#x41;``),
* CDATA sections, comments, processing instructions,
* the XML declaration and DOCTYPE declarations (skipped; internal DTD
  subsets are scanned over but not interpreted).

Well-formedness of tag nesting is the parser's job
(:mod:`repro.xmlkit.parser`); the tokenizer only validates local syntax and
reports errors with line/column positions.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import XmlSyntaxError
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlEvent,
)

__all__ = ["tokenize"]

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Cursor over the document text with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def location(self, pos: int | None = None) -> Tuple[int, int]:
        """Return (line, column), both 1-based, for ``pos`` (default current)."""
        if pos is None:
            pos = self.pos
        line = self.text.count("\n", 0, pos) + 1
        last_newline = self.text.rfind("\n", 0, pos)
        column = pos - last_newline
        return line, column

    def error(self, message: str, pos: int | None = None) -> XmlSyntaxError:
        line, column = self.location(pos)
        return XmlSyntaxError(message, line=line, column=column)

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.advance(len(literal))

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.peek() in " \t\r\n":
            self.advance()

    def read_until(self, terminator: str, context: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated {context}: missing {terminator!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(terminator)
        return chunk

    def read_name(self) -> str:
        if self.at_end() or not _is_name_start(self.peek()):
            raise self.error("expected an XML name")
        start = self.pos
        self.advance()
        while not self.at_end() and _is_name_char(self.peek()):
            self.advance()
        return self.text[start : self.pos]


def _resolve_entity(scanner: _Scanner) -> str:
    """Resolve an entity/char reference; the cursor sits just past ``&``."""
    start = scanner.pos - 1
    body = scanner.read_until(";", "entity reference")
    if body.startswith("#x") or body.startswith("#X"):
        try:
            return chr(int(body[2:], 16))
        except ValueError:
            raise scanner.error(f"bad character reference &{body};", pos=start) from None
    if body.startswith("#"):
        try:
            return chr(int(body[1:]))
        except ValueError:
            raise scanner.error(f"bad character reference &{body};", pos=start) from None
    try:
        return _PREDEFINED_ENTITIES[body]
    except KeyError:
        raise scanner.error(f"unknown entity &{body};", pos=start) from None


def _read_attribute_value(scanner: _Scanner) -> str:
    quote = scanner.peek()
    if quote not in "'\"":
        raise scanner.error("attribute value must be quoted")
    scanner.advance()
    parts = []
    while True:
        if scanner.at_end():
            raise scanner.error("unterminated attribute value")
        ch = scanner.peek()
        if ch == quote:
            scanner.advance()
            return "".join(parts)
        if ch == "<":
            raise scanner.error("'<' is not allowed inside attribute values")
        scanner.advance()
        if ch == "&":
            parts.append(_resolve_entity(scanner))
        else:
            parts.append(ch)


def _read_attributes(scanner: _Scanner) -> Dict[str, str]:
    attributes: Dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.at_end() or scanner.peek() in "/>":
            return attributes
        name_pos = scanner.pos
        name = scanner.read_name()
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}", pos=name_pos)
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        attributes[name] = _read_attribute_value(scanner)


def _read_tag(scanner: _Scanner) -> Iterator[XmlEvent]:
    """Read one tag; the cursor sits on the ``<``."""
    scanner.advance()  # consume '<'
    if scanner.peek() == "/":
        scanner.advance()
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect(">")
        yield EndElement(name)
        return
    name = scanner.read_name()
    attributes = _read_attributes(scanner)
    if scanner.startswith("/>"):
        scanner.advance(2)
        yield StartElement(name, attributes)
        yield EndElement(name)
        return
    scanner.expect(">")
    yield StartElement(name, attributes)


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip ``<!DOCTYPE ...>`` including a bracketed internal subset."""
    scanner.expect("<!DOCTYPE")
    depth = 1
    while depth:
        if scanner.at_end():
            raise scanner.error("unterminated DOCTYPE declaration")
        ch = scanner.peek()
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        scanner.advance()


def _read_character_data(scanner: _Scanner) -> str:
    parts = []
    while not scanner.at_end() and scanner.peek() != "<":
        ch = scanner.peek()
        scanner.advance()
        if ch == "&":
            parts.append(_resolve_entity(scanner))
        else:
            parts.append(ch)
    return "".join(parts)


def tokenize(text: str) -> Iterator[XmlEvent]:
    """Yield parse events for ``text``.

    Purely lexical: tag-nesting errors surface in
    :func:`repro.xmlkit.parser.iter_events`, which wraps this generator.
    """
    scanner = _Scanner(text)
    while not scanner.at_end():
        if scanner.peek() != "<":
            data = _read_character_data(scanner)
            if data:
                yield Characters(data)
            continue
        if scanner.startswith("<!--"):
            scanner.advance(4)
            yield Comment(scanner.read_until("-->", "comment"))
        elif scanner.startswith("<![CDATA["):
            scanner.advance(9)
            yield Characters(scanner.read_until("]]>", "CDATA section"))
        elif scanner.startswith("<!DOCTYPE"):
            _skip_doctype(scanner)
        elif scanner.startswith("<?"):
            scanner.advance(2)
            target = scanner.read_name()
            raw = scanner.read_until("?>", "processing instruction")
            yield ProcessingInstruction(target, raw.strip())
        elif scanner.startswith("<!"):
            raise scanner.error("unsupported markup declaration")
        else:
            yield from _read_tag(scanner)
