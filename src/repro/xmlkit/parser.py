"""Well-formedness checking and DOM construction on top of the tokenizer.

:func:`iter_events` wraps :func:`repro.xmlkit.tokenizer.tokenize` and
enforces proper tag nesting, a single root element, and no stray character
data outside the root.  :func:`parse_document` builds an
:class:`repro.xmlkit.tree.XmlElement` tree from the checked stream.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import XmlSyntaxError
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.tokenizer import tokenize
from repro.xmlkit.tree import XmlElement

__all__ = ["iter_events", "parse_document"]


def iter_events(text: str) -> Iterator[XmlEvent]:
    """Yield the event stream for ``text``, enforcing well-formedness.

    Raises :class:`repro.errors.XmlSyntaxError` on mismatched tags, multiple
    roots, markup after the root closes, or non-whitespace characters outside
    the root element.
    """
    open_tags: List[str] = []
    seen_root = False
    for event in tokenize(text):
        if isinstance(event, StartElement):
            if not open_tags and seen_root:
                raise XmlSyntaxError(
                    f"element <{event.name}> after the root element closed"
                )
            open_tags.append(event.name)
            seen_root = True
        elif isinstance(event, EndElement):
            if not open_tags:
                raise XmlSyntaxError(f"unexpected closing tag </{event.name}>")
            expected = open_tags.pop()
            if expected != event.name:
                raise XmlSyntaxError(
                    f"mismatched closing tag </{event.name}>; expected </{expected}>"
                )
        elif isinstance(event, Characters):
            if not open_tags and event.text.strip():
                raise XmlSyntaxError("character data outside the root element")
        yield event
    if open_tags:
        raise XmlSyntaxError(f"unclosed element <{open_tags[-1]}> at end of input")
    if not seen_root:
        raise XmlSyntaxError("document has no root element")


def parse_document(text: str) -> XmlElement:
    """Parse ``text`` into an ordered element tree; returns the root.

    Character data is accumulated onto the innermost open element's ``text``
    (stripped of pure-whitespace runs between elements).  Comments and
    processing instructions are discarded — the labeling schemes only see
    element structure.
    """
    root: XmlElement | None = None
    stack: List[XmlElement] = []
    for event in iter_events(text):
        if isinstance(event, StartElement):
            node = XmlElement(event.name, event.attributes)
            if stack:
                stack[-1].append(node)
            else:
                root = node
            stack.append(node)
        elif isinstance(event, EndElement):
            stack.pop()
        elif isinstance(event, Characters):
            if stack:
                chunk = event.text
                if chunk.strip():
                    stack[-1].text += chunk.strip() if not stack[-1].text else chunk
        elif isinstance(event, (Comment, ProcessingInstruction)):
            continue
    assert root is not None  # iter_events guarantees a root
    return root
