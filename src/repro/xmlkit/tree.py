"""Ordered XML tree model.

The labeling schemes operate on *element* trees: every node is an element
with a tag name, attributes, an ordered list of element children, and the
character data that appeared directly inside it.  This matches the paper's
data model — its labels are assigned to element nodes, and sibling order is
the document order the SC table must preserve.

:class:`XmlElement` is deliberately mutable (children can be inserted and
removed) because the whole point of the paper is *dynamic* trees.
Mutation helpers keep parent pointers consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["XmlElement", "TreeStats"]


@dataclass(frozen=True)
class TreeStats:
    """Structural statistics used throughout the size analysis (Section 3.1).

    ``depth`` counts edges on the longest root-to-leaf path (a lone root has
    depth 0), matching the paper's ``D``.  ``max_fanout`` is the paper's
    ``F``; ``node_count`` is ``N``.
    """

    node_count: int
    depth: int
    max_fanout: int
    leaf_count: int

    @property
    def internal_count(self) -> int:
        return self.node_count - self.leaf_count


class XmlElement:
    """One element node in an ordered XML tree.

    Parameters
    ----------
    tag:
        Element name, e.g. ``"author"``.
    attributes:
        Optional attribute mapping; copied defensively.
    text:
        Character data appearing directly inside the element (concatenated
        across child boundaries — enough fidelity for the paper's workloads).
    """

    __slots__ = ("tag", "attributes", "text", "parent", "_children")

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ) -> None:
        if not tag:
            raise ValueError("element tag must be a non-empty string")
        self.tag = tag
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.text = text
        self.parent: Optional["XmlElement"] = None
        self._children: List["XmlElement"] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<XmlElement {self.tag!r} children={len(self._children)}>"

    @property
    def children(self) -> Tuple["XmlElement", ...]:
        """The element children, in document order (read-only view)."""
        return tuple(self._children)

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator["XmlElement"]:
        return iter(self._children)

    def __getitem__(self, index: int) -> "XmlElement":
        return self._children[index]

    @property
    def is_leaf(self) -> bool:
        return not self._children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def depth(self) -> int:
        """Edges between this node and the root (root has depth 0)."""
        count = 0
        node = self
        while node.parent is not None:
            node = node.parent
            count += 1
        return count

    @property
    def root(self) -> "XmlElement":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    @property
    def child_index(self) -> int:
        """This node's position among its siblings (0-based).

        Raises ``ValueError`` on the root, which has no siblings.
        """
        if self.parent is None:
            raise ValueError("the root has no sibling position")
        for index, sibling in enumerate(self.parent._children):
            if sibling is self:
                return index
        raise AssertionError("node not found among its parent's children")

    def path(self) -> str:
        """The tag path from the root, e.g. ``/play/act/scene``."""
        tags = []
        node: Optional[XmlElement] = self
        while node is not None:
            tags.append(node.tag)
            node = node.parent
        return "/" + "/".join(reversed(tags))

    # ------------------------------------------------------------------
    # Mutation (keeps parent pointers consistent)
    # ------------------------------------------------------------------

    def append(self, child: "XmlElement") -> "XmlElement":
        """Append ``child`` as the last child; returns the child."""
        return self.insert(len(self._children), child)

    def insert(self, index: int, child: "XmlElement") -> "XmlElement":
        """Insert ``child`` at sibling position ``index``; returns the child."""
        if child.parent is not None:
            raise ValueError("child already attached; detach() it first")
        if child is self or self._is_descendant_of(child):
            raise ValueError("inserting a node under its own descendant")
        self._children.insert(index, child)
        child.parent = self
        return child

    def detach(self) -> "XmlElement":
        """Remove this node (and its subtree) from its parent; returns self."""
        if self.parent is not None:
            self.parent._children.remove(self)
            self.parent = None
        return self

    def wrap_children(self, tag: str, start: int, end: int) -> "XmlElement":
        """Interpose a new ``tag`` element over children ``[start, end)``.

        This implements "insert a node as a parent of existing nodes"
        (the non-leaf insertion experiment, Section 5.3).  Returns the new
        intermediate element.
        """
        if not 0 <= start <= end <= len(self._children):
            raise IndexError(
                f"bad wrap range [{start}, {end}) for {len(self._children)} children"
            )
        moved = self._children[start:end]
        wrapper = XmlElement(tag)
        for node in moved:
            node.parent = wrapper
        wrapper._children = list(moved)
        self._children[start:end] = [wrapper]
        wrapper.parent = self
        return wrapper

    def _is_descendant_of(self, other: "XmlElement") -> bool:
        node = self.parent
        while node is not None:
            if node is other:
                return True
            node = node.parent
        return False

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def iter_preorder(self) -> Iterator["XmlElement"]:
        """Yield this node and all descendants in document (preorder) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def iter_descendants(self) -> Iterator["XmlElement"]:
        """Like :meth:`iter_preorder` but excluding this node itself."""
        iterator = self.iter_preorder()
        next(iterator)
        return iterator

    def iter_leaves(self) -> Iterator["XmlElement"]:
        """Yield the subtree's leaves in document order."""
        return (node for node in self.iter_preorder() if node.is_leaf)

    def iter_level(self, level: int) -> Iterator["XmlElement"]:
        """Yield the nodes exactly ``level`` edges below this node, in order."""
        frontier: Sequence[XmlElement] = [self]
        for _ in range(level):
            frontier = [child for node in frontier for child in node._children]
        return iter(frontier)

    def find_all(self, predicate: Callable[["XmlElement"], bool]) -> List["XmlElement"]:
        """All nodes in this subtree satisfying ``predicate``, document order."""
        return [node for node in self.iter_preorder() if predicate(node)]

    def find_by_tag(self, tag: str) -> List["XmlElement"]:
        """All ``tag`` elements in this subtree, document order."""
        return self.find_all(lambda node: node.tag == tag)

    def is_ancestor_of(self, other: "XmlElement") -> bool:
        """True iff ``self`` is a proper ancestor of ``other``.

        This is the ground-truth test the labeling schemes must agree with.
        """
        return other is not self and other._is_descendant_of(self)

    def document_position(self) -> int:
        """0-based position of this node in the whole document's preorder."""
        for index, node in enumerate(self.root.iter_preorder()):
            if node is self:
                return index
        raise AssertionError("node not reachable from its own root")

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> TreeStats:
        """Compute :class:`TreeStats` for the subtree rooted here."""
        node_count = 0
        leaf_count = 0
        max_fanout = 0
        max_depth = 0
        stack: List[Tuple[XmlElement, int]] = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            node_count += 1
            fanout = len(node._children)
            max_fanout = max(max_fanout, fanout)
            max_depth = max(max_depth, depth)
            if fanout == 0:
                leaf_count += 1
            stack.extend((child, depth + 1) for child in node._children)
        return TreeStats(
            node_count=node_count,
            depth=max_depth,
            max_fanout=max_fanout,
            leaf_count=leaf_count,
        )

    def copy(self) -> "XmlElement":
        """Deep-copy this subtree (the copy is detached)."""
        clone = XmlElement(self.tag, self.attributes, self.text)
        for child in self._children:
            clone.append(child.copy())
        return clone

    def structurally_equal(self, other: "XmlElement") -> bool:
        """True iff both subtrees have the same shape, tags, attrs and text."""
        if (
            self.tag != other.tag
            or self.attributes != other.attributes
            or self.text != other.text
            or len(self._children) != len(other._children)
        ):
            return False
        return all(
            mine.structurally_equal(theirs)
            for mine, theirs in zip(self._children, other._children)
        )
