"""``repro.replica`` — WAL-shipping primary/replica pairs with MVCC reads.

Replication here is crash recovery run continuously: a replica bootstraps
from the primary's latest complete snapshot (resolved through the atomic
``CURRENT`` pointer), then tails the primary's write-ahead log over a
file- or socket-based transport and replays each record through the same
``apply_operation`` path recovery uses.  Every applied batch publishes an
immutable MVCC read view, so any number of reader threads can query a
consistent applied-LSN while the tail keeps moving.

Layers, bottom up:

* :mod:`repro.replica.transport` — byte-range shipping of ``wal.log``
  (:class:`FileTransport` for shared filesystems, :class:`SocketTransport`
  + :class:`WalShipServer` for TCP).
* :mod:`repro.replica.tailer` — :class:`WalTailer`, the resumable cursor
  that tolerates torn tails, survives checkpoint-time log rotations, and
  refuses to skip damaged records.
* :mod:`repro.replica.collection` — :class:`ReplicaCollection`, the
  follower itself: bootstrap, replay, publish, re-sync on broken streams;
  :class:`ReplicationLag` reports distance from the primary.
* :mod:`repro.replica.runtime` — :class:`TailerThread` and
  :class:`ReaderPool`, the only sanctioned thread harnesses (analysis
  rule R12 confines ``threading`` to this package and the MVCC publish
  path in :mod:`repro.query.live`).
"""

from repro.replica.collection import ReplicaCollection, ReplicationLag
from repro.replica.runtime import ReaderPool, ReaderReport, TailerThread
from repro.replica.tailer import WalTailer
from repro.replica.transport import (
    FileTransport,
    ShipFrame,
    SocketTransport,
    WalShipServer,
    WalTransport,
)

__all__ = [
    "FileTransport",
    "ReaderPool",
    "ReaderReport",
    "ReplicaCollection",
    "ReplicationLag",
    "ShipFrame",
    "SocketTransport",
    "TailerThread",
    "WalShipServer",
    "WalTailer",
    "WalTransport",
]
