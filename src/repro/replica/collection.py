"""The replica itself: bootstrap from a snapshot, replay the shipped WAL.

A :class:`ReplicaCollection` is a read-only peer of a
:class:`~repro.durable.collection.DurableCollection`.  It never writes the
primary's directory; it builds its state from two inputs the primary
already maintains for crash recovery:

1. **Bootstrap** — :func:`repro.durable.recovery.resolve_bootstrap` picks
   the latest complete snapshot via the atomically-replaced ``CURRENT``
   pointer (falling back to a generation scan), yielding a collection and
   the sequence number it covers.
2. **Tailing** — a :class:`~repro.replica.tailer.WalTailer` ships the
   primary's log and decodes it with the recovery scanner; records with
   ``seq > applied`` replay through the *same*
   :func:`~repro.durable.recovery.apply_operation` path crash recovery
   uses.  Replication is therefore recovery, run continuously.

After each batch of applied records the replica publishes an immutable
MVCC read view (:meth:`repro.query.live.LiveCollection.publish_view`), so
reader threads always see a consistent applied-LSN — never a half-applied
batch — while the tailer keeps applying.

Failure handling follows the resilient layer's fault domains: transport
``OSError`` is TRANSIENT (keep serving the last view, retry later, count
it against the circuit breaker); a broken stream
(:class:`~repro.errors.ReplicationError`, sequence gaps) is CORRUPTION of
the shipped history — the replica re-bootstraps from a snapshot rather
than ever skipping records.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.durable.recovery import apply_operation, resolve_bootstrap, WAL_NAME
from repro.durable.snapshot import restore_collection
from repro.durable.wal import WalRecord
from repro.errors import ReplicationError, ReproError, WalCorruptError
from repro.obs import metrics
from repro.query.live import LiveCollection, ReadView
from repro.resilient.breaker import CircuitBreaker

from repro.replica.tailer import WalTailer
from repro.replica.transport import FileTransport, WalTransport

__all__ = ["ReplicaCollection", "ReplicationLag"]


@dataclass(frozen=True)
class ReplicationLag:
    """How far behind the primary this replica is, in records and bytes.

    ``primary_seq`` is ``None`` when the primary could not be probed (the
    transport failed); ``applied_seq`` and ``byte_lag`` are always the
    replica's local truth.
    """

    applied_seq: int
    primary_seq: Optional[int]
    byte_lag: int

    @property
    def record_lag(self) -> Optional[int]:
        """Records the primary has committed that this replica has not."""
        if self.primary_seq is None:
            return None
        return max(0, self.primary_seq - self.applied_seq)


class ReplicaCollection:
    """A follower that replays the primary's WAL into MVCC read views.

    ``directory`` is the primary's durable directory — used for snapshot
    bootstrap (and, with the default :class:`~repro.replica.transport.FileTransport`,
    for WAL shipping too).  Pass a
    :class:`~repro.replica.transport.SocketTransport` to tail a remote
    primary instead; bootstrap still reads snapshots from ``directory``
    (ship the snapshot files by any means — they are immutable once the
    ``CURRENT`` pointer names them).
    """

    def __init__(
        self,
        directory: str | Path,
        transport: Optional[WalTransport] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.directory = Path(directory)
        self.transport = transport or FileTransport(self.directory / WAL_NAME)
        self.breaker = breaker or CircuitBreaker()
        self.live: LiveCollection
        self.tailer: WalTailer
        self.applied_seq = 0
        #: How many times this replica threw away its state and re-read a
        #: snapshot because the shipped stream was unusable.
        self.resyncs = 0
        self._bootstrap()

    # ------------------------------------------------------------------
    # Bootstrap / resync

    def _bootstrap(self) -> None:
        """(Re)build state from the latest complete snapshot."""
        point, state = resolve_bootstrap(self.directory)
        self.live = restore_collection(state)
        self.applied_seq = point.last_seq
        self.tailer = WalTailer(self.transport, after_seq=0)
        self.live.publish_view(applied_seq=self.applied_seq)
        metrics.incr("replica.bootstraps")
        metrics.gauge("replica.bootstrap_seq", self.applied_seq)

    def _resync(self) -> None:
        """Discard local state and re-bootstrap after a broken stream."""
        self.resyncs += 1
        metrics.incr("replica.resyncs")
        try:
            self._bootstrap()
        except ReproError as error:
            raise ReplicationError(
                "replica could not re-bootstrap after a broken replication "
                f"stream: {error}"
            ) from error

    # ------------------------------------------------------------------
    # Replay

    def poll(self) -> int:
        """One replication round: fetch, validate, apply, publish.

        Returns the number of records applied.  Transport failures are
        absorbed (the replica keeps serving its last published view);
        stream corruption and sequence gaps trigger a snapshot re-sync.
        Raises :class:`~repro.errors.ReplicationError` only when even
        re-bootstrapping fails.
        """
        if not self.breaker.allow():
            metrics.incr("replica.polls_rejected")
            return 0
        try:
            records = self.tailer.poll()
        except (ReplicationError, WalCorruptError):
            # CORRUPTION domain: the shipped bytes are unusable.  Retrying
            # re-reads the same bad bytes; a fresh snapshot does not.
            self.breaker.record_failure()
            metrics.incr("replica.poll_corruption")
            self._resync()
            return 0
        except (OSError, TimeoutError):
            # TRANSIENT domain: the primary (or the path to it) is away.
            # Keep serving the last view; the breaker meters our retries.
            self.breaker.record_failure()
            metrics.incr("replica.poll_transport_failures")
            return 0
        fresh: List[WalRecord] = [r for r in records if r.seq > self.applied_seq]
        if fresh and fresh[0].seq != self.applied_seq + 1:
            # The stream skipped records we never saw (the primary pruned
            # past our position).  Never apply across a gap.
            self.breaker.record_failure()
            metrics.incr("replica.sequence_gaps")
            self._resync()
            return 0
        for record in fresh:
            apply_operation(self.live, record.op)
            self.applied_seq = record.seq
        if fresh:
            self.live.publish_view(applied_seq=self.applied_seq)
            metrics.incr("replica.records_applied", len(fresh))
            metrics.gauge("replica.applied_seq", self.applied_seq)
        self.breaker.record_success()
        return len(fresh)

    def catch_up(self, max_rounds: int = 1000) -> int:
        """Poll until a round makes no progress; returns total applied.

        A round that re-bootstrapped counts as progress even though it
        applied nothing — the fresh tailer still has the post-snapshot
        suffix of the log to replay.
        """
        total = 0
        for _ in range(max_rounds):
            resyncs_before = self.resyncs
            applied = self.poll()
            total += applied
            if not applied and self.resyncs == resyncs_before:
                break
        return total

    # ------------------------------------------------------------------
    # Reads

    def read_view(self) -> ReadView:
        """The latest published consistent view (never half-applied)."""
        return self.live.read_view()

    def query(self, text: str):
        """Evaluate a query against the latest published view."""
        return self.read_view().query(text)

    def lag(self) -> ReplicationLag:
        """Probe the primary and report record and byte lag.

        A failed probe is TRANSIENT: the result carries ``primary_seq``
        ``None`` and a zero byte lag rather than raising.
        """
        try:
            frame = self.transport.read(self.tailer.offset, 0)
        except (OSError, TimeoutError):
            metrics.incr("replica.lag_probe_failures")
            return ReplicationLag(
                applied_seq=self.applied_seq, primary_seq=None, byte_lag=0
            )
        byte_lag = max(0, frame.size - self.tailer.offset)
        metrics.gauge("replica.byte_lag", byte_lag)
        return ReplicationLag(
            applied_seq=self.applied_seq,
            primary_seq=frame.last_seq,
            byte_lag=byte_lag,
        )

    def close(self) -> None:
        """Close the underlying transport (idempotent)."""
        self.transport.close()
