"""Thread harnesses for continuous tailing and concurrent follower reads.

The rest of the codebase is single-threaded by rule (analysis rule R12
confines ``threading`` to this package and the MVCC publish path), so the
bench and the soak tests drive concurrency through these two harnesses
instead of spawning ad-hoc threads:

* :class:`TailerThread` — runs :meth:`ReplicaCollection.poll` in a loop so
  the replica converges while the primary (and the readers) keep going.
* :class:`ReaderPool` — N threads rotating through a fixed query list
  against whatever read view is latest, sampling staleness (primary seq
  minus the view's applied seq) per read.  This is the measurement side of
  the MVCC design: readers never block the writer and never see a
  half-applied batch.

Both harnesses capture the first exception from their threads and re-raise
it on ``stop()`` — a silent dead thread would make every "it converged"
assertion meaningless.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.obs import metrics
from repro.query.live import ReadView

from repro.replica.collection import ReplicaCollection

__all__ = ["ReaderPool", "ReaderReport", "TailerThread"]


class TailerThread:
    """Continuously polls a replica in a daemon thread.

    ``interval`` is the idle sleep between polls that applied nothing;
    polls that made progress loop immediately.  ``stop()`` joins the
    thread and re-raises any exception the replication loop hit.
    """

    def __init__(self, replica: ReplicaCollection, interval: float = 0.002):
        self.replica = replica
        self.interval = interval
        self._lock = threading.Lock()
        # repro: guarded-by(_lock): polls, applied, error
        self.polls = 0
        self.applied = 0
        self.error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="replica-tailer"
        )

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                applied = self.replica.poll()
                with self._lock:
                    self.polls += 1
                    self.applied += applied
                if not applied:
                    self._stop.wait(self.interval)
        except BaseException as error:  # noqa: BLE001 - reported on stop()
            metrics.incr("replica.tailer_thread_failures")
            with self._lock:
                self.error = error

    def start(self) -> "TailerThread":
        """Start the polling loop; returns ``self`` for chaining."""
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Signal, join, and re-raise any error the loop captured.

        The join can time out with the loop still running (a stuck poll),
        so the error read takes the counter lock rather than assuming the
        thread is gone.
        """
        self._stop.set()
        self._thread.join(timeout=timeout)
        with self._lock:
            error = self.error
        if error is not None:
            raise error


@dataclass
class ReaderReport:
    """Aggregate outcome of a :class:`ReaderPool` run."""

    reads: int = 0
    errors: int = 0
    elapsed: float = 0.0
    staleness_samples: List[int] = field(default_factory=list)

    @property
    def reads_per_second(self) -> float:
        """Aggregate read throughput across every thread in the pool."""
        if self.elapsed <= 0:
            return 0.0
        return self.reads / self.elapsed

    @property
    def max_staleness(self) -> int:
        """Worst observed follower-read staleness, in records."""
        return max(self.staleness_samples, default=0)

    @property
    def mean_staleness(self) -> float:
        """Mean observed follower-read staleness, in records."""
        if not self.staleness_samples:
            return 0.0
        return sum(self.staleness_samples) / len(self.staleness_samples)


class ReaderPool:
    """N follower-read threads hammering the latest published view.

    ``view_source`` returns the current :class:`~repro.query.live.ReadView`
    (or ``None`` before the first publish); ``current_seq``, when given,
    returns the primary's committed sequence number so each read can
    record its staleness.  Reads rotate round-robin through ``queries``.
    """

    def __init__(
        self,
        view_source: Callable[[], Optional[ReadView]],
        queries: Sequence[str],
        threads: int = 2,
        current_seq: Optional[Callable[[], int]] = None,
    ):
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if not queries:
            raise ValueError("queries must be non-empty")
        self.view_source = view_source
        self.queries = list(queries)
        self.current_seq = current_seq
        self._stop = threading.Event()
        self._started: Optional[float] = None
        self._reports = [ReaderReport() for _ in range(threads)]
        self._threads = [
            threading.Thread(
                target=self._run, args=(index,), daemon=True, name=f"reader-{index}"
            )
            for index in range(threads)
        ]

    def _run(self, index: int) -> None:
        report = self._reports[index]
        step = index  # stagger starting queries across threads
        while not self._stop.is_set():
            view = self.view_source()
            if view is None:
                self._stop.wait(0.001)
                continue
            query = self.queries[step % len(self.queries)]
            step += 1
            try:
                view.query(query)
            except Exception:  # noqa: BLE001 - counted, surfaced in report
                metrics.incr("replica.reader_errors")
                report.errors += 1
                continue
            report.reads += 1
            if self.current_seq is not None:
                report.staleness_samples.append(
                    max(0, self.current_seq() - view.applied_seq)
                )

    def start(self) -> "ReaderPool":
        """Start every reader thread; returns ``self`` for chaining."""
        self._started = time.perf_counter()
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> ReaderReport:
        """Stop all readers and merge their per-thread reports."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        elapsed = 0.0
        if self._started is not None:
            elapsed = time.perf_counter() - self._started
        merged = ReaderReport(elapsed=elapsed)
        for report in self._reports:
            merged.reads += report.reads
            merged.errors += report.errors
            merged.staleness_samples.extend(report.staleness_samples)
        metrics.gauge("replica.reader_reads", merged.reads)
        return merged
