"""WAL shipping transports: how replicas fetch the primary's log bytes.

The shipping channel is deliberately dumb — it moves *byte ranges* of the
primary's ``wal.log``, never decoded records, so every validation rule
(CRC, sequence chain, torn tail) runs replica-side through the exact
scanner the primary's own recovery uses.  Two transports implement the
same three-field frame:

* :class:`FileTransport` — the replica can see the primary's directory
  (shared filesystem, or a local pair in one process).  Reads reopen the
  file every call, which is what makes checkpoint-time ``os.replace``
  rotations (:meth:`~repro.durable.wal.WriteAheadLog.prune` / ``reset``)
  visible as a plain size change instead of a stale file handle.
* :class:`SocketTransport` / :class:`WalShipServer` — a TCP pair for
  replicas on other machines.  The server is a thin loop around its own
  :class:`FileTransport`; one request frame (``offset``, ``limit``) gets
  one response frame (``size``, ``last_seq``, ``payload``).

Every read also carries the primary's last valid sequence number
(``last_seq``, computed server-side by an incremental
:class:`~repro.durable.wal.WalReader`), so lag is measurable in records
as well as bytes without shipping or parsing anything extra.

Transport failures surface as :class:`OSError` — the TRANSIENT fault
domain — and the replica keeps serving its last published view; protocol
violations (a server that answers garbage) are
:class:`~repro.errors.ReplicationError`.
"""

from __future__ import annotations

import os
import socket
import socketserver
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.durable.wal import WalReader
from repro.errors import ReplicationError, WalCorruptError
from repro.obs import metrics

__all__ = [
    "FileTransport",
    "ShipFrame",
    "SocketTransport",
    "WalShipServer",
    "WalTransport",
]

#: Request frame: 8-byte offset + 4-byte byte limit (0 = size/LSN probe).
_REQUEST = struct.Struct(">QI")
#: Response frame header: 8-byte file size, 8-byte last valid sequence
#: number, 4-byte payload length; the payload bytes follow.
_RESPONSE = struct.Struct(">QQI")
#: Upper bound on one shipped payload — a corrupt response header must
#: not make a client try to buffer gigabytes.
_MAX_FRAME_PAYLOAD = 128 * 1024 * 1024


@dataclass(frozen=True)
class ShipFrame:
    """One transport response: primary file size, last LSN, raw bytes."""

    size: int
    last_seq: int
    payload: bytes


class WalTransport:
    """Abstract byte-range access to the primary's write-ahead log."""

    def read(self, offset: int, limit: int) -> ShipFrame:
        """Fetch up to ``limit`` bytes starting at ``offset``.

        ``limit=0`` is a probe: the frame carries the current file size
        and last valid sequence number with an empty payload.  A missing
        log reads as size 0 (the primary has not created it yet).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""


class FileTransport(WalTransport):
    """Ship WAL bytes straight off a visible filesystem path."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._reader = WalReader(self.path)

    def read(self, offset: int, limit: int) -> ShipFrame:
        """Read the byte range from the file, reopening per call.

        Reopening makes checkpoint-time rotations (``os.replace`` of a
        pruned log) visible immediately; the caller sees the new file's
        size and resynchronizes by offset arithmetic.
        """
        try:
            last_seq = self._reader.last_lsn()
        except WalCorruptError:
            # The transport ships bytes; judging them (a foreign or damaged
            # header) is the consumer's job.  Report no usable LSN.
            metrics.incr("replica.transport_unreadable_lsn")
            last_seq = 0
        try:
            with open(self.path, "rb") as handle:
                size = handle.seek(0, os.SEEK_END)
                if limit <= 0 or offset >= size:
                    return ShipFrame(size=size, last_seq=last_seq, payload=b"")
                handle.seek(offset)
                payload = handle.read(limit)
        except FileNotFoundError:
            return ShipFrame(size=0, last_seq=0, payload=b"")
        metrics.incr("replica.transport_bytes", len(payload))
        return ShipFrame(size=size, last_seq=last_seq, payload=payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _ShipHandler(socketserver.BaseRequestHandler):
    """One connected replica: answer request frames until it hangs up."""

    def handle(self) -> None:
        """Serve (offset, limit) → (size, last_seq, payload) frames."""
        while True:
            header = _recv_exact(self.request, _REQUEST.size)
            if header is None:
                return
            offset, limit = _REQUEST.unpack(header)
            frame = self.server.transport.read(offset, limit)  # type: ignore[attr-defined]
            self.request.sendall(
                _RESPONSE.pack(frame.size, frame.last_seq, len(frame.payload))
                + frame.payload
            )
            metrics.incr("replica.ship_frames")


class WalShipServer(socketserver.ThreadingTCPServer):
    """The primary-side shipping endpoint: serves WAL byte ranges over TCP.

    A thin, read-only loop: it never writes the log and shares no state
    with the :class:`~repro.durable.collection.DurableCollection` beyond
    the file itself, so it can run in the primary's process or a sidecar.
    ``port=0`` binds an ephemeral port; read it back from :attr:`address`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, wal_path: str | Path, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _ShipHandler)
        self.transport = FileTransport(wal_path)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        host, port = self.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        """Serve in a daemon thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="wal-ship-server",
        )
        self._thread.start()
        metrics.incr("replica.ship_servers_started")
        return self.address

    def stop(self) -> None:
        """Stop serving and release the listening socket (idempotent)."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()


class SocketTransport(WalTransport):
    """Client side of the TCP shipping channel.

    Keeps one connection open across reads and transparently reconnects
    once per call on a stale socket; a second consecutive failure
    propagates as the :class:`OSError` it is (the TRANSIENT domain — the
    replica serves stale views until the primary is back).
    """

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._sock = sock
        metrics.incr("replica.transport_connects")
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                metrics.incr("replica.transport_close_errors")
            self._sock = None

    def read(self, offset: int, limit: int) -> ShipFrame:
        """One request/response round trip (reconnecting once if stale)."""
        last_error: Optional[OSError] = None
        for attempt in range(2):
            sock = self._sock
            try:
                if sock is None:
                    sock = self._connect()
                sock.sendall(_REQUEST.pack(offset, max(0, limit)))
                header = _recv_exact(sock, _RESPONSE.size)
                if header is None:
                    raise ConnectionError("ship server closed the connection")
                size, last_seq, nbytes = _RESPONSE.unpack(header)
                if nbytes > _MAX_FRAME_PAYLOAD:
                    raise ReplicationError(
                        f"ship server announced an implausible {nbytes}-byte "
                        "payload; refusing to buffer it"
                    )
                payload = b""
                if nbytes:
                    body = _recv_exact(sock, nbytes)
                    if body is None:
                        raise ConnectionError(
                            "ship server hung up mid-payload"
                        )
                    payload = body
            except OSError as error:
                self._drop()
                last_error = error
                if attempt:
                    raise
                continue
            metrics.incr("replica.transport_bytes", len(payload))
            return ShipFrame(size=size, last_seq=last_seq, payload=payload)
        raise last_error if last_error is not None else OSError("unreachable")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._drop()
