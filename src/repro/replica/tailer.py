"""Incremental WAL consumption over a shipping transport.

The :class:`WalTailer` is the replica-side cursor into the primary's log.
It fetches raw byte ranges through a :class:`~repro.replica.transport.WalTransport`
and decodes them with the *same* scanner the primary's recovery uses
(:func:`repro.durable.wal.scan_records`), so the replica accepts exactly
the records a crash-restarted primary would.

Three situations at the tail of the stream look superficially alike and
must be told apart:

* **Pending bytes** — the scan stopped with ``stop_reason == "short"``:
  the primary is mid-append and the length-prefixed record is not all on
  disk yet.  Not an error; the tailer returns what it has and retries the
  same offset next poll.
* **Suspect tail** — the scan stopped on a damage reason (``"crc"``,
  ``"chain"``, ``"decode"``, ``"oversize"``) at the very end of the
  fetched bytes.  This *could* be a torn write racing the tailer (a CRC
  mismatch because only half the payload landed), so the tailer remembers
  the offset and the file size at detection and gives the primary another
  chance.
* **Confirmed corruption** — the same offset still fails after the file
  has grown past the size at detection: trustworthy bytes exist beyond
  the damage, so it cannot be a torn tail.  The tailer raises
  :class:`~repro.errors.ReplicationError`; the replica's response is to
  re-bootstrap from a snapshot, never to skip records.

A file that *shrinks* (``size < offset``) means the primary checkpointed
and pruned/reset the log.  The tailer rewinds to offset 0 and rereads the
new generation from its header; records already applied are filtered out
upstream by sequence number, which is global across generations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.durable.wal import (
    SUPPORTED_WAL_VERSIONS,
    WAL_MAGIC,
    WalRecord,
    scan_records,
)
from repro.errors import ReplicationError
from repro.obs import metrics

from repro.replica.transport import WalTransport

__all__ = ["WalTailer"]

#: Default fetch window per transport round trip.
_DEFAULT_CHUNK = 1 << 20


class WalTailer:
    """A resumable cursor over a shipped write-ahead log.

    ``poll()`` fetches and decodes everything newly valid since the last
    call and returns the records in order.  The tailer tracks only byte
    position and the scan-side sequence chain; deciding which records are
    *new to the replica* (by sequence number) is the caller's job, because
    after a rewind the same sequence numbers may be scanned twice.
    """

    def __init__(
        self,
        transport: WalTransport,
        after_seq: int = 0,
        chunk_bytes: int = _DEFAULT_CHUNK,
    ):
        self.transport = transport
        #: Byte offset of the next unread position; 0 = header not yet
        #: validated for the current file generation.
        self._offset = 0
        #: Last sequence number *scanned* (chain expectation), distinct
        #: from the caller's applied sequence number.
        self._scan_seq = after_seq
        self._chunk_bytes = max(64, chunk_bytes)
        #: (offset, size-at-detection) of a tail that failed validation —
        #: possibly a torn write still racing us.
        self._suspect: Optional[Tuple[int, int]] = None
        #: Primary log size seen on the most recent read.
        self._primary_bytes = 0
        #: Payload-format version the current generation's header declared
        #: (defaults to 1 until a header has been read).
        self._version = 1

    @property
    def offset(self) -> int:
        """Byte offset of the next unread position in the primary's log."""
        return self._offset

    @property
    def scan_seq(self) -> int:
        """Sequence number of the last record this tailer decoded."""
        return self._scan_seq

    @property
    def primary_bytes(self) -> int:
        """Primary log size observed on the most recent transport read."""
        return self._primary_bytes

    def rewind(self, after_seq: int = 0) -> None:
        """Reset to the start of the (possibly new) log generation."""
        self._offset = 0
        self._scan_seq = after_seq
        self._suspect = None

    def poll(self) -> List[WalRecord]:
        """Fetch and decode all newly valid records; never skips damage.

        Returns every record decoded this call, including ones the caller
        may already have applied (after a generation rewind).  Raises
        :class:`~repro.errors.ReplicationError` only for confirmed
        mid-stream corruption; transport failures propagate as the
        ``OSError`` they are.
        """
        out: List[WalRecord] = []
        fetch = self._chunk_bytes
        while True:
            fetch_start = self._offset
            frame = self.transport.read(fetch_start, fetch)
            self._primary_bytes = frame.size
            if frame.size < fetch_start:
                # The primary checkpointed: the log was pruned or reset to
                # a new, shorter generation.  Start over from its header.
                metrics.incr("replica.tailer_rewinds")
                self.rewind(after_seq=self._scan_seq)
                fetch = self._chunk_bytes
                continue
            fetch_end = fetch_start + len(frame.payload)
            payload = frame.payload
            base = fetch_start
            if fetch_start == 0:
                header_len = len(WAL_MAGIC) + 1
                if len(payload) < header_len:
                    # Log not created / header not fully written yet.
                    return out
                if (
                    payload[: len(WAL_MAGIC)] != WAL_MAGIC
                    or payload[len(WAL_MAGIC)] not in SUPPORTED_WAL_VERSIONS
                ):
                    raise ReplicationError(
                        "shipped log does not start with a valid WAL header; "
                        "the source is not a repro write-ahead log"
                    )
                # A new generation may carry a different payload format.
                self._version = payload[len(WAL_MAGIC)]
                payload = payload[header_len:]
                base = header_len
                # Commit header consumption even if no records follow yet.
                self._offset = base
            if not payload:
                return out
            expected = self._scan_seq + 1 if self._scan_seq else None
            scan = scan_records(payload, base, frame.size, expected, self._version)
            if scan.records:
                out.extend(scan.records)
                last = scan.records[-1]
                self._offset = last.end_offset
                self._scan_seq = last.seq
                self._suspect = None
                metrics.incr("replica.tailer_records", len(scan.records))
            if scan.stop_reason == "clean":
                if fetch_end >= frame.size:
                    return out
                # More bytes exist beyond this chunk; keep draining.
                fetch = self._chunk_bytes
                continue
            if scan.stop_reason == "short":
                if frame.size > fetch_end:
                    # The partial record is cut off by our fetch window,
                    # not by the end of the file — widen and retry.
                    fetch = min(frame.size - self._offset, max(fetch * 4, self._chunk_bytes))
                    continue
                # Genuinely pending: the primary is mid-append.
                return out
            # Damage reason at the tail of what we fetched.  A torn append
            # is a *prefix* of valid bytes, so at the true tail it can only
            # look "short" (handled above) or "crc" (full length prefix,
            # partial payload).  Chain breaks, decode failures, and absurd
            # lengths pass or precede the CRC — the bytes are authentic and
            # authentically wrong — so those confirm immediately.
            bad_offset = self._offset
            if scan.stop_reason != "crc":
                metrics.incr("replica.tailer_corruption")
                raise ReplicationError(
                    f"shipped WAL fails validation at offset {bad_offset} "
                    f"({scan.stop_reason}); replica must re-bootstrap from "
                    "a snapshot"
                )
            if (
                self._suspect is not None
                and self._suspect[0] == bad_offset
                and frame.size > self._suspect[1]
            ):
                # The file grew past the damage and the same bytes still
                # fail their CRC: trustworthy data exists beyond it, so
                # this is not a torn tail.
                metrics.incr("replica.tailer_corruption")
                raise ReplicationError(
                    f"shipped WAL record at offset {bad_offset} fails its "
                    "CRC with newer bytes beyond it; replica must "
                    "re-bootstrap from a snapshot"
                )
            if self._suspect is None or self._suspect[0] != bad_offset:
                self._suspect = (bad_offset, frame.size)
                metrics.incr("replica.tailer_suspect_tails")
            return out
