"""Command-line interface: label, check, query and benchmark XML documents.

Usage (also via ``python -m repro``)::

    python -m repro stats doc.xml [more.xml ...]
    python -m repro label doc.xml --scheme prime [--annotate out.xml]
    python -m repro check doc.xml --scheme prefix-2
    python -m repro query '/play//act[2]' doc1.xml doc2.xml --scheme prime
    python -m repro sql '/play//act' --scheme interval
    python -m repro bench fig18
    python -m repro dump state/ doc1.xml doc2.xml [--churn 50]
    python -m repro load state/ --query '//act'
    python -m repro recover state/
    python -m repro health state/ [--json]
    python -m repro serve state/ [--host H --port P] [--duration S]
    python -m repro replicate state/ [--connect H:P] [--state rep.json]
    python -m repro lag state/ [--state rep.json] [--json] [--max-bytes N]
    python -m repro shard-serve root/ [doc.xml ...] [--shards N] [--churn N]
    python -m repro shard-status root/ [--json]
    python -m repro lint [paths ...] [--format text|json|sarif]

``bench`` accepts any exhibit id from the paper: fig3 fig4 fig5 table1
fig13 fig14 table2 fig15 fig16 fig17 fig18 (the time-heavy ones build
their corpora on demand), plus the systems exhibits ``durability``,
``resilience``, ``throughput`` (sequential vs batched update pipeline)
``planner`` (fixed strategies vs the cost-based pick on the Table 2
workload), ``replication`` (lag + follower-read staleness/throughput
vs reader count) and ``shard`` (routed throughput + query p99 vs worker
count, plus kill-and-recover availability); ``--csv``/``--json`` export
any of them.

``query`` evaluates with the cost-based planner by default;
``--strategy`` pins one of scan/merge/window/twig and ``--explain``
prints the chosen plan (per-step strategy and cost estimates).  See
``docs/QUERYING.md``.

``stats`` also runs each document through an instrumented prime
pipeline (label + SC table + a ``//*`` query) and prints the
observability counters and operator timings from :mod:`repro.obs`.
``stats``, ``label``, ``check`` and ``query`` accept ``--audit`` to run
the deep invariant auditor and fail (exit 1) on any violation.

``dump``/``load``/``recover`` drive the durability subsystem
(:mod:`repro.durable`): ``dump`` creates a durable collection directory
from XML files, ``load`` recovers it and optionally queries it,
``recover`` runs the recovery protocol read-only and reports what it
did.  Their ``--fsync`` default comes from the ``REPRO_WAL_FSYNC``
environment variable (``always`` if unset).  ``stats`` also accepts a
durable collection directory and prints its WAL/snapshot/recovery
counters.

``health`` recovers a durable collection through the resilient serving
layer (:mod:`repro.resilient`) and reports breaker state, fault/retry
counters, and the order-invariant check; ``dump --churn N`` applies N
synthetic insertions through the same layer after creating the
collection.  Both honour the ``REPRO_CHAOS`` environment variable
(``"rate=0.05,seed=7,..."``, see
:meth:`repro.resilient.ChaosInjector.from_spec`), which arms transient
fault injection on the write path — how CI soaks the CLI round trip.

``serve``/``replicate``/``lag`` drive the replication subsystem
(:mod:`repro.replica`): ``serve`` runs a WAL shipping endpoint over a
collection directory, ``replicate`` bootstraps a replica from the
latest snapshot and tails the log to convergence (``--connect`` ships
over TCP instead of the filesystem; ``--state`` records the replica's
position for a later ``lag``), and ``lag`` reports applied-LSN,
primary-LSN and byte lag as text or JSON — ``--max-bytes`` turns it
into a monitoring check that exits 5 when the replica is too far
behind.  See ``docs/REPLICATION.md``.

``shard-serve``/``shard-status`` drive the sharded serving subsystem
(:mod:`repro.shard`): ``shard-serve`` creates (when XML files are
given) or opens a sharded collection root, runs its supervised worker
fleet, optionally applies ``--churn N`` synthetic insertions through
the router — ``--kill S`` SIGKILLs shard S's worker halfway through to
exercise restart + redo replay — runs an optional ``--query``, and
prints per-shard health lines; ``shard-status`` inspects a root
*offline* (no workers): manifest, per-shard snapshot generation,
pointer seq, and WAL last seq.  See ``docs/SHARDING.md``.

``lint`` runs the :mod:`repro.analysis` invariant linter (rules
R1–R13: label-write discipline, layering, determinism, fsync,
threading and process containment, ...) over the tree, honouring inline
suppressions and the committed ``analysis-baseline.json``; ``--format
sarif`` is what CI's ``lint-invariants`` job archives.  See
``docs/ANALYSIS.md``.

Exit codes are part of the contract: 0 success, 1 any other library
error (:class:`repro.errors.ReproError`), 2 missing file, 3 malformed
XML (:class:`repro.errors.XmlSyntaxError`), 4 durability failure
(:class:`repro.errors.DurabilityError` — corrupt WAL/snapshot,
unrecoverable directory, ...), 5 replication failure
(:class:`repro.errors.ReplicationError` — broken stream, failed
re-bootstrap, or a ``lag --max-bytes`` bound exceeded), 6 sharding
failure (:class:`repro.errors.ShardError` — missing/corrupt manifest,
quarantined shard, or an unavailable worker in ``fail_fast``/``reject``
mode).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import (
    DurabilityError,
    ReplicationError,
    ReproError,
    ShardError,
    XmlSyntaxError,
)
from repro.labeling.base import LabelingScheme
from repro.labeling.compact import DahlgaardScheme, FraigniaudKormanScheme
from repro.labeling.dewey import DeweyScheme
from repro.labeling.interval import StartEndIntervalScheme, XissIntervalScheme
from repro.labeling.prefix import Prefix1Scheme, Prefix2Scheme
from repro.labeling.prime import BottomUpPrimeScheme, PrimeScheme
from repro.obs import metrics
from repro.query.engine import QueryEngine
from repro.query.sql import to_sql
from repro.query.store import LabelStore
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import XmlElement

__all__ = ["main", "SCHEME_FACTORIES"]

SCHEME_FACTORIES: Dict[str, Callable[[], LabelingScheme]] = {
    "prime": lambda: PrimeScheme(reserved_primes=64, power2_leaves=True,
                                 leaf_threshold_bits=16),
    "prime-original": lambda: PrimeScheme(reserved_primes=0, power2_leaves=False),
    "prime-bottomup": BottomUpPrimeScheme,
    "interval": XissIntervalScheme,
    "interval-startend": StartEndIntervalScheme,
    "prefix-1": Prefix1Scheme,
    "prefix-2": Prefix2Scheme,
    "dewey": DeweyScheme,
    "dkr": DahlgaardScheme,
    "fk-depth": FraigniaudKormanScheme,
}

#: schemes the relational label store (and thus `query`) supports
STORE_SCHEMES = ("prime", "interval", "prefix-2")


def _read_documents(paths: Sequence[str]) -> List[XmlElement]:
    documents = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            documents.append(parse_document(handle.read()))
    return documents


def _format_label(label: object) -> str:
    return str(label)


def _print_snapshot(snapshot: Dict[str, object], indent: str = "  ") -> None:
    counters = {
        name: value for name, value in snapshot["counters"].items() if value
    }
    for name in sorted(counters):
        print(f"{indent}{name} = {counters[name]}")
    for name in sorted(snapshot["timers"]):
        timer = snapshot["timers"][name]
        print(
            f"{indent}{name}: count={timer['count']} "
            f"total={timer['total_s'] * 1000:.2f}ms "
            f"mean={timer['mean_s'] * 1000:.3f}ms"
        )


def _audit_store(store: LabelStore, indent: str = "  ") -> int:
    from repro.obs.audit import audit_ordered_document

    ordered = store.ordered_documents()
    if not ordered:
        print(f"{indent}audit: scheme keeps no SC table; nothing to cross-check")
        return 0
    failures = 0
    for doc_id, document in sorted(ordered.items()):
        report = audit_ordered_document(document)
        if report.ok:
            checks = sum(report.checks.values())
            print(f"{indent}doc {doc_id} audit: OK ({checks} checks)")
        else:
            failures += 1
            print(f"{indent}doc {doc_id} audit FAILED")
            print(report.summary())
    return failures


def _durable_stats(path: str, audit: bool) -> int:
    """Print a durable collection directory's state + durability counters."""
    from repro.durable import DurableCollection

    with metrics.collecting() as registry:
        collection = DurableCollection.open(path, verify=audit)
        info = collection.last_recovery
        documents = collection.documents
        collection.close()
        snapshot = registry.snapshot()
    print(
        f"{path}: durable collection, {len(documents)} document(s), "
        f"last seq {info.last_seq}, snapshot generation {info.generation}"
    )
    for index, root in enumerate(documents):
        stats = root.stats()
        print(
            f"  doc {index}: nodes={stats.node_count} depth={stats.depth} "
            f"max-fanout={stats.max_fanout} leaves={stats.leaf_count}"
        )
    _print_snapshot(snapshot)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    failures = 0
    directories = [path for path in args.files if os.path.isdir(path)]
    for path in directories:
        failures += _durable_stats(path, getattr(args, "audit", False))
    files = [path for path in args.files if path not in directories]
    for path, document in zip(files, _read_documents(files)):
        stats = document.stats()
        print(
            f"{path}: nodes={stats.node_count} depth={stats.depth} "
            f"max-fanout={stats.max_fanout} leaves={stats.leaf_count}"
        )
        with metrics.collecting() as registry:
            store = LabelStore.build([document], scheme="prime")
            engine = QueryEngine(store)
            engine.evaluate("//*")
            if getattr(args, "audit", False):
                failures += _audit_store(store)
            snapshot = registry.snapshot()
        _print_snapshot(snapshot)
    return 0 if failures == 0 else 1


def cmd_label(args: argparse.Namespace) -> int:
    (document,) = _read_documents([args.file])
    scheme = SCHEME_FACTORIES[args.scheme]()
    scheme.label_tree(document)
    if args.annotate:
        for node in document.iter_preorder():
            node.attributes["label"] = _format_label(scheme.label_of(node))
        with open(args.annotate, "w", encoding="utf-8") as handle:
            handle.write(serialize(document, indent=2))
        print(f"wrote annotated document to {args.annotate}")
    else:
        for node in document.iter_preorder():
            indent = "  " * node.depth
            print(f"{indent}{node.tag}: {_format_label(scheme.label_of(node))}")
    print(
        f"-- {scheme.name}: max label {scheme.max_label_bits()} bits, "
        f"total {scheme.total_label_bits()} bits"
    )
    if getattr(args, "audit", False):
        from repro.obs.audit import audit_scheme

        report = audit_scheme(scheme)
        print(report.summary())
        if not report.ok:
            return 1
    return 0


def cmd_space(args: argparse.Namespace) -> int:
    from repro.labeling.stats import compare_space

    (document,) = _read_documents([args.file])
    chosen = (
        "interval", "interval-startend", "prefix-1", "prefix-2",
        "dewey", "prime", "prime-bottomup",
    )
    print(compare_space(document, [SCHEME_FACTORIES[name] for name in chosen]).to_text())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    (document,) = _read_documents([args.file])
    scheme = SCHEME_FACTORIES[args.scheme]()
    scheme.label_tree(document)
    pairs, mismatches = scheme.check_against_tree()
    print(f"{args.scheme}: {pairs} node pairs checked, {mismatches} mismatches")
    if getattr(args, "audit", False):
        from repro.obs.audit import audit_scheme

        report = audit_scheme(scheme)
        print(report.summary())
        if not report.ok:
            return 1
    return 0 if mismatches == 0 else 1


def cmd_query(args: argparse.Namespace) -> int:
    documents = _read_documents(args.files)
    store = LabelStore.build(documents, scheme=args.scheme)
    engine = QueryEngine(store, strategy=getattr(args, "strategy", "auto"))
    rows = engine.evaluate(args.query)
    for row in rows:
        print(f"doc {row.doc_id}: {row.node.path()}")
    print(f"-- {len(rows)} node(s) retrieved with the {args.scheme} store")
    if getattr(args, "explain", False) and engine.last_plan is not None:
        print("-- plan --")
        print(engine.last_plan.describe())
    if getattr(args, "audit", False) and _audit_store(store, indent=""):
        return 1
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    print(to_sql(args.query, scheme=args.scheme))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench
    from repro.bench.response import figure15_table, table2_table

    exhibits: Dict[str, Callable[[], object]] = {
        "planner": bench.planner_table,
        "fig3": bench.figure3_table,
        "fig4": bench.figure4_table,
        "fig5": bench.figure5_table,
        "table1": bench.table1_table,
        "fig13": bench.figure13_table,
        "fig14": bench.figure14_table,
        "table2": table2_table,
        "fig15": figure15_table,
        "fig16": bench.figure16_table,
        "fig17": bench.figure17_table,
        "fig18": bench.figure18_table,
        "durability": bench.durability_table,
        "compaction": bench.compaction_table,
        "resilience": bench.resilience_table,
        "throughput": bench.throughput_table,
        "replication": bench.replication_table,
        "shard": bench.shard_table,
    }
    builder = exhibits.get(args.exhibit)
    if builder is None:
        print(
            f"unknown exhibit {args.exhibit!r}; choose from {', '.join(exhibits)}",
            file=sys.stderr,
        )
        return 2
    from repro.bench.harness import capture_metrics

    table = capture_metrics(builder)
    print(table.to_text() if not args.chart else table.to_chart())
    if args.csv:
        from repro.bench.export import table_to_csv

        table_to_csv(table, args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        from repro.bench.export import table_to_json

        table_to_json(table, args.json)
        print(f"wrote {args.json}")
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    from repro.resilient import ChaosInjector, ResilientCollection, RetryPolicy

    documents = _read_documents(args.files)
    chaos = ChaosInjector.from_env()
    with metrics.collecting() as registry:
        collection = ResilientCollection.create(
            args.dir,
            documents,
            group_size=args.group_size,
            fsync=args.fsync,
            faults=chaos,
            # Generous retry budget: the CLI prefers a slow success over
            # asking the operator to re-run a whole dump.
            retry=RetryPolicy(max_attempts=8),
        )
        for i in range(args.churn):
            root = collection.documents[i % len(collection.documents)]
            collection.insert_child(root, 0, tag=f"churn{i}")
        if args.churn:
            collection.checkpoint()
        collection.close()
        snapshot = registry.snapshot()
    print(
        f"created durable collection in {args.dir}: "
        f"{len(documents)} document(s), fsync={args.fsync}"
        + (f", churn={args.churn}" if args.churn else "")
    )
    if chaos is not None:
        print(
            f"chaos: {chaos.total_injected} transient fault(s) injected, "
            f"{collection.retries} retrie(s), "
            f"breaker opened {collection.breaker.times_opened}x"
        )
    _print_snapshot(snapshot)
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    from repro.durable import DurableCollection

    with metrics.collecting() as registry:
        collection = DurableCollection.open(
            args.dir, fsync=args.fsync, verify=not args.no_verify
        )
        info = collection.last_recovery
        rows = collection.query(args.query) if args.query else None
        collection.close()
        snapshot = registry.snapshot()
    print(info.summary())
    if rows is not None:
        for row in rows:
            print(f"doc {row.doc_id}: {row.node.path()}")
        print(f"-- {len(rows)} node(s) retrieved")
    _print_snapshot(snapshot)
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Recover through the resilient layer and report serving health."""
    import json

    from repro.resilient import ChaosInjector, ResilientCollection

    chaos = ChaosInjector.from_env()
    with metrics.collecting() as registry:
        collection = ResilientCollection.open(
            args.dir, fsync=args.fsync, verify=not args.no_verify, faults=chaos
        )
        info = collection.durable.last_recovery
        ordered_ok = collection.check()
        report = collection.health()
        collection.close()
        snapshot = registry.snapshot()
    report["order_check"] = "ok" if ordered_ok else "FAILED"
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(info.summary())
        breaker = report["breaker"]
        print(
            f"state: {report['state']} | breaker: {breaker['state']} "
            f"(opened {breaker['times_opened']}x, probes {breaker['probes']}) | "
            f"order check: {report['order_check']}"
        )
        print(
            f"retries: {report['retries']} | faults: "
            + " ".join(
                f"{domain}={count}"
                for domain, count in sorted(report["faults"].items())
            )
        )
        _print_snapshot(snapshot)
    return 0 if ordered_ok and report["state"] == "ok" else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a WAL shipping endpoint over a durable collection directory."""
    import time

    from repro.durable.recovery import WAL_NAME
    from repro.replica import WalShipServer

    wal_path = os.path.join(args.dir, WAL_NAME)
    if not os.path.isdir(args.dir):
        raise FileNotFoundError(f"no such collection directory: {args.dir}")
    server = WalShipServer(wal_path, host=args.host, port=args.port)
    host, port = server.start()
    print(f"shipping {wal_path} on {host}:{port}")
    try:
        if args.duration > 0:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print("ship server stopped")
    return 0


def _replica_transport(args: argparse.Namespace):
    """Build the transport ``replicate`` was asked for (file or socket)."""
    if not args.connect:
        return None  # ReplicaCollection defaults to FileTransport
    from repro.replica import SocketTransport

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise ReplicationError(
            f"--connect expects HOST:PORT, got {args.connect!r}"
        )
    return SocketTransport(host, int(port))


def cmd_replicate(args: argparse.Namespace) -> int:
    """Bootstrap a replica and tail the primary's WAL to convergence."""
    import json

    from repro.replica import ReplicaCollection

    with metrics.collecting() as registry:
        replica = ReplicaCollection(args.dir, transport=_replica_transport(args))
        applied = replica.catch_up()
        lag = replica.lag()
        rows = replica.query(args.query) if args.query else None
        replica.close()
        snapshot = registry.snapshot()
    print(
        f"replica of {args.dir}: bootstrapped at seq "
        f"{replica.applied_seq - applied}, applied {applied} record(s), "
        f"now at seq {replica.applied_seq}"
        + (f", {replica.resyncs} resync(s)" if replica.resyncs else "")
    )
    if rows is not None:
        for row in rows:
            print(f"doc {row.doc_id}: {row.node.path()}")
        print(f"-- {len(rows)} node(s) retrieved from the published view")
    if args.state:
        state = {
            "applied_seq": replica.applied_seq,
            "offset": replica.tailer.offset,
            "resyncs": replica.resyncs,
        }
        with open(args.state, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
        print(f"wrote replica state to {args.state}")
    _print_snapshot(snapshot)
    if lag.record_lag:
        # The primary moved while we were converging; report, don't fail.
        print(f"note: primary advanced to seq {lag.primary_seq} meanwhile")
    return 0


def cmd_lag(args: argparse.Namespace) -> int:
    """Report replica lag against a primary's directory."""
    import json

    from repro.durable import WalReader, read_pointer
    from repro.durable.recovery import WAL_NAME
    from repro.durable.wal import WAL_HEADER

    wal_path = os.path.join(args.dir, WAL_NAME)
    reader = WalReader(wal_path)
    primary_seq = reader.last_lsn()
    try:
        primary_bytes = os.path.getsize(wal_path)
    except OSError:
        primary_bytes = 0
    applied_seq = 0
    offset = None
    source = "none"
    if args.state:
        with open(args.state, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        applied_seq = int(state.get("applied_seq", 0))
        offset = state.get("offset")
        source = args.state
    else:
        pointer = read_pointer(args.dir)
        if pointer is not None:
            applied_seq = int(pointer["last_seq"])
            source = "CURRENT pointer"
    if offset is None:
        # Without a replica position, a fresh bootstrapper would replay
        # every record currently in the log: count those bytes as lag.
        offset = min(primary_bytes, len(WAL_HEADER))
    byte_lag = max(0, primary_bytes - int(offset))
    record_lag = max(0, primary_seq - applied_seq)
    if args.json:
        print(
            json.dumps(
                {
                    "applied_seq": applied_seq,
                    "primary_seq": primary_seq,
                    "record_lag": record_lag,
                    "byte_lag": byte_lag,
                    "source": source,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"applied seq {applied_seq} (from {source}) | "
            f"primary seq {primary_seq} | "
            f"lag: {record_lag} record(s), {byte_lag} byte(s)"
        )
    if args.max_bytes is not None and byte_lag > args.max_bytes:
        raise ReplicationError(
            f"byte lag {byte_lag} exceeds --max-bytes {args.max_bytes}"
        )
    return 0


def cmd_shard_serve(args: argparse.Namespace) -> int:
    """Run (and optionally create + churn) a supervised sharded collection."""
    import json

    from repro.shard import MANIFEST_NAME, ShardedCollection

    existing = os.path.isfile(os.path.join(args.dir, MANIFEST_NAME))
    if existing and args.files:
        raise ShardError(
            f"{args.dir} already holds a sharded collection; "
            "drop the XML file arguments to open it"
        )
    if not existing and not args.files:
        raise ShardError(
            f"{args.dir} is not a sharded collection root; "
            "pass XML files to create one"
        )
    with metrics.collecting() as registry:
        if existing:
            service = ShardedCollection.open(args.dir, fsync=args.fsync)
        else:
            service = ShardedCollection.create(
                args.dir,
                _read_documents(args.files),
                shards=args.shards,
                fsync=args.fsync,
            )
        try:
            for i in range(args.churn):
                if args.kill is not None and i == args.churn // 2:
                    service.kill_worker(args.kill)
                service.insert_child(i % service.doc_count, 0, 0, tag=f"churn{i}")
            settled = service.settle()
            rows = missing = None
            if args.query:
                result = service.query(args.query)
                rows, missing = len(result.rows), sorted(result.missing_shards)
            violations = sum(len(v) for v in service.audit().values())
            statuses = service.status()
            if args.churn:
                service.checkpoint()
        finally:
            service.close()
        snapshot = registry.snapshot()
    healthy = settled and violations == 0
    if args.json:
        print(
            json.dumps(
                {
                    "root": args.dir,
                    "shards": [
                        {
                            "shard": h.shard_id,
                            "state": h.state.value,
                            "last_seq": h.last_seq,
                            "restarts": h.restarts,
                            "buffered_ops": h.buffered_ops,
                        }
                        for h in statuses
                    ],
                    "settled": settled,
                    "audit_violations": violations,
                    "query_rows": rows,
                    "missing_shards": missing,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        verb = "opened" if existing else "created"
        print(
            f"{verb} sharded collection in {args.dir}: "
            f"{len(statuses)} shard(s), {service.doc_count} document(s)"
            + (f", churn={args.churn}" if args.churn else "")
        )
        for health in statuses:
            print("  " + health.summary())
        if rows is not None:
            line = f"-- {rows} node(s) retrieved"
            if missing:
                line += f" (PARTIAL: shard(s) {missing} missing)"
            print(line)
        print(
            f"settled: {'yes' if settled else 'NO'} | "
            f"audit violations: {violations}"
        )
        _print_snapshot(snapshot)
    return 0 if healthy else 1


def cmd_shard_status(args: argparse.Namespace) -> int:
    """Inspect a sharded collection root offline (no workers started)."""
    import json

    from repro.durable import WalReader, read_pointer
    from repro.durable.recovery import WAL_NAME, list_shard_directories
    from repro.shard import read_manifest

    manifest = read_manifest(args.dir)
    shards = []
    for shard_id, path in list_shard_directories(args.dir):
        pointer = read_pointer(path)
        wal_path = os.path.join(str(path), WAL_NAME)
        try:
            wal_seq = WalReader(wal_path).last_lsn()
        except (OSError, DurabilityError):
            wal_seq = 0
        shards.append(
            {
                "shard": shard_id,
                "generation": pointer["generation"] if pointer else None,
                "pointer_seq": pointer["last_seq"] if pointer else None,
                "wal_seq": wal_seq,
            }
        )
    if len(shards) != manifest.shards:
        raise ShardError(
            f"{args.dir} holds {len(shards)} shard director(ies) but the "
            f"manifest promises {manifest.shards}"
        )
    if args.json:
        print(
            json.dumps(
                {
                    "root": args.dir,
                    "shards": manifest.shards,
                    "doc_count": manifest.doc_count,
                    "fsync": manifest.fsync,
                    "group_size": manifest.group_size,
                    "shard_dirs": shards,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"{args.dir}: sharded collection, {manifest.shards} shard(s), "
            f"{manifest.doc_count} document(s), fsync={manifest.fsync}"
        )
        for entry in shards:
            print(
                f"  shard {entry['shard']}: generation={entry['generation']} "
                f"pointer_seq={entry['pointer_seq']} wal_seq={entry['wal_seq']}"
            )
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    from repro.durable import recover

    with metrics.collecting() as registry:
        recovered = recover(args.dir, verify=not args.no_verify)
        snapshot = registry.snapshot()
    print(recovered.info.summary())
    _print_snapshot(snapshot)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prime number labeling for dynamic ordered XML trees (ICDE 2004).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    audit_help = "run the deep invariant auditor; exit 1 on any violation"

    stats = commands.add_parser(
        "stats", help="structural statistics + instrumented pipeline counters"
    )
    stats.add_argument("files", nargs="+")
    stats.add_argument("--audit", action="store_true", help=audit_help)
    stats.set_defaults(handler=cmd_stats)

    label = commands.add_parser("label", help="label a document and print/annotate")
    label.add_argument("file")
    label.add_argument("--scheme", choices=sorted(SCHEME_FACTORIES), default="prime")
    label.add_argument("--annotate", metavar="OUT.xml",
                       help="write the document with label attributes instead")
    label.add_argument("--audit", action="store_true", help=audit_help)
    label.set_defaults(handler=cmd_label)

    space = commands.add_parser("space", help="label-space report across schemes")
    space.add_argument("file")
    space.set_defaults(handler=cmd_space)

    check = commands.add_parser("check", help="verify labels against the tree")
    check.add_argument("file")
    check.add_argument("--scheme", choices=sorted(SCHEME_FACTORIES), default="prime")
    check.add_argument("--audit", action="store_true", help=audit_help)
    check.set_defaults(handler=cmd_check)

    query = commands.add_parser("query", help="run an XPath-subset query")
    query.add_argument("query")
    query.add_argument("files", nargs="+")
    query.add_argument("--scheme", choices=STORE_SCHEMES, default="prime")
    query.add_argument(
        "--strategy",
        choices=("scan", "merge", "window", "twig", "auto"),
        default="auto",
        help="evaluation strategy (default: auto, the cost-based planner)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the chosen plan (per-step strategy + cost estimates)",
    )
    query.add_argument("--audit", action="store_true", help=audit_help)
    query.set_defaults(handler=cmd_query)

    sql = commands.add_parser("sql", help="show the SQL translation of a query")
    sql.add_argument("query")
    sql.add_argument("--scheme", choices=STORE_SCHEMES, default="prime")
    sql.set_defaults(handler=cmd_sql)

    bench = commands.add_parser("bench", help="regenerate a paper exhibit")
    bench.add_argument("exhibit")
    bench.add_argument("--chart", action="store_true", help="render as text bars")
    bench.add_argument("--csv", metavar="OUT.csv", help="also write the table as CSV")
    bench.add_argument(
        "--json", metavar="OUT.json", help="also write the table (plus metrics) as JSON"
    )
    bench.set_defaults(handler=cmd_bench)

    fsync_default = os.environ.get("REPRO_WAL_FSYNC", "always")
    fsync_help = (
        "WAL fsync policy: always, never, or batch:N "
        f"(default from REPRO_WAL_FSYNC, currently {fsync_default!r})"
    )

    dump = commands.add_parser(
        "dump", help="create a durable collection directory from XML files"
    )
    dump.add_argument("dir")
    dump.add_argument("files", nargs="+")
    dump.add_argument("--group-size", type=int, default=5,
                      help="SC-table group size (default 5)")
    dump.add_argument("--fsync", default=fsync_default, help=fsync_help)
    dump.add_argument("--churn", type=int, default=0, metavar="N",
                      help="apply N synthetic insertions through the "
                           "resilient layer after creating the collection")
    dump.set_defaults(handler=cmd_dump)

    load = commands.add_parser(
        "load", help="recover a durable collection and optionally query it"
    )
    load.add_argument("dir")
    load.add_argument("--query", help="XPath-subset query to run after recovery")
    load.add_argument("--fsync", default=fsync_default, help=fsync_help)
    load.add_argument("--no-verify", action="store_true",
                      help="skip the post-replay invariant audit")
    load.set_defaults(handler=cmd_load)

    recover = commands.add_parser(
        "recover", help="run crash recovery read-only and report what it did"
    )
    recover.add_argument("dir")
    recover.add_argument("--no-verify", action="store_true",
                         help="skip the post-replay invariant audit")
    recover.set_defaults(handler=cmd_recover)

    serve = commands.add_parser(
        "serve", help="ship a collection's WAL to replicas over TCP"
    )
    serve.add_argument("dir")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral, printed on start)")
    serve.add_argument("--duration", type=float, default=0.0, metavar="S",
                       help="serve for S seconds then exit (default: forever)")
    serve.set_defaults(handler=cmd_serve)

    replicate = commands.add_parser(
        "replicate", help="bootstrap a replica and tail the WAL to convergence"
    )
    replicate.add_argument("dir",
                           help="primary directory (snapshots; WAL too unless --connect)")
    replicate.add_argument("--connect", metavar="HOST:PORT",
                           help="ship the WAL from a `repro serve` endpoint "
                                "instead of the filesystem")
    replicate.add_argument("--query",
                           help="XPath-subset query to run against the "
                                "published view after convergence")
    replicate.add_argument("--state", metavar="OUT.json",
                           help="record the replica's position for `repro lag`")
    replicate.set_defaults(handler=cmd_replicate)

    lag = commands.add_parser(
        "lag", help="report replica lag (applied/primary LSN, byte lag)"
    )
    lag.add_argument("dir", help="primary directory")
    lag.add_argument("--state", metavar="REP.json",
                     help="replica state written by `repro replicate --state`")
    lag.add_argument("--json", action="store_true",
                     help="emit the lag report as JSON")
    lag.add_argument("--max-bytes", type=int, default=None, metavar="N",
                     help="exit 5 if byte lag exceeds N")
    lag.set_defaults(handler=cmd_lag)

    shard_serve = commands.add_parser(
        "shard-serve",
        help="run a supervised sharded collection (create it from XML files)",
    )
    shard_serve.add_argument("dir", help="sharded collection root")
    shard_serve.add_argument("files", nargs="*",
                             help="XML files (create mode only)")
    shard_serve.add_argument("--shards", type=int, default=2,
                             help="worker count when creating (default 2)")
    shard_serve.add_argument("--fsync", default=fsync_default, help=fsync_help)
    shard_serve.add_argument("--churn", type=int, default=0, metavar="N",
                             help="apply N synthetic insertions through "
                                  "the router")
    shard_serve.add_argument("--kill", type=int, default=None, metavar="S",
                             help="SIGKILL shard S's worker halfway through "
                                  "the churn (restart + replay exercise)")
    shard_serve.add_argument("--query",
                             help="XPath-subset query to scatter-gather "
                                  "after the churn")
    shard_serve.add_argument("--json", action="store_true",
                             help="emit the shard report as JSON")
    shard_serve.set_defaults(handler=cmd_shard_serve)

    shard_status = commands.add_parser(
        "shard-status",
        help="inspect a sharded collection root offline (no workers)",
    )
    shard_status.add_argument("dir", help="sharded collection root")
    shard_status.add_argument("--json", action="store_true",
                              help="emit the status report as JSON")
    shard_status.set_defaults(handler=cmd_shard_status)

    health = commands.add_parser(
        "health", help="recover through the resilient layer and report health"
    )
    health.add_argument("dir")
    health.add_argument("--fsync", default=fsync_default, help=fsync_help)
    health.add_argument("--json", action="store_true",
                        help="emit the full health report as JSON")
    health.add_argument("--no-verify", action="store_true",
                        help="skip the post-replay invariant audit")
    health.set_defaults(handler=cmd_health)

    from repro.analysis.cli import add_lint_parser

    add_lint_parser(commands)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except XmlSyntaxError as error:
        print(f"error: malformed XML: {error}", file=sys.stderr)
        return 3
    except ReplicationError as error:
        # Subclasses DurabilityError; must be caught first to keep its
        # own exit code.
        print(f"error: replication failure: {error}", file=sys.stderr)
        return 5
    except DurabilityError as error:
        print(f"error: durability failure: {error}", file=sys.stderr)
        return 4
    except ShardError as error:
        # Subclasses ReproError directly; caught before the generic
        # handler to keep its own exit code.
        print(f"error: sharding failure: {error}", file=sys.stderr)
        return 6
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
