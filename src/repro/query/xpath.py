"""Parser for the XPath subset used by the paper's test queries (Table 2).

Grammar (axis names are case-insensitive, as the paper mixes casings)::

    query  := ('/' | '//') step ( ('/' | '//') step )*
    step   := [ axis '::' ] name [ '[' integer ']' ]
    axis   := 'Following' | 'Preceding' | 'Following-Sibling' | 'Preceding-Sibling'

``/`` introduces a child step and ``//`` a descendant step; an explicit
axis overrides the separator (the paper writes ``//Following::act`` where
the ``//`` is decorative).
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import QuerySyntaxError
from repro.query.ast import Axis, Query, Step

__all__ = ["parse_query"]

_AXES = {
    "child": Axis.CHILD,
    "descendant": Axis.DESCENDANT,
    "parent": Axis.PARENT,
    "ancestor": Axis.ANCESTOR,
    "following": Axis.FOLLOWING,
    "preceding": Axis.PRECEDING,
    "following-sibling": Axis.FOLLOWING_SIBLING,
    "preceding-sibling": Axis.PRECEDING_SIBLING,
}

_STEP_PATTERN = re.compile(
    r"""
    (?P<sep> // | / )
    \s*
    (?: (?P<axis> [A-Za-z-]+ ) \s* :: \s* )?
    (?P<name> [A-Za-z_][\w.-]* | \* )
    (?: \[ (?P<position> \d+ ) \] )?
    (?: \[ \s* \.\s*=\s* (?P<quote>["']) (?P<text> [^"']* ) (?P=quote) \s* \] )?
    """,
    re.VERBOSE,
)


def parse_query(text: str) -> Query:
    """Parse ``text`` into a :class:`repro.query.ast.Query`.

    Raises :class:`repro.errors.QuerySyntaxError` on malformed input.
    """
    stripped = text.strip()
    if not stripped:
        raise QuerySyntaxError("empty query")
    steps: List[Step] = []
    position = 0
    while position < len(stripped):
        match = _STEP_PATTERN.match(stripped, position)
        if match is None:
            raise QuerySyntaxError(
                f"cannot parse query {text!r} at offset {position}: "
                f"{stripped[position:position + 20]!r}"
            )
        axis_name = match.group("axis")
        if axis_name is not None:
            axis = _AXES.get(axis_name.lower())
            if axis is None:
                raise QuerySyntaxError(f"unknown axis {axis_name!r} in {text!r}")
        else:
            axis = Axis.DESCENDANT if match.group("sep") == "//" else Axis.CHILD
        predicate = match.group("position")
        if predicate is not None and int(predicate) < 1:
            raise QuerySyntaxError(f"positions are 1-based; got [{predicate}]")
        steps.append(
            Step(
                axis=axis,
                tag=match.group("name"),
                position=int(predicate) if predicate is not None else None,
                text=match.group("text"),
                from_descendants=(
                    axis_name is not None and match.group("sep") == "//"
                ),
            )
        )
        position = match.end()
    return Query(steps=tuple(steps))
