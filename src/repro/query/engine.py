"""Set-at-a-time query evaluation over a :class:`~repro.query.store.LabelStore`.

Semantics (documented divergences from full XPath are deliberate and match
how the paper's own SQL translation behaves):

* The **first step** matches elements with its tag at any depth of each
  document (the paper writes ``/act[5]`` although ``act`` is never a root).
* ``tag[n]`` keeps, per context node (per document for the first step), the
  n-th match in document order — the strategy of Section 4.3 ("the author
  nodes are sorted first according to their order numbers; finally, we
  return the author node that is in the second position").
* ``Following``/``Preceding`` are scoped to the context node's document and
  exclude descendants/ancestors respectively, per the paper's definitions.

Every predicate of the label-comparison strategies goes through the
store's :class:`~repro.query.store.StoreOps`; the ``window`` strategy
instead reads the store's pre/post accelerator columns
(:mod:`repro.query.window`) and the ``twig`` strategy hands eligible
queries whole to the tree-pattern matcher (:mod:`repro.query.twig`).
All strategies return identical rows in identical order; ``auto`` lets
the cost model (:mod:`repro.query.planner`) pick per step.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import QueryEvaluationError
from repro.obs import metrics
from repro.query.ast import Axis, Query, Step
from repro.query.planner import Planner, QueryPlan, StepChoice
from repro.query.store import ElementRow, LabelStore
from repro.query.window import DocWindow, WindowEntry
from repro.query.xpath import parse_query

__all__ = ["QueryEngine"]

_STRATEGIES = ("scan", "merge", "window", "twig", "auto")


class QueryEngine:
    """Evaluates parsed queries (or query text) against one label store.

    ``strategy`` selects how structural steps execute:

    * ``"scan"`` — per-context tag-index scans, one label test per
      (context, candidate) pair; the paper's relational evaluation,
      robust, O(|ctx| · |cand|).
    * ``"merge"`` — a stack-based sort-merge over both sides in document
      order (the Stack-Tree join generalized over any scheme's ancestor
      test), O(|ctx| + |cand| + |out|) per document.  Steps the merge
      cannot handle (order axes, positional predicates) fall back to the
      scan path, so results are always identical.
    * ``"window"`` — binary-searched pre/post range windows over the
      store's accelerator columns; every axis, O(|ctx| · log |cand| +
      |out|), no order-key computation.  Falls back to scan when the
      store has no window index.
    * ``"twig"`` — pure structural chains are handed whole to the
      tree-pattern matcher; anything else falls back to scan.
    * ``"auto"`` (default) — the cost model picks among the above per
      step from store statistics and the live context size.

    After each :meth:`evaluate` the chosen route is readable from
    :attr:`last_plan` (the CLI's ``--explain`` prints it) and counted in
    the ``planner.pick.<strategy>`` metrics.
    """

    def __init__(self, store: LabelStore, strategy: str = "auto"):
        if strategy not in _STRATEGIES:
            raise QueryEvaluationError(
                f"unknown strategy {strategy!r}; choose from {', '.join(_STRATEGIES)}"
            )
        self.store = store
        self.strategy = strategy
        self.planner = Planner()
        self.last_plan: Optional[QueryPlan] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(
        self, query: Query | str, doc_ids: "list[int] | set[int] | None" = None
    ) -> List[ElementRow]:
        """Evaluate ``query``; returns matching rows in document order.

        ``doc_ids`` optionally restricts evaluation to a subset of the
        collection (used by the DataGuide pre-filter).
        """
        if isinstance(query, str):
            query = parse_query(query)
        if not query.steps:
            raise QueryEvaluationError("query has no steps")
        # Normalize once: membership below is per-document, and callers
        # may hand us a large list (the DataGuide pre-filter does).
        if doc_ids is not None and not isinstance(doc_ids, (set, frozenset)):
            doc_ids = set(doc_ids)
        plan = QueryPlan(strategy=self.strategy)
        self.last_plan = plan
        with metrics.timed("query.evaluate"):
            context = self._maybe_evaluate_twig(query, doc_ids, plan)
            if context is None:
                context = self._seed_context(query.steps[0], doc_ids)
                for step in query.steps[1:]:
                    choice = self._choose_step_strategy(step, len(context))
                    plan.record(choice)
                    metrics.incr(f"planner.pick.{choice.strategy}")
                    context = self._apply_step(context, step, choice.strategy)
            metrics.incr("query.evaluations")
            metrics.incr("query.rows_returned", len(context))
        return context

    def count(self, query: Query | str) -> int:
        """Number of nodes retrieved — the metric of Table 2."""
        return len(self.evaluate(query))

    def explain(self, query: Query | str) -> str:
        """Evaluate ``query`` and render the route it took (``--explain``)."""
        self.evaluate(query)
        assert self.last_plan is not None
        return self.last_plan.describe()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _choose_step_strategy(self, step: Step, context_size: int) -> StepChoice:
        """Resolve one step's physical operator under the engine strategy.

        Fixed strategies degrade to ``scan`` where they do not apply
        (merge on order axes or positions, window without the index), so
        every strategy answers every query identically.
        """
        windows_ok = self.store.windows is not None
        if self.strategy == "auto" and windows_ok:
            return self.planner.plan_step(self.store.statistics(), step, context_size)
        if self.strategy == "merge" and (
            step.axis in (Axis.CHILD, Axis.DESCENDANT) and step.position is None
        ):
            picked = "merge"
        elif self.strategy == "window" and windows_ok:
            picked = "window"
        elif self.strategy == "auto":
            # No window index: the label strategies are all that is left,
            # and the planner's estimates still arbitrate scan vs merge.
            choice = self.planner.plan_step(self.store.statistics(), step, context_size)
            picked = choice.strategy
        else:
            picked = "scan"
        return StepChoice(
            axis=step.axis.value,
            tag=step.tag,
            strategy=picked,
            context_size=context_size,
        )

    def _maybe_evaluate_twig(
        self,
        query: Query,
        doc_ids: "set[int] | None",
        plan: QueryPlan,
    ) -> Optional[List[ElementRow]]:
        """Run the whole-query twig route when chosen; None = step route.

        The twig matcher needs real labeled tree nodes plus each
        document's scheme, so stores loaded from disk (placeholder nodes,
        SC-table-only order holders) return None and take the step route.
        """
        if not self.planner.twig_eligible(query) or len(query.steps) < 2:
            return None
        if self.strategy == "auto":
            stats = self.store.statistics()
            if self.planner.twig_cost(stats, query) >= self.planner.chain_cost(
                stats, query
            ):
                return None
        elif self.strategy != "twig":
            return None
        result = self._evaluate_twig(query, doc_ids)
        if result is not None:
            plan.twig = "//".join(step.tag for step in query.steps)
            metrics.incr("planner.pick.twig")
        return result

    def _evaluate_twig(
        self, query: Query, doc_ids: "set[int] | None"
    ) -> Optional[List[ElementRow]]:
        """One bottom-up tree-pattern pass per document (or None if the
        store cannot support it)."""
        from repro.query.twig import TwigNode, TwigPattern, match_twig

        root = TwigNode(tag=query.steps[0].tag, edge="descendant")
        tail = root
        for step in query.steps[1:]:
            tail = tail.add(
                TwigNode(
                    tag=step.tag,
                    edge="child" if step.axis is Axis.CHILD else "descendant",
                )
            )
        pattern = TwigPattern(root=root, output=tail)
        ordered = self.store.ordered_documents()
        selected = [
            doc_id
            for doc_id in self.store.doc_ids
            if doc_ids is None or doc_id in doc_ids
        ]
        results: List[ElementRow] = []
        with metrics.timed("query.op.twig"):
            for doc_id in selected:
                scheme = getattr(ordered.get(doc_id), "scheme", None)
                if scheme is None:
                    return None
                rows = self.store.rows_in_doc(doc_id)
                metrics.incr("query.nodes_scanned", len(rows))
                matched = match_twig(scheme, [row.node for row in rows], pattern)
                doc_rows = []
                for node in matched:
                    row = self.store.row_of(node)
                    if row is None:
                        return None  # labels and table disagree; be safe
                    doc_rows.append(row)
                results.extend(self._sorted_in_doc_order(doc_rows))
            metrics.incr("query.nodes_emitted", len(results))
        return results

    def _sorted_in_doc_order(self, rows: List[ElementRow]) -> List[ElementRow]:
        """Rows sorted into document order, via pre ranks when available."""
        windows = self.store.windows
        if windows is not None:
            return sorted(rows, key=lambda row: windows.entry_of(row).pre)
        ops = self.store.ops
        return sorted(rows, key=ops.order_key)

    # ------------------------------------------------------------------
    # Step machinery
    # ------------------------------------------------------------------

    def _seed_context(
        self, step: Step, doc_ids: "set[int] | None" = None
    ) -> List[ElementRow]:
        if step.axis not in (Axis.CHILD, Axis.DESCENDANT):
            raise QueryEvaluationError(
                f"a query cannot start with the {step.axis.value} axis"
            )
        if doc_ids is not None and not isinstance(doc_ids, (set, frozenset)):
            doc_ids = set(doc_ids)
        ops = self.store.ops
        results: List[ElementRow] = []
        selected = self.store.doc_ids if doc_ids is None else [
            doc_id for doc_id in self.store.doc_ids if doc_id in doc_ids
        ]
        # The window index's per-tag lists are already in document order;
        # the label strategies instead pay the scheme's order-key sort
        # (for prime: the paper's SC-table overhead).
        use_windows = (
            self.store.windows is not None and self.strategy in ("window", "auto")
        )
        with metrics.timed("query.op.seed"):
            for doc_id in selected:
                if use_windows:
                    doc = self.store.windows.doc(doc_id)
                    entries = doc.tag_entries(step.tag) if doc is not None else []
                    matches = [entry.row for entry in entries]
                else:
                    candidates = self.store.rows_with_tag(doc_id, step.tag)
                    matches = sorted(candidates, key=ops.order_key)
                metrics.incr("query.nodes_scanned", len(matches))
                if step.position is not None:
                    matches = (
                        [matches[step.position - 1]] if len(matches) >= step.position else []
                    )
                # Text filters apply AFTER position: the paper's
                # `book/author[2]/"John"` asks whether the *second* author is
                # John, not for the second John-named author.
                if step.text is not None:
                    matches = [row for row in matches if row.text == step.text]
                results.extend(matches)
            metrics.incr("query.nodes_emitted", len(results))
        return results

    _ORDER_AXES = (
        Axis.FOLLOWING,
        Axis.PRECEDING,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
    )

    def _apply_step(
        self, context: List[ElementRow], step: Step, picked: Optional[str] = None
    ) -> List[ElementRow]:
        if picked is None:
            picked = self._choose_step_strategy(step, len(context)).strategy
        if picked == "merge":
            return self._apply_structural_merge(context, step)
        if picked == "window" and self.store.windows is not None:
            return self._apply_window_step(context, step)
        ops = self.store.ops
        expanded = step.from_descendants and step.axis in self._ORDER_AXES
        predicate = None if expanded else self._axis_predicate(step.axis)
        collected: List[ElementRow] = []
        seen: set[int] = set()
        with metrics.timed(f"query.op.{step.axis.value}"):
            for context_row in context:
                candidates = self.store.rows_with_tag(context_row.doc_id, step.tag)
                metrics.incr("query.nodes_scanned", len(candidates))
                if expanded:
                    matches = self._expanded_axis_matches(context_row, step.axis, candidates)
                else:
                    matches = [row for row in candidates if predicate(context_row, row)]
                matches.sort(key=ops.order_key)
                if step.position is not None:
                    matches = (
                        [matches[step.position - 1]] if len(matches) >= step.position else []
                    )
                # After position, matching the paper's `author[2]/"John"`.
                if step.text is not None:
                    matches = [row for row in matches if row.text == step.text]
                for row in matches:
                    if row.element_id not in seen:
                        seen.add(row.element_id)
                        collected.append(row)
            collected.sort(key=lambda row: (row.doc_id, ops.order_key(row)))
            metrics.incr("query.nodes_emitted", len(collected))
        return collected

    # ------------------------------------------------------------------
    # Window strategy: binary-searched pre/post range windows
    # ------------------------------------------------------------------

    def _apply_window_step(
        self, context: List[ElementRow], step: Step
    ) -> List[ElementRow]:
        """One step through the accelerator columns.

        Each context row's matches come out of a bisected slice of the
        per-(doc, tag) pre-sorted list — already in document order, so no
        order keys are ever computed; the final cross-context sort uses
        the ``(doc_id, pre)`` pair, which realizes the same document
        order as the schemes' order keys.
        """
        windows = self.store.windows
        assert windows is not None
        collected: List[ElementRow] = []
        seen: set[int] = set()
        with metrics.timed(f"query.op.window.{step.axis.value}"):
            for context_row in context:
                doc = windows.doc(context_row.doc_id)
                if doc is None:
                    continue
                entries = self._window_axis_entries(doc, context_row, step)
                metrics.incr("query.nodes_scanned", len(entries))
                if step.position is not None:
                    entries = (
                        [entries[step.position - 1]]
                        if len(entries) >= step.position
                        else []
                    )
                matches = [entry.row for entry in entries]
                # After position, matching the paper's `author[2]/"John"`.
                if step.text is not None:
                    matches = [row for row in matches if row.text == step.text]
                for row in matches:
                    if row.element_id not in seen:
                        seen.add(row.element_id)
                        collected.append(row)
            collected.sort(
                key=lambda row: (row.doc_id, windows.entry_of(row).pre)
            )
            metrics.incr("query.nodes_emitted", len(collected))
        return collected

    def _window_axis_entries(
        self, doc: DocWindow, context_row: ElementRow, step: Step
    ) -> List[WindowEntry]:
        """The axis window for one context row, sorted by ``pre``.

        Range bounds per axis (0-based dense pre ranks; ``end`` is the
        last pre of a subtree):

        * descendant: ``(pre, end]`` of the context;
        * child: the same window, filtered one level down;
        * following: suffix from ``end + 1`` (expanded: after the
          leftmost-spine leaf — "following of any descendant-or-self");
        * preceding: prefix before ``pre`` minus ancestors (expanded:
          before ``end`` minus ancestors and the rightmost spine);
        * siblings: the parent's window, filtered by ``parent_id``
          (expanded: per-parent extreme pre over the whole subtree);
        * parent/ancestor: ``parent_id`` chain walks, O(depth).
        """
        entry = doc.entry(context_row.element_id)
        tag_list = doc.tag_entries(step.tag)
        last_pre = len(doc.by_pre) - 1
        axis = step.axis
        expanded = step.from_descendants and axis in self._ORDER_AXES

        if axis is Axis.DESCENDANT:
            return doc.range_in(tag_list, entry.pre + 1, entry.end)
        if axis is Axis.CHILD:
            window = doc.range_in(tag_list, entry.pre + 1, entry.end)
            return [e for e in window if e.level == entry.level + 1]
        if axis is Axis.PARENT:
            if context_row.parent_id is None:
                return []
            parent = doc.entry(context_row.parent_id)
            wanted = step.tag == "*" or parent.row.tag == step.tag
            return [parent] if wanted else []
        if axis is Axis.ANCESTOR:
            chain: List[WindowEntry] = []
            parent_id = context_row.parent_id
            while parent_id is not None:
                ancestor = doc.entry(parent_id)
                if step.tag == "*" or ancestor.row.tag == step.tag:
                    chain.append(ancestor)
                parent_id = ancestor.row.parent_id
            chain.reverse()  # collected leaf-ward; document order is root-ward
            return chain
        if axis is Axis.FOLLOWING:
            if expanded:
                spine = entry  # descend first children to the leftmost leaf
                while spine.size > 1:
                    spine = doc.by_pre[spine.pre + 1]
                return doc.range_in(tag_list, spine.pre + 1, last_pre)
            return doc.range_in(tag_list, entry.pre + entry.size, last_pre)
        if axis is Axis.PRECEDING:
            if expanded:
                prefix = doc.range_in(tag_list, 0, entry.end - 1)
                return [
                    e
                    for e in prefix
                    # not on the subtree's rightmost spine ...
                    if not (e.pre >= entry.pre and e.end == entry.end)
                    # ... and not a proper ancestor of the context
                    and not (e.pre < entry.pre <= e.end)
                ]
            prefix = doc.range_in(tag_list, 0, entry.pre - 1)
            return [e for e in prefix if e.end < entry.pre]
        # Sibling axes.
        if expanded:
            extreme: Dict[int, int] = {}
            want_min = axis is Axis.FOLLOWING_SIBLING
            for member in doc.by_pre[entry.pre : entry.end + 1]:
                parent_id = member.row.parent_id
                if parent_id is None:
                    continue  # a document root has no siblings
                best = extreme.get(parent_id)
                if best is None or (
                    member.pre < best if want_min else member.pre > best
                ):
                    extreme[parent_id] = member.pre
            if context_row.parent_id is not None:
                parent = doc.entry(context_row.parent_id)
                lo, hi = parent.pre + 1, parent.end
            else:
                lo, hi = entry.pre + 1, entry.end
            window = doc.range_in(tag_list, lo, hi)
            if want_min:
                return [
                    e
                    for e in window
                    if e.row.parent_id in extreme and e.pre > extreme[e.row.parent_id]
                ]
            return [
                e
                for e in window
                if e.row.parent_id in extreme and e.pre < extreme[e.row.parent_id]
            ]
        if context_row.parent_id is None:
            return []
        parent = doc.entry(context_row.parent_id)
        if axis is Axis.FOLLOWING_SIBLING:
            window = doc.range_in(tag_list, entry.end + 1, parent.end)
        else:
            window = doc.range_in(tag_list, parent.pre + 1, entry.pre - 1)
        return [e for e in window if e.row.parent_id == context_row.parent_id]

    # ------------------------------------------------------------------
    # Merge strategy: stack-based structural join per document
    # ------------------------------------------------------------------

    def _apply_structural_merge(
        self, context: List[ElementRow], step: Step
    ) -> List[ElementRow]:
        """One sort-merge pass per document over (context, candidates).

        Both sides are walked in document order with a stack of *open*
        context ancestors: because subtrees are contiguous in document
        order, a stack top that fails the ancestor test against the current
        item has closed and can be popped — the Stack-Tree invariant,
        expressed through any scheme's label-only ancestor test.
        """
        from itertools import groupby

        ops = self.store.ops
        with metrics.timed("query.op.merge"):
            return self._structural_merge_pass(context, step, ops, groupby)

    def _structural_merge_pass(
        self, context: List[ElementRow], step: Step, ops: Any, groupby: Callable
    ) -> List[ElementRow]:
        """The timed body of :meth:`_apply_structural_merge`."""
        ordered_context = sorted(
            context, key=lambda row: (row.doc_id, ops.order_key(row))
        )
        results: List[ElementRow] = []
        for doc_id, group in groupby(ordered_context, key=lambda row: row.doc_id):
            ctx_rows = list(group)
            candidates = sorted(
                self.store.rows_with_tag(doc_id, step.tag), key=ops.order_key
            )
            metrics.incr("query.nodes_scanned", len(candidates))
            stack: List[ElementRow] = []
            push_index = 0
            for candidate in candidates:
                candidate_order = ops.order_key(candidate)
                while (
                    push_index < len(ctx_rows)
                    and ops.order_key(ctx_rows[push_index]) < candidate_order
                ):
                    entering = ctx_rows[push_index]
                    while stack and not ops.is_ancestor(stack[-1], entering):
                        stack.pop()
                    stack.append(entering)
                    push_index += 1
                while stack and not ops.is_ancestor(stack[-1], candidate):
                    stack.pop()
                if not stack:
                    continue
                if step.axis is Axis.CHILD:
                    # the stack is an ancestor chain with strictly increasing
                    # depths; the candidate's parent is on it iff some entry
                    # sits exactly one level up
                    if not any(
                        entry.depth == candidate.depth - 1 for entry in stack
                    ):
                        continue
                if step.text is not None and candidate.text != step.text:
                    continue
                results.append(candidate)
        metrics.incr("query.nodes_emitted", len(results))
        return results

    # ------------------------------------------------------------------
    # `context//axis::tag` — descendant-or-self expansion before the axis
    # ------------------------------------------------------------------

    def _expanded_axis_matches(
        self, context_row: ElementRow, axis: Axis, candidates: List[ElementRow]
    ) -> List[ElementRow]:
        """Union of ``axis`` over every descendant-or-self of the context.

        Uses closed-form characterizations instead of materializing the
        per-descendant unions:

        * following: everything ordered after the context's *leftmost spine*
          end (the first node whose subtree closes);
        * preceding: everything before the subtree's last node, except the
          context's ancestors and the subtree's *rightmost spine*;
        * sibling axes: candidates sharing a parent with any subtree node,
          on the correct side of that sibling group's extreme order.
        """
        ops = self.store.ops
        subtree = [context_row] + [
            row
            for row in self.store.rows_in_doc(context_row.doc_id)
            if ops.is_ancestor(context_row, row)
        ]
        orders = {id(row): ops.order_key(row) for row in subtree}
        children_of: Dict[object, List[ElementRow]] = {}
        for row in subtree:
            # A document root's parent key can equal its own node key (the
            # prime scheme's root has label 1 and parent-label 1); skip the
            # self-edge or the spine walks below would never terminate.
            if ops.parent_key(row) == ops.node_key(row):
                continue
            children_of.setdefault(ops.parent_key(row), []).append(row)

        def spine_end(pick_extreme: Callable) -> ElementRow:
            node = context_row
            while True:
                children = children_of.get(ops.node_key(node))
                if not children:
                    return node
                node = pick_extreme(children, key=lambda r: orders[id(r)])

        if axis is Axis.FOLLOWING:
            threshold = orders[id(spine_end(min))]
            return [row for row in candidates if ops.order_key(row) > threshold]
        if axis is Axis.PRECEDING:
            last = max(subtree, key=lambda r: orders[id(r)])
            right_spine_ids = set()
            node = context_row
            while True:
                right_spine_ids.add(id(node))
                children = children_of.get(ops.node_key(node))
                if not children:
                    break
                node = max(children, key=lambda r: orders[id(r)])
            boundary = orders[id(last)]
            return [
                row
                for row in candidates
                if ops.order_key(row) < boundary
                and id(row) not in right_spine_ids
                and not ops.is_ancestor(row, context_row)
            ]
        # Sibling axes: group the subtree by parent and compare against the
        # group's extreme order.
        extreme: Dict[object, object] = {}
        for row in subtree:
            if ops.parent_key(row) == ops.node_key(row):
                continue  # a document root has no siblings (see above)
            key = ops.parent_key(row)
            order = orders[id(row)]
            if key not in extreme:
                extreme[key] = order
            elif axis is Axis.FOLLOWING_SIBLING:
                extreme[key] = min(extreme[key], order)
            else:
                extreme[key] = max(extreme[key], order)
        if axis is Axis.FOLLOWING_SIBLING:
            return [
                row
                for row in candidates
                if ops.parent_key(row) != ops.node_key(row)  # roots: no siblings
                and ops.parent_key(row) in extreme
                and ops.order_key(row) > extreme[ops.parent_key(row)]
            ]
        return [
            row
            for row in candidates
            if ops.parent_key(row) != ops.node_key(row)
            and ops.parent_key(row) in extreme
            and ops.order_key(row) < extreme[ops.parent_key(row)]
        ]

    def _axis_predicate(
        self, axis: Axis
    ) -> Callable[[ElementRow, ElementRow], bool]:
        ops = self.store.ops
        predicates: Dict[Axis, Callable[[ElementRow, ElementRow], bool]] = {
            Axis.CHILD: lambda c, r: ops.is_parent(c, r),
            Axis.DESCENDANT: lambda c, r: ops.is_ancestor(c, r),
            Axis.PARENT: lambda c, r: ops.is_parent(r, c),
            Axis.ANCESTOR: lambda c, r: ops.is_ancestor(r, c),
            Axis.FOLLOWING: lambda c, r: (
                ops.order_key(r) > ops.order_key(c) and not ops.is_ancestor(c, r)
            ),
            Axis.PRECEDING: lambda c, r: (
                ops.order_key(r) < ops.order_key(c) and not ops.is_ancestor(r, c)
            ),
            Axis.FOLLOWING_SIBLING: lambda c, r: (
                ops.same_parent(c, r) and ops.order_key(r) > ops.order_key(c)
            ),
            Axis.PRECEDING_SIBLING: lambda c, r: (
                ops.same_parent(c, r) and ops.order_key(r) < ops.order_key(c)
            ),
        }
        return predicates[axis]
