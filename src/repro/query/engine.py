"""Set-at-a-time query evaluation over a :class:`~repro.query.store.LabelStore`.

Semantics (documented divergences from full XPath are deliberate and match
how the paper's own SQL translation behaves):

* The **first step** matches elements with its tag at any depth of each
  document (the paper writes ``/act[5]`` although ``act`` is never a root).
* ``tag[n]`` keeps, per context node (per document for the first step), the
  n-th match in document order — the strategy of Section 4.3 ("the author
  nodes are sorted first according to their order numbers; finally, we
  return the author node that is in the second position").
* ``Following``/``Preceding`` are scoped to the context node's document and
  exclude descendants/ancestors respectively, per the paper's definitions.

Every predicate is a label comparison through the store's
:class:`~repro.query.store.StoreOps`; the engine never touches the XML
tree.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import QueryEvaluationError
from repro.obs import metrics
from repro.query.ast import Axis, Query, Step
from repro.query.store import ElementRow, LabelStore
from repro.query.xpath import parse_query

__all__ = ["QueryEngine"]


class QueryEngine:
    """Evaluates parsed queries (or query text) against one label store.

    ``strategy`` selects how structural (child/descendant) steps execute:

    * ``"scan"`` (default) — per-context tag-index scans, one label test
      per (context, candidate) pair; robust, O(|ctx| · |cand|).
    * ``"merge"`` — a stack-based sort-merge over both sides in document
      order (the Stack-Tree join generalized over any scheme's ancestor
      test), O(|ctx| + |cand| + |out|) per document.  Steps the merge
      cannot handle (order axes, positional predicates) fall back to the
      scan path, so results are always identical.
    """

    def __init__(self, store: LabelStore, strategy: str = "scan"):
        if strategy not in ("scan", "merge"):
            raise QueryEvaluationError(
                f"unknown strategy {strategy!r}; choose 'scan' or 'merge'"
            )
        self.store = store
        self.strategy = strategy

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(
        self, query: Query | str, doc_ids: "list[int] | set[int] | None" = None
    ) -> List[ElementRow]:
        """Evaluate ``query``; returns matching rows in document order.

        ``doc_ids`` optionally restricts evaluation to a subset of the
        collection (used by the DataGuide pre-filter).
        """
        if isinstance(query, str):
            query = parse_query(query)
        if not query.steps:
            raise QueryEvaluationError("query has no steps")
        with metrics.timed("query.evaluate"):
            context = self._seed_context(query.steps[0], doc_ids)
            for step in query.steps[1:]:
                context = self._apply_step(context, step)
            metrics.incr("query.evaluations")
            metrics.incr("query.rows_returned", len(context))
        return context

    def count(self, query: Query | str) -> int:
        """Number of nodes retrieved — the metric of Table 2."""
        return len(self.evaluate(query))

    # ------------------------------------------------------------------
    # Step machinery
    # ------------------------------------------------------------------

    def _seed_context(
        self, step: Step, doc_ids: "list[int] | set[int] | None" = None
    ) -> List[ElementRow]:
        if step.axis not in (Axis.CHILD, Axis.DESCENDANT):
            raise QueryEvaluationError(
                f"a query cannot start with the {step.axis.value} axis"
            )
        ops = self.store.ops
        results: List[ElementRow] = []
        selected = self.store.doc_ids if doc_ids is None else [
            doc_id for doc_id in self.store.doc_ids if doc_id in doc_ids
        ]
        with metrics.timed("query.op.seed"):
            for doc_id in selected:
                candidates = self.store.rows_with_tag(doc_id, step.tag)
                metrics.incr("query.nodes_scanned", len(candidates))
                matches = sorted(candidates, key=ops.order_key)
                if step.position is not None:
                    matches = (
                        [matches[step.position - 1]] if len(matches) >= step.position else []
                    )
                # Text filters apply AFTER position: the paper's
                # `book/author[2]/"John"` asks whether the *second* author is
                # John, not for the second John-named author.
                if step.text is not None:
                    matches = [row for row in matches if row.text == step.text]
                results.extend(matches)
            metrics.incr("query.nodes_emitted", len(results))
        return results

    _ORDER_AXES = (
        Axis.FOLLOWING,
        Axis.PRECEDING,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
    )

    def _apply_step(self, context: List[ElementRow], step: Step) -> List[ElementRow]:
        if (
            self.strategy == "merge"
            and step.axis in (Axis.CHILD, Axis.DESCENDANT)
            and step.position is None
        ):
            return self._apply_structural_merge(context, step)
        ops = self.store.ops
        expanded = step.from_descendants and step.axis in self._ORDER_AXES
        predicate = None if expanded else self._axis_predicate(step.axis)
        collected: List[ElementRow] = []
        seen: set[int] = set()
        with metrics.timed(f"query.op.{step.axis.value}"):
            for context_row in context:
                candidates = self.store.rows_with_tag(context_row.doc_id, step.tag)
                metrics.incr("query.nodes_scanned", len(candidates))
                if expanded:
                    matches = self._expanded_axis_matches(context_row, step.axis, candidates)
                else:
                    matches = [row for row in candidates if predicate(context_row, row)]
                matches.sort(key=ops.order_key)
                if step.position is not None:
                    matches = (
                        [matches[step.position - 1]] if len(matches) >= step.position else []
                    )
                # After position, matching the paper's `author[2]/"John"`.
                if step.text is not None:
                    matches = [row for row in matches if row.text == step.text]
                for row in matches:
                    if row.element_id not in seen:
                        seen.add(row.element_id)
                        collected.append(row)
            collected.sort(key=lambda row: (row.doc_id, ops.order_key(row)))
            metrics.incr("query.nodes_emitted", len(collected))
        return collected

    # ------------------------------------------------------------------
    # Merge strategy: stack-based structural join per document
    # ------------------------------------------------------------------

    def _apply_structural_merge(
        self, context: List[ElementRow], step: Step
    ) -> List[ElementRow]:
        """One sort-merge pass per document over (context, candidates).

        Both sides are walked in document order with a stack of *open*
        context ancestors: because subtrees are contiguous in document
        order, a stack top that fails the ancestor test against the current
        item has closed and can be popped — the Stack-Tree invariant,
        expressed through any scheme's label-only ancestor test.
        """
        from itertools import groupby

        ops = self.store.ops
        with metrics.timed("query.op.merge"):
            return self._structural_merge_pass(context, step, ops, groupby)

    def _structural_merge_pass(
        self, context: List[ElementRow], step: Step, ops: Any, groupby: Callable
    ) -> List[ElementRow]:
        """The timed body of :meth:`_apply_structural_merge`."""
        ordered_context = sorted(
            context, key=lambda row: (row.doc_id, ops.order_key(row))
        )
        results: List[ElementRow] = []
        for doc_id, group in groupby(ordered_context, key=lambda row: row.doc_id):
            ctx_rows = list(group)
            candidates = sorted(
                self.store.rows_with_tag(doc_id, step.tag), key=ops.order_key
            )
            metrics.incr("query.nodes_scanned", len(candidates))
            stack: List[ElementRow] = []
            push_index = 0
            for candidate in candidates:
                candidate_order = ops.order_key(candidate)
                while (
                    push_index < len(ctx_rows)
                    and ops.order_key(ctx_rows[push_index]) < candidate_order
                ):
                    entering = ctx_rows[push_index]
                    while stack and not ops.is_ancestor(stack[-1], entering):
                        stack.pop()
                    stack.append(entering)
                    push_index += 1
                while stack and not ops.is_ancestor(stack[-1], candidate):
                    stack.pop()
                if not stack:
                    continue
                if step.axis is Axis.CHILD:
                    # the stack is an ancestor chain with strictly increasing
                    # depths; the candidate's parent is on it iff some entry
                    # sits exactly one level up
                    if not any(
                        entry.depth == candidate.depth - 1 for entry in stack
                    ):
                        continue
                if step.text is not None and candidate.text != step.text:
                    continue
                results.append(candidate)
        metrics.incr("query.nodes_emitted", len(results))
        return results

    # ------------------------------------------------------------------
    # `context//axis::tag` — descendant-or-self expansion before the axis
    # ------------------------------------------------------------------

    def _expanded_axis_matches(
        self, context_row: ElementRow, axis: Axis, candidates: List[ElementRow]
    ) -> List[ElementRow]:
        """Union of ``axis`` over every descendant-or-self of the context.

        Uses closed-form characterizations instead of materializing the
        per-descendant unions:

        * following: everything ordered after the context's *leftmost spine*
          end (the first node whose subtree closes);
        * preceding: everything before the subtree's last node, except the
          context's ancestors and the subtree's *rightmost spine*;
        * sibling axes: candidates sharing a parent with any subtree node,
          on the correct side of that sibling group's extreme order.
        """
        ops = self.store.ops
        subtree = [context_row] + [
            row
            for row in self.store.rows_in_doc(context_row.doc_id)
            if ops.is_ancestor(context_row, row)
        ]
        orders = {id(row): ops.order_key(row) for row in subtree}
        children_of: Dict[object, List[ElementRow]] = {}
        for row in subtree:
            # A document root's parent key can equal its own node key (the
            # prime scheme's root has label 1 and parent-label 1); skip the
            # self-edge or the spine walks below would never terminate.
            if ops.parent_key(row) == ops.node_key(row):
                continue
            children_of.setdefault(ops.parent_key(row), []).append(row)

        def spine_end(pick_extreme: Callable) -> ElementRow:
            node = context_row
            while True:
                children = children_of.get(ops.node_key(node))
                if not children:
                    return node
                node = pick_extreme(children, key=lambda r: orders[id(r)])

        if axis is Axis.FOLLOWING:
            threshold = orders[id(spine_end(min))]
            return [row for row in candidates if ops.order_key(row) > threshold]
        if axis is Axis.PRECEDING:
            last = max(subtree, key=lambda r: orders[id(r)])
            right_spine_ids = set()
            node = context_row
            while True:
                right_spine_ids.add(id(node))
                children = children_of.get(ops.node_key(node))
                if not children:
                    break
                node = max(children, key=lambda r: orders[id(r)])
            boundary = orders[id(last)]
            return [
                row
                for row in candidates
                if ops.order_key(row) < boundary
                and id(row) not in right_spine_ids
                and not ops.is_ancestor(row, context_row)
            ]
        # Sibling axes: group the subtree by parent and compare against the
        # group's extreme order.
        extreme: Dict[object, object] = {}
        for row in subtree:
            if ops.parent_key(row) == ops.node_key(row):
                continue  # a document root has no siblings (see above)
            key = ops.parent_key(row)
            order = orders[id(row)]
            if key not in extreme:
                extreme[key] = order
            elif axis is Axis.FOLLOWING_SIBLING:
                extreme[key] = min(extreme[key], order)
            else:
                extreme[key] = max(extreme[key], order)
        if axis is Axis.FOLLOWING_SIBLING:
            return [
                row
                for row in candidates
                if ops.parent_key(row) != ops.node_key(row)  # roots: no siblings
                and ops.parent_key(row) in extreme
                and ops.order_key(row) > extreme[ops.parent_key(row)]
            ]
        return [
            row
            for row in candidates
            if ops.parent_key(row) != ops.node_key(row)
            and ops.parent_key(row) in extreme
            and ops.order_key(row) < extreme[ops.parent_key(row)]
        ]

    def _axis_predicate(
        self, axis: Axis
    ) -> Callable[[ElementRow, ElementRow], bool]:
        ops = self.store.ops
        predicates: Dict[Axis, Callable[[ElementRow, ElementRow], bool]] = {
            Axis.CHILD: lambda c, r: ops.is_parent(c, r),
            Axis.DESCENDANT: lambda c, r: ops.is_ancestor(c, r),
            Axis.PARENT: lambda c, r: ops.is_parent(r, c),
            Axis.ANCESTOR: lambda c, r: ops.is_ancestor(r, c),
            Axis.FOLLOWING: lambda c, r: (
                ops.order_key(r) > ops.order_key(c) and not ops.is_ancestor(c, r)
            ),
            Axis.PRECEDING: lambda c, r: (
                ops.order_key(r) < ops.order_key(c) and not ops.is_ancestor(r, c)
            ),
            Axis.FOLLOWING_SIBLING: lambda c, r: (
                ops.same_parent(c, r) and ops.order_key(r) > ops.order_key(c)
            ),
            Axis.PRECEDING_SIBLING: lambda c, r: (
                ops.same_parent(c, r) and ops.order_key(r) < ops.order_key(c)
            ),
        }
        return predicates[axis]
