"""Query AST for the XPath subset of Table 2."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Axis", "Step", "Query"]


class Axis(enum.Enum):
    """Navigation axis of one query step."""

    CHILD = "child"
    DESCENDANT = "descendant"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    FOLLOWING = "following"
    PRECEDING = "preceding"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"


@dataclass(frozen=True)
class Step:
    """One step: axis, tag test, optional positional predicate.

    ``position`` implements the paper's strategy for ``[n]``: matches are
    grouped per context node, sorted by document order, and the n-th is
    kept.

    ``text`` filters matches by their character data (the paper's
    motivating query ``book/author[2]/"John"`` — "retrieves a list of books
    whose second author is John"); applied before the positional predicate.

    ``from_descendants`` records that an explicit order axis was written
    after ``//`` (e.g. ``act[5]//Following::speech``).  Per XPath, that
    abbreviation expands to ``descendant-or-self`` *before* the axis, so the
    result is the union of the axis over the whole subtree — which reaches
    back inside the context's own subtree and is why the paper's Q4/Q5/Q7
    retrieve so many nodes.
    """

    axis: Axis
    tag: str
    position: Optional[int] = None
    text: Optional[str] = None
    from_descendants: bool = False

    def __str__(self) -> str:
        axis_text = {
            Axis.CHILD: "/",
            Axis.DESCENDANT: "//",
            Axis.PARENT: "/Parent::",
            Axis.ANCESTOR: "/Ancestor::",
            Axis.FOLLOWING: "//Following::",
            Axis.PRECEDING: "//Preceding::",
            Axis.FOLLOWING_SIBLING: "//Following-Sibling::",
            Axis.PRECEDING_SIBLING: "//Preceding-Sibling::",
        }[self.axis]
        predicate = f"[{self.position}]" if self.position is not None else ""
        if self.text is not None:
            predicate += f"[.={self.text!r}]"
        return f"{axis_text}{self.tag}{predicate}"


@dataclass(frozen=True)
class Query:
    """A parsed query: a pipeline of steps applied left to right.

    The first step seeds the context: it matches elements with its tag at
    *any* depth of each document (the paper's own queries rely on this —
    ``/act[5]`` addresses act elements although ``act`` is never the root).
    """

    steps: Tuple[Step, ...]

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)
