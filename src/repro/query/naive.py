"""Reference query evaluation by direct tree traversal (no labels).

The label-store engine (:mod:`repro.query.engine`) must return exactly
what a plain tree walk would — that is what "deterministic" labeling
means.  :class:`NaiveEvaluator` implements the same query semantics over
parent/child pointers and document positions, with no labels anywhere.
It is intentionally simple and obviously correct; the property tests pit
the engine (all three schemes, both strategies) against it on random
documents and queries.

It is shipped (rather than buried in the tests) because it is also the
honest baseline for *why labeling schemes exist*: compare its per-query
wall time against the label stores on anything non-trivial.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.errors import QueryEvaluationError
from repro.query.ast import Axis, Query, Step
from repro.query.xpath import parse_query
from repro.xmlkit.tree import XmlElement

__all__ = ["NaiveEvaluator"]


class NaiveEvaluator:
    """Evaluates the XPath subset by walking the document trees."""

    def __init__(self, documents: Sequence[XmlElement]):
        if not documents:
            raise QueryEvaluationError("cannot evaluate over zero documents")
        self.documents = list(documents)
        #: (doc index, preorder position) per node — document order, no labels
        self._position: Dict[int, tuple] = {}
        for doc_id, root in enumerate(self.documents):
            for position, node in enumerate(root.iter_preorder()):
                self._position[id(node)] = (doc_id, position)

    # ------------------------------------------------------------------
    # Public API (mirrors QueryEngine)
    # ------------------------------------------------------------------

    def evaluate(self, query: Query | str) -> List[XmlElement]:
        """Evaluate ``query``; returns matching elements in document order."""
        if isinstance(query, str):
            query = parse_query(query)
        if not query.steps:
            raise QueryEvaluationError("query has no steps")
        context = self._seed(query.steps[0])
        for step in query.steps[1:]:
            context = self._apply(context, step)
        return context

    def count(self, query: Query | str) -> int:
        """Number of elements retrieved."""
        return len(self.evaluate(query))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _order(self, node: XmlElement) -> tuple:
        return self._position[id(node)]

    def _matches_tag(self, node: XmlElement, tag: str) -> bool:
        return tag == "*" or node.tag == tag

    def _seed(self, step: Step) -> List[XmlElement]:
        if step.axis not in (Axis.CHILD, Axis.DESCENDANT):
            raise QueryEvaluationError(
                f"a query cannot start with the {step.axis.value} axis"
            )
        results: List[XmlElement] = []
        for root in self.documents:
            matches = [
                node for node in root.iter_preorder()
                if self._matches_tag(node, step.tag)
            ]
            if step.position is not None:
                matches = (
                    [matches[step.position - 1]] if len(matches) >= step.position else []
                )
            if step.text is not None:
                matches = [node for node in matches if node.text == step.text]
            results.extend(matches)
        return results

    def _document_nodes(self, context: XmlElement) -> List[XmlElement]:
        doc_id, _position = self._order(context)
        return list(self.documents[doc_id].iter_preorder())

    def _axis_nodes(self, context: XmlElement, step: Step) -> List[XmlElement]:
        if step.axis is Axis.CHILD:
            return list(context.children)
        if step.axis is Axis.DESCENDANT:
            return list(context.iter_descendants())
        if step.axis is Axis.PARENT:
            return [context.parent] if context.parent is not None else []
        if step.axis is Axis.ANCESTOR:
            ancestors = []
            cursor = context.parent
            while cursor is not None:
                ancestors.append(cursor)
                cursor = cursor.parent
            ancestors.reverse()
            return ancestors
        bases = (
            [context] + list(context.iter_descendants())
            if step.from_descendants
            else [context]
        )
        collected: Dict[int, XmlElement] = {}
        for base in bases:
            for node in self._order_axis(base, step.axis):
                collected[id(node)] = node
        return sorted(collected.values(), key=self._order)

    def _order_axis(self, base: XmlElement, axis: Axis) -> List[XmlElement]:
        pivot = self._order(base)
        if axis is Axis.FOLLOWING:
            return [
                node
                for node in self._document_nodes(base)
                if self._order(node) > pivot and not base.is_ancestor_of(node)
            ]
        if axis is Axis.PRECEDING:
            return [
                node
                for node in self._document_nodes(base)
                if self._order(node) < pivot and not node.is_ancestor_of(base)
            ]
        if base.parent is None:
            return []
        siblings = [node for node in base.parent.children if node is not base]
        if axis is Axis.FOLLOWING_SIBLING:
            return [node for node in siblings if self._order(node) > pivot]
        if axis is Axis.PRECEDING_SIBLING:
            return [node for node in siblings if self._order(node) < pivot]
        raise QueryEvaluationError(f"unhandled axis {axis}")

    def _apply(self, context: List[XmlElement], step: Step) -> List[XmlElement]:
        collected: List[XmlElement] = []
        seen: set = set()
        for context_node in context:
            matches = [
                node
                for node in self._axis_nodes(context_node, step)
                if self._matches_tag(node, step.tag)
            ]
            matches.sort(key=self._order)
            if step.position is not None:
                matches = (
                    [matches[step.position - 1]] if len(matches) >= step.position else []
                )
            if step.text is not None:
                matches = [node for node in matches if node.text == step.text]
            for node in matches:
                if id(node) not in seen:
                    seen.add(id(node))
                    collected.append(node)
        collected.sort(key=self._order)
        return collected
