"""Label-store query engine — the paper's Section 5.2 setting, in memory.

The paper loads labels into a relational DBMS and translates XPath queries
to SQL whose predicates are pure label comparisons (``mod``/``<``/``>`` for
prime and interval; a ``check prefix`` user-defined function for prefix
labels).  This package reproduces that architecture without the DBMS:

* :mod:`repro.query.store` — the element table: one row per node with its
  tag, label, depth and document id, plus per-scheme comparison operations;
* :mod:`repro.query.ast` / :mod:`repro.query.xpath` — the XPath subset of
  Table 2 (child/descendant steps, the four order axes, positional
  predicates);
* :mod:`repro.query.engine` — set-at-a-time evaluation over the store using
  only label comparisons (the source tree is never walked);
* :mod:`repro.query.sql` — the equivalent SQL text, for illustration.
"""

from repro.query.ast import Axis, Query, Step
from repro.query.dataguide import DataGuide, GuidedQueryEngine
from repro.query.engine import QueryEngine
from repro.query.join import nested_loop_join, prime_merge_join, stack_tree_join
from repro.query.live import BatchOp, BatchReport, LiveCollection, ReadView
from repro.query.persist import load_store, save_store
from repro.query.sql import to_sql
from repro.query.store import ElementRow, FrozenPrimeOps, LabelStore
from repro.query.twig import TwigNode, TwigPattern, match_twig
from repro.query.xpath import parse_query

__all__ = [
    "Axis",
    "Query",
    "Step",
    "DataGuide",
    "GuidedQueryEngine",
    "QueryEngine",
    "nested_loop_join",
    "prime_merge_join",
    "stack_tree_join",
    "to_sql",
    "BatchOp",
    "BatchReport",
    "ElementRow",
    "FrozenPrimeOps",
    "LabelStore",
    "LiveCollection",
    "ReadView",
    "load_store",
    "save_store",
    "TwigNode",
    "TwigPattern",
    "match_twig",
    "parse_query",
]
