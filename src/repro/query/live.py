"""A live, updatable collection: ordered documents + a query surface.

:class:`LabelStore` is a static snapshot; the paper's whole pitch is
*dynamic* documents.  :class:`LiveCollection` closes the loop: it manages
one :class:`~repro.order.document.OrderedDocument` per document, applies
order-sensitive updates through them (charging the paper's costs), and
exposes an always-consistent query engine over the prime label store.

Queries between mutations reuse the cached store; single-node inserts and
subtree deletes *patch* that store (rows, tag buckets, and the pre/post
window columns of :mod:`repro.query.window`) in place instead of
invalidating it, so the mutation hot path never pays a full rebuild —
``live.engine_rebuilds`` stays flat under update load while
``live.store_patches`` counts the incremental maintenance.  Structural
wholesale changes (``add_document``, ``compact``) still invalidate, and
any patching error falls back to invalidation: a rebuild is always
correct.  The per-update *cost model* comes from the ordered documents'
reports either way, so experiments are unaffected by the engineering
choice.

Batched mutations: :meth:`LiveCollection.apply_batch` (and the
:meth:`~LiveCollection.bulk_insert` / :meth:`~LiveCollection.bulk_delete`
conveniences) run a sequence of :class:`BatchOp`\\ s through the *same*
sequential update algorithm, but with each touched document's SC table in
batch mode — so grouping, prime issuance, overflow repair, and per-op cost
reports are byte-identical to applying the ops one by one, while each
touched SC record pays one CRT solve per batch instead of one per node.
See ``docs/BATCHING.md``.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CapacityError, QueryEvaluationError
from repro.labeling.prime import PrimeScheme
from repro.obs import metrics
from repro.order.document import OrderedDocument, OrderedUpdateReport
from repro.query.engine import QueryEngine
from repro.query.store import ElementRow, LabelStore, PrimeOps
from repro.xmlkit.tree import XmlElement

__all__ = ["BatchOp", "BatchReport", "LiveCollection", "ReadView"]


@dataclass(frozen=True)
class BatchOp:
    """One mutation inside a batch: an operation kind plus its target.

    ``node`` is the *parent* for ``insert_child``, the reference sibling
    for ``insert_before`` / ``insert_after``, and the doomed node for
    ``delete``.  Ops are built against the pre-batch tree; a batch must not
    target a node that an earlier op in the same batch deletes (the op will
    fail and, at the durable layer, roll the whole batch back).
    """

    KINDS: ClassVar[Tuple[str, ...]] = (
        "insert_child",
        "insert_before",
        "insert_after",
        "delete",
    )

    kind: str
    node: XmlElement
    index: Optional[int] = None
    tag: str = "new"

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise QueryEvaluationError(
                f"unknown batch op kind {self.kind!r}; expected one of {self.KINDS}"
            )
        if self.kind == "insert_child":
            if self.index is None:
                raise QueryEvaluationError("insert_child batch ops need an index")
            if self.index < 0:
                # list.insert would silently clamp this and the op would
                # land at the wrong position (or die deep in the SC table);
                # reject at construction, before the batch ever runs.
                raise QueryEvaluationError(
                    f"insert_child index {self.index} is negative"
                )

    @classmethod
    def insert_child(cls, parent: XmlElement, index: int, tag: str = "new") -> "BatchOp":
        """An order-sensitive insertion under ``parent`` at ``index``."""
        return cls("insert_child", parent, index=index, tag=tag)

    @classmethod
    def insert_before(cls, reference: XmlElement, tag: str = "new") -> "BatchOp":
        """A new sibling immediately before ``reference``."""
        return cls("insert_before", reference, tag=tag)

    @classmethod
    def insert_after(cls, reference: XmlElement, tag: str = "new") -> "BatchOp":
        """A new sibling immediately after ``reference``."""
        return cls("insert_after", reference, tag=tag)

    @classmethod
    def delete(cls, node: XmlElement) -> "BatchOp":
        """Deletion of ``node`` and its subtree."""
        return cls("delete", node)


@dataclass
class BatchReport:
    """Per-op cost reports for one batch, plus the aggregate totals.

    The per-op :class:`~repro.order.document.OrderedUpdateReport`\\ s are
    exactly what the sequential path would have produced — batching changes
    *when* CRT solves happen, never what the paper's cost model charges.
    """

    reports: List[OrderedUpdateReport] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def node_relabels(self) -> int:
        """Total nodes relabeled across the batch."""
        return sum(report.node_relabels for report in self.reports)

    @property
    def sc_records_updated(self) -> int:
        """Total SC record updates charged across the batch."""
        return sum(report.sc_records_updated for report in self.reports)

    @property
    def total_cost(self) -> int:
        """The paper's Figure 18 cost summed over every op in the batch."""
        return sum(report.total_cost for report in self.reports)


@dataclass(frozen=True)
class ReadView:
    """One published, immutable version of the collection's element table.

    The MVCC read unit: a frozen store copy behind its own query engine,
    stamped with the monotonically increasing publish ``version`` and the
    WAL sequence number (``applied_seq``) whose effects it contains.
    Views are safe to query from many threads concurrently — nothing in
    them mutates after publication — and stay valid (merely stale) for as
    long as a reader holds them, no matter what the writer does next.
    """

    version: int
    applied_seq: int
    engine: QueryEngine
    row_count: int
    fingerprint: Optional[str] = None

    def query(self, text: str) -> List[ElementRow]:
        """Evaluate an XPath-subset query against this frozen version."""
        return self.engine.evaluate(text)

    def count(self, text: str) -> int:
        """Number of nodes the query retrieves in this version."""
        return len(self.query(text))

    def audit(self) -> List[str]:
        """Internal-consistency check; returns violations (empty = clean).

        Validates the frozen table against the paper's structural
        invariants without touching any live state: every non-root row's
        parent exists, parent-labels link (``child.label.parent_value ==
        parent.label.value`` for prime labels), depths chain by one,
        per-document order keys are distinct, and sorting each document
        by order key yields a valid preorder of the ``parent_id`` tree
        (parents always open before their children, DFS-contiguously).
        """
        violations: List[str] = []
        store = self.engine.store
        ops = store.ops
        by_id = {row.element_id: row for row in store.rows}
        for row in store.rows:
            if row.parent_id is None:
                continue
            parent = by_id.get(row.parent_id)
            if parent is None:
                violations.append(
                    f"row {row.element_id}: parent {row.parent_id} missing"
                )
                continue
            if row.depth != parent.depth + 1:
                violations.append(
                    f"row {row.element_id}: depth {row.depth} != "
                    f"parent depth {parent.depth} + 1"
                )
            if ops.parent_key(row) != ops.node_key(parent):
                violations.append(
                    f"row {row.element_id}: parent-label link broken "
                    f"({ops.parent_key(row)!r} != {ops.node_key(parent)!r})"
                )
        for doc_id in store.doc_ids:
            doc_rows = store.rows_in_doc(doc_id)
            keys = [ops.order_key(row) for row in doc_rows]
            if len(set(keys)) != len(keys):
                violations.append(f"doc {doc_id}: duplicate order keys")
                continue
            ordered = [row for _, row in sorted(zip(keys, doc_rows))]
            stack: List[int] = []
            for row in ordered:
                if row.parent_id is None:
                    if stack:
                        violations.append(
                            f"doc {doc_id}: root row {row.element_id} "
                            "appears mid-sequence"
                        )
                        break
                else:
                    while stack and stack[-1] != row.parent_id:
                        stack.pop()
                    if not stack:
                        violations.append(
                            f"doc {doc_id}: row {row.element_id} opens "
                            f"before its parent {row.parent_id} in SC order"
                        )
                        break
                stack.append(row.element_id)
        return violations


class LiveCollection:
    """Ordered, queryable, updatable collection of XML documents."""

    def __init__(
        self,
        documents: Sequence[XmlElement],
        group_size: int | None = 5,
        strategy: str = "auto",
    ):
        self.group_size = group_size
        self.strategy = strategy
        self._ordered: List[OrderedDocument] = [
            OrderedDocument(root, group_size=group_size) for root in documents
        ]
        self._engine: Optional[QueryEngine] = None
        self.total_update_cost = 0
        self._index_by_root: Dict[int, int] = {
            id(ordered.root): index for index, ordered in enumerate(self._ordered)
        }
        if len(self._index_by_root) != len(self._ordered):
            raise QueryEvaluationError("the same document appears twice")
        self._publish_lock = threading.Lock()
        # repro: guarded-by(_publish_lock): _latest_view, _version
        self._latest_view: Optional[ReadView] = None
        self._version = 0

    @classmethod
    def from_ordered(
        cls,
        ordered: Sequence[OrderedDocument],
        group_size: int | None = 5,
        strategy: str = "auto",
        total_update_cost: int = 0,
    ) -> "LiveCollection":
        """Assemble a collection around existing ordered documents.

        Used by snapshot restore (:mod:`repro.durable`), where the documents
        arrive already labeled and ordered: re-running ``__init__`` would
        relabel them from scratch and destroy the restored state.

        Every restored document must share the collection's ``group_size``:
        ``add_document`` enforces one SC grouping policy per collection, and
        a snapshot assembled from mixed-policy documents must not sneak past
        that invariant just because it arrives pre-built.
        """
        for index, document in enumerate(ordered):
            if document.sc_table.group_size != group_size:
                raise QueryEvaluationError(
                    f"restored document {index} uses SC group_size "
                    f"{document.sc_table.group_size}, but the collection is "
                    f"being assembled with {group_size}; one SC grouping "
                    "policy applies collection-wide"
                )
        collection = cls.__new__(cls)
        collection.group_size = group_size
        collection.strategy = strategy
        collection._ordered = list(ordered)
        collection._engine = None
        collection.total_update_cost = total_update_cost
        collection._index_by_root = {
            id(document.root): index for index, document in enumerate(ordered)
        }
        if len(collection._index_by_root) != len(collection._ordered):
            raise QueryEvaluationError("the same document appears twice")
        collection._publish_lock = threading.Lock()
        collection._latest_view = None
        collection._version = 0
        return collection

    # ------------------------------------------------------------------
    # Store management
    # ------------------------------------------------------------------

    @property
    def documents(self) -> List[XmlElement]:
        """The document roots, in collection order."""
        return [ordered.root for ordered in self._ordered]

    @property
    def ordered_documents(self) -> List[OrderedDocument]:
        """The per-document ordered documents, in collection order."""
        return list(self._ordered)

    def _invalidate(self) -> None:
        self._engine = None

    @contextmanager
    def _capacity_context(self, doc: int) -> Iterator[None]:
        """Stamp escaping :class:`CapacityError`\\ s with the document index.

        The SC table knows its group but not which collection document it
        serves; the collection is the first frame that does, so capacity
        exhaustion surfaces with enough context to compact or relabel the
        right document.
        """
        try:
            yield
        except CapacityError as error:
            if error.document is None:
                error.document = doc
            raise

    def _build_engine(self) -> QueryEngine:
        metrics.incr("live.engine_rebuilds")
        rows: List[ElementRow] = []
        ordered_by_doc: Dict[int, OrderedDocument] = {}
        next_id = 0
        for doc_id, document in enumerate(self._ordered):
            ordered_by_doc[doc_id] = document
            doc_rows, next_id = LabelStore._make_rows(
                doc_id, document.root, document.scheme.label_of, next_id
            )
            rows.extend(doc_rows)
        # PrimeOps resolves each comparison through the *owning* document's
        # scheme (they are per-document instances and can diverge after
        # updates); the first scheme is only the fallback for order holders
        # without one.  An empty collection (a legal state: a freshly
        # created shard whose documents have not arrived yet) gets a
        # throwaway scheme — there are no rows to compare against it.
        fallback = (
            self._ordered[0].scheme if self._ordered else PrimeScheme()
        )
        store = LabelStore(rows, PrimeOps(fallback, ordered_by_doc))
        return QueryEngine(store, strategy=self.strategy)

    # ------------------------------------------------------------------
    # Incremental store maintenance (no rebuild on the mutation hot path)
    # ------------------------------------------------------------------

    def _patch_insert(self, doc: int, report: OrderedUpdateReport) -> None:
        """Patch the cached engine's store after one leaf insertion.

        Relabeled rows (residue-overflow cascades) re-read their labels,
        then the new node gets a fresh row with incrementally maintained
        window columns.  Any surprise degrades to plain invalidation —
        the rebuild path is always correct.
        """
        engine = self._engine
        if engine is None:
            return
        try:
            node = report.new_node
            if node is None:
                self._invalidate()
                return
            scheme = self._ordered[doc].scheme
            if report.relabeled_nodes:
                engine.store.refresh_labels(report.relabeled_nodes, scheme.label_of)
            engine.store.insert_row(doc, node, scheme.label_of(node))
            metrics.incr("live.store_patches")
        except Exception:
            metrics.incr("live.store_patch_failures")
            self._invalidate()

    def _patch_delete(self, doc: int, node: XmlElement, report: OrderedUpdateReport) -> None:
        """Patch the cached engine's store after one subtree deletion."""
        engine = self._engine
        if engine is None:
            return
        try:
            if report.relabeled_nodes:
                scheme = self._ordered[doc].scheme
                engine.store.refresh_labels(report.relabeled_nodes, scheme.label_of)
            engine.store.delete_subtree(node)
            metrics.incr("live.store_patches")
        except Exception:
            metrics.incr("live.store_patch_failures")
            self._invalidate()

    @property
    def engine(self) -> QueryEngine:
        """A query engine over the current state (rebuilt after updates)."""
        if self._engine is None:
            self._engine = self._build_engine()
        return self._engine

    # ------------------------------------------------------------------
    # MVCC publication (single writer, many concurrent readers)
    # ------------------------------------------------------------------

    def publish_view(
        self, applied_seq: int = 0, fingerprint: bool = False
    ) -> ReadView:
        """Publish the current state as an immutable :class:`ReadView`.

        Copy-on-publish: the writer's own store keeps being patched in
        place (the PR 6 hot path); publication takes a frozen copy of it
        (copied rows, materialized order keys — see
        :meth:`repro.query.store.LabelStore.frozen_copy`), wraps it in a
        fresh engine, and atomically swaps it in as :meth:`latest_view`.
        Reference swaps are GIL-atomic, so readers on other threads pick
        up either the old version or the new one — never a torn mix —
        without taking any lock on their query path.

        ``applied_seq`` stamps the view with the WAL sequence number its
        state reflects (the replica's applied LSN; 0 when the caller does
        not track one).  ``fingerprint=True`` additionally stamps the
        canonical :func:`~repro.durable.snapshot.collection_fingerprint`
        — the byte-identity oracle — which costs a full snapshot encode
        and is meant for tests and audits, not the hot path.

        Only the single designated writer thread may call this (it is
        serialized by a lock regardless, as is :meth:`read_view`'s
        publish-on-first-read).
        """
        with self._publish_lock:
            with metrics.timed("mvcc.publish"):
                digest: Optional[str] = None
                if fingerprint:
                    # Imported lazily: repro.durable imports this module.
                    from repro.durable.snapshot import collection_fingerprint

                    digest = collection_fingerprint(self)
                store = self.engine.store.frozen_copy()
                engine = QueryEngine(store, strategy=self.strategy)
                self._version += 1
                view = ReadView(
                    version=self._version,
                    applied_seq=applied_seq,
                    engine=engine,
                    row_count=len(store.rows),
                    fingerprint=digest,
                )
                self._latest_view = view
            metrics.incr("mvcc.publishes")
            metrics.gauge("mvcc.published_version", view.version)
            metrics.gauge("mvcc.published_seq", applied_seq)
        return view

    def latest_view(self) -> Optional[ReadView]:
        """The most recently published view (``None`` before any publish).

        Safe from any thread: reading one attribute is atomic under the
        GIL and the returned object is immutable.
        """
        return self._latest_view  # repro: ignore[R14] -- single GIL-atomic read of an immutable reference; the lock only serializes writers

    def read_view(self) -> ReadView:
        """A view to read from: the latest published one, or — before the
        first publication — a fresh publish of the current state."""
        view = self._latest_view  # repro: ignore[R14] -- GIL-atomic read; publish_view re-checks under the lock
        if view is None:
            view = self.publish_view()
        return view

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, text: str) -> List[ElementRow]:
        """Evaluate an XPath-subset query over the whole collection."""
        return self.engine.evaluate(text)

    def count(self, text: str) -> int:
        """Number of nodes the query retrieves."""
        return len(self.query(text))

    def document_index_of(self, node: XmlElement) -> int:
        """Collection index of the document owning ``node``.

        O(depth): walks to the node's root and hits the root→index map —
        every update used to pay an O(documents) linear scan here instead,
        which dominated update cost on large collections.
        """
        try:
            return self._index_by_root[id(node.root)]
        except KeyError:
            raise QueryEvaluationError(
                "node does not belong to this collection"
            ) from None

    def document_of(self, node: XmlElement) -> OrderedDocument:
        """The ordered document owning ``node``."""
        return self._ordered[self.document_index_of(node)]

    # ------------------------------------------------------------------
    # Updates (order-sensitive, charged per the paper)
    # ------------------------------------------------------------------

    def insert_child(
        self, parent: XmlElement, index: int, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Order-sensitive insertion under ``parent`` at ``index``."""
        doc = self.document_index_of(parent)
        with self._capacity_context(doc):
            report = self._ordered[doc].insert_child(parent, index, tag=tag)
        self.total_update_cost += report.total_cost
        self._patch_insert(doc, report)
        return report

    def insert_before(self, reference: XmlElement, tag: str = "new") -> OrderedUpdateReport:
        """Insert a new sibling immediately before ``reference``."""
        doc = self.document_index_of(reference)
        with self._capacity_context(doc):
            report = self._ordered[doc].insert_before(reference, tag=tag)
        self.total_update_cost += report.total_cost
        self._patch_insert(doc, report)
        return report

    def insert_after(self, reference: XmlElement, tag: str = "new") -> OrderedUpdateReport:
        """Insert a new sibling immediately after ``reference``."""
        doc = self.document_index_of(reference)
        with self._capacity_context(doc):
            report = self._ordered[doc].insert_after(reference, tag=tag)
        self.total_update_cost += report.total_cost
        self._patch_insert(doc, report)
        return report

    def delete(self, node: XmlElement) -> OrderedUpdateReport:
        """Delete ``node`` and its subtree (free, per Section 4.2).

        Charged and guarded exactly like the three insert paths: the
        report's cost lands in ``total_update_cost`` (today a delete costs
        0, but the invariant is that *every* update path charges what its
        report says) and an escaping :class:`CapacityError` is stamped
        with the document index.
        """
        doc = self.document_index_of(node)
        with self._capacity_context(doc):
            report = self._ordered[doc].delete(node)
        self.total_update_cost += report.total_cost
        self._patch_delete(doc, node, report)
        return report

    def apply_batch(
        self,
        ops: Sequence[BatchOp],
        before_op: Optional[Callable[[int, BatchOp], None]] = None,
    ) -> BatchReport:
        """Apply a sequence of :class:`BatchOp`\\ s with coalesced SC solves.

        Each op runs through the ordinary sequential update algorithm, in
        order, with every touched document's SC table in batch mode — the
        end state is byte-identical to applying the ops one by one, but
        each touched SC record is re-solved once per batch rather than once
        per op.  The summed cost is charged to ``total_update_cost`` and
        the engine is invalidated once.

        ``before_op`` is called with ``(position, op)`` immediately before
        each op applies — the durability layer uses it to encode WAL
        addresses against exactly the state replay will see.

        On failure the exception propagates after the already-applied
        prefix's costs are charged and every SC table leaves batch mode
        (no system stays deferred); this layer does *not* undo the prefix —
        atomic all-or-nothing batches are the durable layer's contract,
        which rolls back by reloading the last durable state.  The cached
        engine is patched per applied op (like the single-op methods) and
        only invalidated when the batch fails partway.
        """
        ops = list(ops)
        batch = BatchReport()
        if not ops:
            return batch
        metrics.incr("live.batches")
        try:
            with ExitStack() as stack:
                in_batch: set = set()
                for position, op in enumerate(ops):
                    doc = self.document_index_of(op.node)
                    if doc not in in_batch:
                        stack.enter_context(self._ordered[doc].batch())
                        in_batch.add(doc)
                    if before_op is not None:
                        before_op(position, op)
                    with self._capacity_context(doc):
                        report = self._apply_one(doc, op, position)
                    batch.reports.append(report)
                    if op.kind == "delete":
                        self._patch_delete(doc, op.node, report)
                    else:
                        self._patch_insert(doc, report)
        except BaseException:
            self.total_update_cost += batch.total_cost
            self._invalidate()
            raise
        self.total_update_cost += batch.total_cost
        metrics.incr("live.batch_ops", len(ops))
        return batch

    def _apply_one(self, doc: int, op: BatchOp, position: int = 0) -> OrderedUpdateReport:
        document = self._ordered[doc]
        if op.kind == "insert_child":
            assert op.index is not None
            if op.index > len(op.node.children):
                # list.insert would clamp this to an append and the op
                # would silently land at the wrong position; name the op
                # so a failed batch is debuggable.
                raise QueryEvaluationError(
                    f"batch op {position}: insert_child index {op.index} is "
                    f"past the end (parent has {len(op.node.children)} children)"
                )
            return document.insert_child(op.node, op.index, tag=op.tag)
        if op.kind == "insert_before":
            return document.insert_before(op.node, tag=op.tag)
        if op.kind == "insert_after":
            return document.insert_after(op.node, tag=op.tag)
        return document.delete(op.node)

    @contextmanager
    def batch_scope(self) -> Iterator["LiveCollection"]:
        """Defer SC solves across arbitrary updates on every document.

        WAL replay uses this to re-apply a logged batch through the
        single-op methods while still paying one CRT solve per touched
        record, mirroring the original group commit.
        """
        with ExitStack() as stack:
            for document in self._ordered:
                stack.enter_context(document.batch())
            yield self

    def bulk_insert(
        self, inserts: Sequence[Tuple[XmlElement, int, str]]
    ) -> BatchReport:
        """Batched order-sensitive insertions from (parent, index, tag) triples."""
        return self.apply_batch(
            [BatchOp.insert_child(parent, index, tag) for parent, index, tag in inserts]
        )

    def bulk_delete(self, nodes: Sequence[XmlElement]) -> BatchReport:
        """Batched deletion of ``nodes`` (each with its subtree)."""
        return self.apply_batch([BatchOp.delete(node) for node in nodes])

    def add_document(
        self, root: XmlElement, group_size: int | None = None
    ) -> int:
        """Add a whole document; returns its collection index.

        ``root`` must be a detached root not already in the collection.  The
        new document always inherits the collection's ``group_size`` (one SC
        grouping policy per collection); passing an explicit ``group_size``
        asserts it matches — a divergent value is rejected instead of being
        silently overridden.
        """
        if root.parent is not None:
            raise QueryEvaluationError(
                "add_document needs a detached root; detach() the subtree first"
            )
        if id(root) in self._index_by_root:
            raise QueryEvaluationError("document is already in this collection")
        if group_size is not None and group_size != self.group_size:
            raise QueryEvaluationError(
                f"document group_size {group_size} diverges from the "
                f"collection's {self.group_size}; one SC grouping policy "
                "applies collection-wide"
            )
        self._ordered.append(OrderedDocument(root, group_size=self.group_size))
        self._index_by_root[id(root)] = len(self._ordered) - 1
        self._invalidate()
        return len(self._ordered) - 1

    def compact(self) -> List[int]:
        """Compact every document's SC table (after heavy churn).

        Compaction renumbers orders densely, which can itself exhaust a
        small prime's residue range — a :class:`CapacityError` from here
        carries the index of the document that needs relabeling.  Returns
        the per-document SC record counts of the rebuilt tables (what each
        ``OrderedDocument.compact`` reported; previously discarded).
        """
        record_counts: List[int] = []
        for doc, ordered in enumerate(self._ordered):
            with self._capacity_context(doc):
                record_counts.append(ordered.compact())
        self._invalidate()
        return record_counts

    def check(self) -> bool:
        """Verify every document's SC-derived order."""
        return all(ordered.check() for ordered in self._ordered)
