"""A live, updatable collection: ordered documents + a query surface.

:class:`LabelStore` is a static snapshot; the paper's whole pitch is
*dynamic* documents.  :class:`LiveCollection` closes the loop: it manages
one :class:`~repro.order.document.OrderedDocument` per document, applies
order-sensitive updates through them (charging the paper's costs), and
exposes an always-consistent query engine over the prime label store.

The store is rebuilt lazily after mutations (dirty tracking); queries
between mutations reuse the cached store.  Rebuilding keeps correctness
trivially — the per-update *cost model* still comes from the ordered
documents' reports, so experiments are unaffected by the engineering
choice.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import CapacityError, QueryEvaluationError
from repro.obs import metrics
from repro.order.document import OrderedDocument, OrderedUpdateReport
from repro.query.engine import QueryEngine
from repro.query.store import ElementRow, LabelStore, PrimeOps
from repro.xmlkit.tree import XmlElement

__all__ = ["LiveCollection"]


class LiveCollection:
    """Ordered, queryable, updatable collection of XML documents."""

    def __init__(
        self,
        documents: Sequence[XmlElement],
        group_size: int | None = 5,
        strategy: str = "scan",
    ):
        if not documents:
            raise QueryEvaluationError("a collection needs at least one document")
        self.group_size = group_size
        self.strategy = strategy
        self._ordered: List[OrderedDocument] = [
            OrderedDocument(root, group_size=group_size) for root in documents
        ]
        self._engine: Optional[QueryEngine] = None
        self.total_update_cost = 0
        self._index_by_root: Dict[int, int] = {
            id(ordered.root): index for index, ordered in enumerate(self._ordered)
        }
        if len(self._index_by_root) != len(self._ordered):
            raise QueryEvaluationError("the same document appears twice")

    @classmethod
    def from_ordered(
        cls,
        ordered: Sequence[OrderedDocument],
        group_size: int | None = 5,
        strategy: str = "scan",
        total_update_cost: int = 0,
    ) -> "LiveCollection":
        """Assemble a collection around existing ordered documents.

        Used by snapshot restore (:mod:`repro.durable`), where the documents
        arrive already labeled and ordered: re-running ``__init__`` would
        relabel them from scratch and destroy the restored state.
        """
        if not ordered:
            raise QueryEvaluationError("a collection needs at least one document")
        collection = cls.__new__(cls)
        collection.group_size = group_size
        collection.strategy = strategy
        collection._ordered = list(ordered)
        collection._engine = None
        collection.total_update_cost = total_update_cost
        collection._index_by_root = {
            id(document.root): index for index, document in enumerate(ordered)
        }
        if len(collection._index_by_root) != len(collection._ordered):
            raise QueryEvaluationError("the same document appears twice")
        return collection

    # ------------------------------------------------------------------
    # Store management
    # ------------------------------------------------------------------

    @property
    def documents(self) -> List[XmlElement]:
        """The document roots, in collection order."""
        return [ordered.root for ordered in self._ordered]

    @property
    def ordered_documents(self) -> List[OrderedDocument]:
        """The per-document ordered documents, in collection order."""
        return list(self._ordered)

    def _invalidate(self) -> None:
        self._engine = None

    @contextmanager
    def _capacity_context(self, doc: int) -> Iterator[None]:
        """Stamp escaping :class:`CapacityError`\\ s with the document index.

        The SC table knows its group but not which collection document it
        serves; the collection is the first frame that does, so capacity
        exhaustion surfaces with enough context to compact or relabel the
        right document.
        """
        try:
            yield
        except CapacityError as error:
            if error.document is None:
                error.document = doc
            raise

    def _build_engine(self) -> QueryEngine:
        metrics.incr("live.engine_rebuilds")
        rows: List[ElementRow] = []
        ordered_by_doc: Dict[int, OrderedDocument] = {}
        next_id = 0
        for doc_id, document in enumerate(self._ordered):
            ordered_by_doc[doc_id] = document
            doc_rows, next_id = LabelStore._make_rows(
                doc_id, document.root, document.scheme.label_of, next_id
            )
            rows.extend(doc_rows)
        store = LabelStore(rows, PrimeOps(self._ordered[0].scheme, ordered_by_doc))
        return QueryEngine(store, strategy=self.strategy)

    @property
    def engine(self) -> QueryEngine:
        """A query engine over the current state (rebuilt after updates)."""
        if self._engine is None:
            self._engine = self._build_engine()
        return self._engine

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, text: str) -> List[ElementRow]:
        """Evaluate an XPath-subset query over the whole collection."""
        return self.engine.evaluate(text)

    def count(self, text: str) -> int:
        """Number of nodes the query retrieves."""
        return len(self.query(text))

    def document_index_of(self, node: XmlElement) -> int:
        """Collection index of the document owning ``node``.

        O(depth): walks to the node's root and hits the root→index map —
        every update used to pay an O(documents) linear scan here instead,
        which dominated update cost on large collections.
        """
        try:
            return self._index_by_root[id(node.root)]
        except KeyError:
            raise QueryEvaluationError(
                "node does not belong to this collection"
            ) from None

    def document_of(self, node: XmlElement) -> OrderedDocument:
        """The ordered document owning ``node``."""
        return self._ordered[self.document_index_of(node)]

    # ------------------------------------------------------------------
    # Updates (order-sensitive, charged per the paper)
    # ------------------------------------------------------------------

    def insert_child(
        self, parent: XmlElement, index: int, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Order-sensitive insertion under ``parent`` at ``index``."""
        doc = self.document_index_of(parent)
        with self._capacity_context(doc):
            report = self._ordered[doc].insert_child(parent, index, tag=tag)
        self.total_update_cost += report.total_cost
        self._invalidate()
        return report

    def insert_before(self, reference: XmlElement, tag: str = "new") -> OrderedUpdateReport:
        """Insert a new sibling immediately before ``reference``."""
        doc = self.document_index_of(reference)
        with self._capacity_context(doc):
            report = self._ordered[doc].insert_before(reference, tag=tag)
        self.total_update_cost += report.total_cost
        self._invalidate()
        return report

    def insert_after(self, reference: XmlElement, tag: str = "new") -> OrderedUpdateReport:
        """Insert a new sibling immediately after ``reference``."""
        doc = self.document_index_of(reference)
        with self._capacity_context(doc):
            report = self._ordered[doc].insert_after(reference, tag=tag)
        self.total_update_cost += report.total_cost
        self._invalidate()
        return report

    def delete(self, node: XmlElement) -> OrderedUpdateReport:
        """Delete ``node`` and its subtree (free, per Section 4.2)."""
        report = self.document_of(node).delete(node)
        self._invalidate()
        return report

    def add_document(
        self, root: XmlElement, group_size: int | None = None
    ) -> int:
        """Add a whole document; returns its collection index.

        ``root`` must be a detached root not already in the collection.  The
        new document always inherits the collection's ``group_size`` (one SC
        grouping policy per collection); passing an explicit ``group_size``
        asserts it matches — a divergent value is rejected instead of being
        silently overridden.
        """
        if root.parent is not None:
            raise QueryEvaluationError(
                "add_document needs a detached root; detach() the subtree first"
            )
        if id(root) in self._index_by_root:
            raise QueryEvaluationError("document is already in this collection")
        if group_size is not None and group_size != self.group_size:
            raise QueryEvaluationError(
                f"document group_size {group_size} diverges from the "
                f"collection's {self.group_size}; one SC grouping policy "
                "applies collection-wide"
            )
        self._ordered.append(OrderedDocument(root, group_size=self.group_size))
        self._index_by_root[id(root)] = len(self._ordered) - 1
        self._invalidate()
        return len(self._ordered) - 1

    def compact(self) -> None:
        """Compact every document's SC table (after heavy churn).

        Compaction renumbers orders densely, which can itself exhaust a
        small prime's residue range — a :class:`CapacityError` from here
        carries the index of the document that needs relabeling.
        """
        for doc, ordered in enumerate(self._ordered):
            with self._capacity_context(doc):
                ordered.compact()
        self._invalidate()

    def check(self) -> bool:
        """Verify every document's SC-derived order."""
        return all(ordered.check() for ordered in self._ordered)
