"""Structural join algorithms over labeled element sets.

The paper's opening motivation: "path and tree pattern matching algorithms
play crucial roles in the processing of XML queries ... containment joins
and structural joins whereby the pattern tree is composed by matching
ancestor and descendant pairs".  A labeling scheme's job is to make those
joins fast.  This module implements the classic algorithms so the schemes
can be exercised in their natural habitat:

* :func:`nested_loop_join` — the O(|A|·|D|) baseline that works with any
  scheme through its label-only ancestor test;
* :func:`stack_tree_join` — the Stack-Tree-Desc algorithm (Al-Khalifa et
  al., ICDE'02) over *interval* labels: one merge pass over both inputs
  sorted by start position, a stack of open ancestors, O(|A|+|D|+|out|);
* :func:`prime_merge_join` — the analogous single-pass join over *prime*
  labels: descendants sorted by document order carry their full label, and
  an ancestor stack is maintained by divisibility tests, exploiting that
  an ancestor's label divides all and only its subtree's labels.

All three return identical (ancestor, descendant) pair lists on the same
inputs — the cross-validation tests assert exactly that — and the ablation
bench ``benchmarks/test_ablation_structural_join.py`` compares their cost.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.labeling.base import LabelingScheme
from repro.labeling.interval import StartEndIntervalScheme, StartEndLabel, XissIntervalScheme
from repro.labeling.prime import PrimeLabel, PrimeScheme
from repro.obs import metrics
from repro.xmlkit.tree import XmlElement

__all__ = [
    "JoinPair",
    "nested_loop_join",
    "stack_tree_join",
    "prime_merge_join",
]

JoinPair = Tuple[XmlElement, XmlElement]


@metrics.timed("join.nested_loop")
def nested_loop_join(
    scheme: LabelingScheme,
    ancestors: Sequence[XmlElement],
    descendants: Sequence[XmlElement],
) -> List[JoinPair]:
    """Baseline: test every (a, d) pair through the scheme's label test.

    Output pairs are ordered by (ancestor input order, descendant input
    order); callers wanting canonical order should pass document-ordered
    inputs, as the merge joins require anyway.
    """
    pairs: List[JoinPair] = []
    ancestor_labels = [(a, scheme.label_of(a)) for a in ancestors]
    descendant_labels = [(d, scheme.label_of(d)) for d in descendants]
    for ancestor, a_label in ancestor_labels:
        for descendant, d_label in descendant_labels:
            if scheme.is_ancestor_label(a_label, d_label):
                pairs.append((ancestor, descendant))
    metrics.incr("join.label_tests", len(ancestors) * len(descendants))
    metrics.incr("join.pairs_emitted", len(pairs))
    return pairs


def _interval_of(scheme: LabelingScheme, node: XmlElement) -> Tuple[int, int]:
    """Normalize either interval flavour to a (start, end) pair."""
    label = scheme.label_of(node)
    if isinstance(label, StartEndLabel):
        return int(label.start), int(label.end)
    # XISS (order, size): descendants occupy order+1 .. order+size.
    return label.order, label.order + label.size


@metrics.timed("join.stack_tree")
def stack_tree_join(
    scheme: LabelingScheme,
    ancestors: Sequence[XmlElement],
    descendants: Sequence[XmlElement],
) -> List[JoinPair]:
    """Stack-Tree-Desc over interval labels: one merge pass, one stack.

    Requires an interval scheme (:class:`XissIntervalScheme` or
    :class:`StartEndIntervalScheme`).  Inputs may be in any order; they are
    sorted by start position internally (the classic algorithm assumes
    sorted inputs, which an index would provide).
    """
    if not isinstance(scheme, (XissIntervalScheme, StartEndIntervalScheme)):
        raise TypeError("stack_tree_join needs an interval labeling scheme")
    a_sorted = sorted(ancestors, key=lambda n: _interval_of(scheme, n)[0])
    d_sorted = sorted(descendants, key=lambda n: _interval_of(scheme, n)[0])
    pairs: List[JoinPair] = []
    stack: List[Tuple[XmlElement, int, int]] = []  # (node, start, end)
    a_index = 0
    for descendant in d_sorted:
        d_start, _d_end = _interval_of(scheme, descendant)
        # Push every ancestor candidate that starts before this descendant.
        while a_index < len(a_sorted):
            candidate = a_sorted[a_index]
            c_start, c_end = _interval_of(scheme, candidate)
            if c_start >= d_start:
                break
            while stack and stack[-1][2] < c_start:
                stack.pop()
            stack.append((candidate, c_start, c_end))
            a_index += 1
        # Pop the ancestors whose interval closed before this descendant.
        while stack and stack[-1][2] < d_start:
            stack.pop()
        # Everything still on the stack contains d_start: all are matches.
        for node, c_start, c_end in stack:
            if c_start < d_start <= c_end:
                pairs.append((node, descendant))
    metrics.incr("join.pairs_emitted", len(pairs))
    return pairs


def _document_order_key(scheme: PrimeScheme) -> Callable[[XmlElement], Tuple]:
    """Document order from prime labels alone.

    A node's path self-labels, read root-to-node, identify its position:
    siblings get ascending primes in preorder, so comparing the path
    sequences lexicographically is document order.  The path is recovered
    from the label by... the label alone does not expose the factor order,
    so the key walks the tree's parent pointers but uses *only* label data
    per node — mirroring how a store would keep a (parent_label, self)
    pair per row.
    """

    def key(node: XmlElement) -> Tuple:
        parts: List[int] = []
        cursor: XmlElement | None = node
        while cursor is not None:
            parts.append(scheme.label_of(cursor).self_label)
            cursor = cursor.parent
        return tuple(reversed(parts))

    return key


@metrics.timed("join.prime_merge")
def prime_merge_join(
    scheme: PrimeScheme,
    ancestors: Sequence[XmlElement],
    descendants: Sequence[XmlElement],
) -> List[JoinPair]:
    """Single-pass ancestor/descendant join over prime labels.

    Both inputs are sorted by document order; a stack holds the open
    ancestor chain.  The containment test is the scheme's modulo, and the
    "interval closed" test is its negation — an ancestor stays open exactly
    while its label divides the current descendant's label.
    """
    if not isinstance(scheme, PrimeScheme):
        raise TypeError("prime_merge_join needs a PrimeScheme")
    order = _document_order_key(scheme)
    a_sorted = sorted(ancestors, key=order)
    d_sorted = sorted(descendants, key=order)
    pairs: List[JoinPair] = []
    stack: List[Tuple[XmlElement, PrimeLabel]] = []
    a_index = 0
    for descendant in d_sorted:
        d_label: PrimeLabel = scheme.label_of(descendant)
        d_key = order(descendant)
        # Push candidates that precede this descendant in document order.
        while a_index < len(a_sorted):
            candidate = a_sorted[a_index]
            if order(candidate) >= d_key:
                break
            c_label = scheme.label_of(candidate)
            while stack and not scheme.is_ancestor_label(stack[-1][1], c_label):
                stack.pop()
            stack.append((candidate, c_label))
            a_index += 1
        # Pop ancestors whose subtree closed (label no longer divides).
        while stack and not scheme.is_ancestor_label(stack[-1][1], d_label):
            stack.pop()
        pairs.extend((node, descendant) for node, _label in stack)
    metrics.incr("join.pairs_emitted", len(pairs))
    return pairs
