"""Cost-based step planning: scan vs merge vs twig vs window.

The engine has four physical operators for a structural step and none of
them dominates:

* **scan** — per-context tag-index scan with one label test per
  (context, candidate) pair; always applicable, O(|ctx| · |cand|).
* **merge** — the stack-based structural join; linear in |ctx| + |cand|
  but only for child/descendant steps without positional predicates, and
  it must sort both sides by the scheme's order key (for the prime scheme
  that means SC-table lookups — the paper's "overhead ... to generate
  global order via the SC table").
* **window** — binary-searched pre/post range windows over the
  :class:`~repro.query.window.WindowIndex`; O(|ctx| · log |cand| + |out|)
  and it never consults the order key, but it needs the window columns
  (absent on hand-assembled stores).
* **twig** — the bottom-up tree-pattern matcher of
  :mod:`repro.query.twig`, a *whole-query* route for pure structural
  chains: one pass over each document instead of one operator per step.

This module prices the four against :class:`~repro.query.store.StoreStatistics`
(tag selectivity, document count, order-key cost) and the live context
size, returning :class:`StepChoice` records that the engine both obeys
and exposes — through ``repro.obs`` counters (``planner.pick.<strategy>``)
and the CLI's ``--explain`` flag.  The unit costs are deliberately crude
(a catalog-grade optimizer is out of scope); the bench exhibit
(``repro bench planner``) is the empirical check that "auto" never loses
badly to the best fixed strategy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.query.ast import Axis, Query, Step
from repro.query.store import StoreStatistics

__all__ = ["StepChoice", "QueryPlan", "Planner"]

# Relative unit costs, calibrated coarsely against the bench exhibit.
_PAIR_TEST = 1.0  # one label comparison (scan's inner loop)
_MERGE_ITEM = 1.5  # one merge-stack push/pop cycle
_WINDOW_PROBE = 2.0  # one bisect probe round (two binary searches)
_WINDOW_EMIT = 0.25  # emitting one row from a window slice
_TWIG_ITEM = 3.0  # one element through the bottom-up semi-join
_PRIME_ORDER_KEY = 8.0  # an SC-table order lookup (modulo over big ints)
_PLAIN_ORDER_KEY = 1.0  # order read off the label itself

_MERGE_AXES = (Axis.CHILD, Axis.DESCENDANT)


@dataclass(frozen=True)
class StepChoice:
    """The planner's decision for one step, with its cost estimates."""

    axis: str
    tag: str
    strategy: str
    context_size: int
    costs: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One ``--explain`` line: the pick plus every priced alternative."""
        priced = ", ".join(
            f"{name}={cost:.0f}" for name, cost in sorted(self.costs.items())
        )
        return f"{self.axis}::{self.tag} -> {self.strategy} ({priced})"


@dataclass
class QueryPlan:
    """The chosen route for one evaluation: per-step picks or a twig pass."""

    strategy: str
    steps: List[StepChoice] = field(default_factory=list)
    twig: Optional[str] = None  # compact pattern text when the twig route ran

    def record(self, choice: StepChoice) -> None:
        """Append one step decision (called by the engine as it executes)."""
        self.steps.append(choice)

    def describe(self) -> str:
        """Multi-line ``--explain`` rendering of the whole plan."""
        lines = [f"strategy: {self.strategy}"]
        if self.twig is not None:
            lines.append(f"twig: {self.twig}")
        for index, choice in enumerate(self.steps):
            lines.append(f"step {index}: {choice.describe()}")
        return "\n".join(lines)


class Planner:
    """Prices the physical operators for each step of a query.

    Stateless apart from the statistics snapshot handed to each call, so
    one planner instance can serve an engine across mutations — the store
    recomputes :class:`StoreStatistics` lazily and the engine passes the
    fresh snapshot in.
    """

    def order_key_cost(self, stats: StoreStatistics) -> float:
        """Unit cost of one document-order lookup under the store's ops."""
        return _PRIME_ORDER_KEY if stats.ops_name == "prime" else _PLAIN_ORDER_KEY

    def step_costs(
        self, stats: StoreStatistics, step: Step, context_size: int
    ) -> Dict[str, float]:
        """Price every applicable operator for ``step``.

        ``context_size`` is the *live* context cardinality — the planner
        runs per step at evaluation time, not at parse time, so selective
        early steps make later windows cheap.
        """
        ctx = max(1, context_size)
        per_doc = max(1.0, stats.candidates_per_doc(step.tag))
        total = max(1, stats.total_candidates(step.tag))
        order_cost = self.order_key_cost(stats)
        costs: Dict[str, float] = {}
        # scan: |ctx| passes over the owning doc's tag bucket, then an
        # order-key sort of matches (bounded by the bucket itself).
        costs["scan"] = ctx * per_doc * _PAIR_TEST + total * order_cost
        if step.axis in _MERGE_AXES and step.position is None:
            # merge: sort both sides by order key, one linear pass.
            costs["merge"] = (ctx + total) * (_MERGE_ITEM + order_cost)
        if stats.has_windows:
            # window: a probe per context row plus the emitted slice; no
            # order keys anywhere (pre ranks are the order).
            width = min(total, ctx * per_doc * 0.25)
            costs["window"] = (
                ctx * (_WINDOW_PROBE * math.log2(per_doc + 2.0)) + width * _WINDOW_EMIT
            )
        return costs

    def plan_step(
        self, stats: StoreStatistics, step: Step, context_size: int
    ) -> StepChoice:
        """Pick the cheapest applicable operator for one step."""
        costs = self.step_costs(stats, step, context_size)
        strategy = min(costs, key=lambda name: costs[name])
        return StepChoice(
            axis=step.axis.value,
            tag=step.tag,
            strategy=strategy,
            context_size=context_size,
            costs=costs,
        )

    # ------------------------------------------------------------------
    # Whole-query twig route
    # ------------------------------------------------------------------

    @staticmethod
    def twig_eligible(query: Query) -> bool:
        """A query the tree-pattern matcher can take whole.

        Pure structural chains only: child/descendant axes, no positional
        or text predicates (the twig matcher has neither concept).
        """
        return all(
            step.axis in _MERGE_AXES
            and step.position is None
            and step.text is None
            for step in query.steps
        )

    def twig_cost(self, stats: StoreStatistics, query: Query) -> float:
        """Price the whole-query twig pass (one semi-join per document)."""
        per_step = sum(
            stats.total_candidates(step.tag) for step in query.steps
        )
        return stats.row_count * _PAIR_TEST + per_step * _TWIG_ITEM * len(query.steps)

    def chain_cost(self, stats: StoreStatistics, query: Query) -> float:
        """Estimated cost of the best per-step route, for twig comparison.

        Context sizes are unknown before execution; assume each step's
        output is its candidate total (pessimistic for selective chains,
        which is fine — it only makes the twig route *less* likely, and
        the twig matcher is the nichest operator of the four).
        """
        total = 0.0
        context = stats.doc_count
        for step in query.steps:
            costs = self.step_costs(stats, step, context)
            total += min(costs.values())
            context = max(1, stats.total_candidates(step.tag))
        return total
