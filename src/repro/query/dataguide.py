"""DataGuide path summaries (Goldman & Widom, VLDB'97).

The paper's related work opens with Lore's DataGuide: a "summarization for
the path information in the XML file" that pilots query processing.  A
(strong) DataGuide contains every distinct root-to-leaf tag path of the
documents exactly once, so a query planner can answer, without touching
data, questions like *does any ``play/act/persona`` path exist?* and *which
tag paths end in ``line``?*

:class:`DataGuide` here summarizes a document collection and plugs into
the query engine as a pre-filter: :meth:`candidate_paths` prunes query
steps whose tag sequences cannot occur, letting the engine skip whole
documents (see :class:`GuidedQueryEngine`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.query.ast import Axis, Query
from repro.query.engine import QueryEngine
from repro.query.store import ElementRow, LabelStore
from repro.query.xpath import parse_query
from repro.xmlkit.tree import XmlElement

__all__ = ["DataGuide", "GuidedQueryEngine"]

TagPath = Tuple[str, ...]


class _GuideNode:
    __slots__ = ("tag", "children", "document_ids")

    def __init__(self, tag: str):
        self.tag = tag
        self.children: Dict[str, "_GuideNode"] = {}
        self.document_ids: Set[int] = set()


class DataGuide:
    """A strong DataGuide over a collection of element trees."""

    def __init__(self, documents: Sequence[XmlElement]):
        self._root = _GuideNode("")  # virtual super-root above all documents
        self._path_count = 0
        for doc_id, document in enumerate(documents):
            self._insert(document, self._root, doc_id)

    def _insert(self, node: XmlElement, guide_parent: _GuideNode, doc_id: int) -> None:
        guide = guide_parent.children.get(node.tag)
        if guide is None:
            guide = _GuideNode(node.tag)
            guide_parent.children[node.tag] = guide
            self._path_count += 1
        guide.document_ids.add(doc_id)
        for child in node.children:
            self._insert(child, guide, doc_id)

    # ------------------------------------------------------------------
    # Summary queries
    # ------------------------------------------------------------------

    @property
    def path_count(self) -> int:
        """Number of distinct tag paths across the collection."""
        return self._path_count

    def paths(self) -> List[TagPath]:
        """Every distinct tag path, lexicographically ordered."""
        collected: List[TagPath] = []

        def walk(guide: _GuideNode, prefix: TagPath) -> None:
            for tag in sorted(guide.children):
                path = prefix + (tag,)
                collected.append(path)
                walk(guide.children[tag], path)

        walk(self._root, ())
        return collected

    def has_path(self, path: Iterable[str]) -> bool:
        """True iff some document contains this exact root-anchored path."""
        guide = self._root
        for tag in path:
            guide = guide.children.get(tag)
            if guide is None:
                return False
        return True

    def documents_with_path(self, path: Iterable[str]) -> Set[int]:
        """Document ids containing this exact root-anchored path."""
        guide = self._root
        for tag in path:
            guide = guide.children.get(tag)
            if guide is None:
                return set()
        return set(guide.document_ids)

    def documents_with_tag(self, tag: str) -> Set[int]:
        """Document ids containing ``tag`` anywhere."""
        matches: Set[int] = set()

        def walk(guide: _GuideNode) -> None:
            for child in guide.children.values():
                if child.tag == tag:
                    matches.update(child.document_ids)
                walk(child)

        walk(self._root)
        return matches

    def documents_with_subsequence(self, tags: Sequence[str]) -> Set[int]:
        """Document ids with a path whose tags contain ``tags`` in order
        (not necessarily contiguously) — the descendant-axis pre-filter."""
        matches: Set[int] = set()

        def walk(guide: _GuideNode, needed: int) -> None:
            for child in guide.children.values():
                remaining = needed + 1 if child.tag == tags[needed] else needed
                if remaining == len(tags):
                    matches.update(child.document_ids)
                    # deeper matches add nothing new for this subtree's docs,
                    # but sibling branches may cover other documents
                    walk(child, needed)
                else:
                    walk(child, remaining)

        if tags:
            walk(self._root, 0)
        return matches


class GuidedQueryEngine(QueryEngine):
    """A query engine that consults a DataGuide before scanning.

    For queries made of child/descendant steps, the guide identifies the
    documents that can possibly match the query's tag subsequence; other
    documents are skipped wholesale.  Axis steps fall back to the plain
    engine (order axes are not path-expressible).
    """

    def __init__(self, store: LabelStore, guide: Optional[DataGuide] = None):
        super().__init__(store)
        if guide is None:
            guide = DataGuide([row.node for row in store.rows if row.depth == 0])
        self.guide = guide
        self.documents_skipped = 0

    def evaluate(
        self, query: Query | str, doc_ids: "list[int] | set[int] | None" = None
    ) -> List[ElementRow]:
        if isinstance(query, str):
            query = parse_query(query)
        structural = all(
            step.axis in (Axis.CHILD, Axis.DESCENDANT) and step.tag != "*"
            for step in query.steps
        )
        if structural and query.steps:
            tags = [step.tag for step in query.steps]
            candidates = self.guide.documents_with_subsequence(tags)
            if doc_ids is not None:
                candidates &= set(doc_ids)
            self.documents_skipped += len(set(self.store.doc_ids) - candidates)
            if not candidates:
                return []
            return super().evaluate(query, doc_ids=candidates)
        return super().evaluate(query, doc_ids=doc_ids)
