"""The element table: labels in relational form, plus per-scheme operators.

Section 5.2 stores one row per element in a DBMS; every query predicate is
a comparison over label columns.  :class:`LabelStore` is that table in
memory.  Each document in the collection is labeled by its own scheme
instance (the Niagara repository is multi-document), and rows carry:

* ``doc_id`` and ``element_id`` — table keys,
* ``tag`` — the element name,
* ``label`` — the scheme's label,
* ``depth`` and ``parent_id`` — standard companion columns of relational
  XML storage (XISS keeps both; parent/child and sibling predicates need
  them for schemes whose labels cannot express parenthood alone).

The scheme-specific comparison logic lives in :class:`StoreOps` objects:

* ``prime`` — ancestor test by modulo (Property 2), parenthood and
  siblinghood by the ``parent-label`` identity, document order by the SC
  table (``SC mod self_label``), computed per access so the paper's "SC
  overhead" is really paid at query time;
* ``interval`` — containment tests, order from the ``order`` column;
* ``prefix`` — a ``check_prefix`` *user-defined function* implemented over
  the label's string form, mirroring how a DBMS UDF marshals values (and
  why Figure 15 shows prefix losing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryEvaluationError
from repro.labeling.base import LabelingScheme
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Bits, Prefix2Scheme
from repro.labeling.prime import PrimeScheme
from repro.order.document import OrderedDocument
from repro.xmlkit.tree import XmlElement

__all__ = ["ElementRow", "StoreOps", "LabelStore", "check_prefix"]


@dataclass
class ElementRow:
    """One row of the element table."""

    doc_id: int
    element_id: int
    tag: str
    label: Any
    depth: int
    parent_id: Optional[int]
    node: XmlElement  # back-reference for result verification only
    text: str = ""  # the value column of relational XML storage


def check_prefix(ancestor_label: Bits, descendant_label: Bits) -> bool:
    """The prefix scheme's "user-defined function".

    Deliberately string-based: a relational UDF receives marshaled values,
    and the paper attributes the prefix scheme's slower response times to
    exactly this call ("the prefix labeling schemes use a user-defined
    function to retrieve data").
    """
    ancestor_text, descendant_text = str(ancestor_label), str(descendant_label)
    return len(ancestor_text) < len(descendant_text) and descendant_text.startswith(
        ancestor_text
    )


class StoreOps:
    """Per-scheme comparison operators over :class:`ElementRow` pairs."""

    name = "abstract"

    def is_ancestor(self, ancestor: ElementRow, descendant: ElementRow) -> bool:
        """Label-only proper-ancestor test between two rows."""
        raise NotImplementedError

    def is_parent(self, parent: ElementRow, child: ElementRow) -> bool:
        """Default: ancestor one level up (uses the ``depth`` column)."""
        return child.depth == parent.depth + 1 and self.is_ancestor(parent, child)

    def same_parent(self, first: ElementRow, second: ElementRow) -> bool:
        """Default: the relational ``parent_id`` column."""
        return (
            first.parent_id is not None
            and first.parent_id == second.parent_id
            and first.element_id != second.element_id
        )

    def order_key(self, row: ElementRow) -> Any:
        """A sort key realizing document order for this scheme's labels."""
        raise NotImplementedError

    def parent_key(self, row: ElementRow) -> Any:
        """A hashable key identifying the row's parent (sibling grouping)."""
        return row.parent_id

    def node_key(self, row: ElementRow) -> Any:
        """A hashable key such that ``parent_key(child) == node_key(parent)``."""
        return row.element_id


class PrimeOps(StoreOps):
    """Prime labels: modulo tests plus SC-table order."""

    name = "prime"

    def __init__(self, scheme: PrimeScheme, ordered: Dict[int, OrderedDocument]):
        self._scheme = scheme
        self._ordered = ordered

    @property
    def ordered_documents(self) -> Dict[int, OrderedDocument]:
        """The per-doc ordered documents backing the SC order lookups."""
        return dict(self._ordered)

    def is_ancestor(self, ancestor: ElementRow, descendant: ElementRow) -> bool:
        return self._scheme.is_ancestor_label(ancestor.label, descendant.label)

    def is_parent(self, parent: ElementRow, child: ElementRow) -> bool:
        # the root's parent-label equals its own label (both 1); identity
        # must be excluded or the root becomes its own parent
        return (
            parent.element_id != child.element_id
            and child.label.parent_value == parent.label.value
        )

    def same_parent(self, first: ElementRow, second: ElementRow) -> bool:
        # a root (parent-label == own label) has no siblings; without the
        # exclusion it would pose as a sibling of the top-level nodes
        return (
            first.element_id != second.element_id
            and first.label.parent_value == second.label.parent_value
            and first.label.parent_value != first.label.value
            and second.label.parent_value != second.label.value
        )

    def order_key(self, row: ElementRow) -> int:
        # Computed from the SC value on every access — this is the paper's
        # "overhead ... to generate global order via the SC table".
        if row.depth == 0:
            return 0
        return self._ordered[row.doc_id].sc_table.order_of(row.label.self_label)

    def parent_key(self, row: ElementRow) -> int:
        return row.label.parent_value

    def node_key(self, row: ElementRow) -> int:
        return row.label.value


class IntervalOps(StoreOps):
    """XISS interval labels: containment tests, order = the order column."""

    name = "interval"

    def is_ancestor(self, ancestor: ElementRow, descendant: ElementRow) -> bool:
        return (
            ancestor.label.order
            < descendant.label.order
            <= ancestor.label.order + ancestor.label.size
        )

    def order_key(self, row: ElementRow) -> int:
        return row.label.order


class PrefixOps(StoreOps):
    """Prefix labels: the ``check_prefix`` UDF; order = lexicographic bits."""

    name = "prefix-2"

    def is_ancestor(self, ancestor: ElementRow, descendant: ElementRow) -> bool:
        return check_prefix(ancestor.label, descendant.label)

    def order_key(self, row: ElementRow) -> str:
        # Prefix-2 sibling codes grow lexicographically, and an ancestor's
        # label is a prefix of (hence sorts before) its descendants', so the
        # label's string form *is* a document-order key.
        return str(row.label)


class LabelStore:
    """The in-memory element table for a document collection."""

    def __init__(self, rows: List[ElementRow], ops: StoreOps):
        self.rows = rows
        self.ops = ops
        self._by_doc_tag: Dict[Tuple[int, str], List[ElementRow]] = {}
        self._by_doc: Dict[int, List[ElementRow]] = {}
        self._doc_ids: List[int] = []
        for row in rows:
            self._by_doc_tag.setdefault((row.doc_id, row.tag), []).append(row)
            if row.doc_id not in self._by_doc:
                self._by_doc[row.doc_id] = []
                self._doc_ids.append(row.doc_id)
            self._by_doc[row.doc_id].append(row)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, documents: Sequence[XmlElement], scheme: str = "prime"
    ) -> "LabelStore":
        """Label ``documents`` with ``scheme`` and load the element table.

        ``scheme`` is one of ``"prime"``, ``"interval"``, ``"prefix-2"`` —
        the three contenders of Figure 15.
        """
        builders: Dict[str, Callable[[], LabelStore]] = {
            "prime": lambda: cls._build_prime(documents),
            "interval": lambda: cls._build_simple(documents, XissIntervalScheme, IntervalOps()),
            "prefix-2": lambda: cls._build_simple(documents, Prefix2Scheme, PrefixOps()),
        }
        try:
            builder = builders[scheme]
        except KeyError:
            raise QueryEvaluationError(
                f"unknown scheme {scheme!r}; choose from {', '.join(sorted(builders))}"
            ) from None
        return builder()

    @classmethod
    def _make_rows(
        cls,
        doc_id: int,
        root: XmlElement,
        label_of: Callable[[XmlElement], Any],
        next_id: int,
    ) -> Tuple[List[ElementRow], int]:
        rows: List[ElementRow] = []
        ids: Dict[int, int] = {}
        depths: Dict[int, int] = {id(root): 0}
        for node in root.iter_preorder():
            element_id = next_id
            next_id += 1
            ids[id(node)] = element_id
            if node.parent is not None:
                depths[id(node)] = depths[id(node.parent)] + 1
            rows.append(
                ElementRow(
                    doc_id=doc_id,
                    element_id=element_id,
                    tag=node.tag,
                    label=label_of(node),
                    depth=depths[id(node)],
                    parent_id=ids[id(node.parent)] if node.parent is not None else None,
                    node=node,
                    text=node.text,
                )
            )
        return rows, next_id

    @classmethod
    def _build_prime(cls, documents: Sequence[XmlElement]) -> "LabelStore":
        rows: List[ElementRow] = []
        ordered: Dict[int, OrderedDocument] = {}
        next_id = 0
        scheme_for_ops: Optional[PrimeScheme] = None
        for doc_id, root in enumerate(documents):
            document = OrderedDocument(root)
            ordered[doc_id] = document
            scheme_for_ops = scheme_for_ops or document.scheme
            doc_rows, next_id = cls._make_rows(
                doc_id, root, document.scheme.label_of, next_id
            )
            rows.extend(doc_rows)
        if scheme_for_ops is None:
            raise QueryEvaluationError("cannot build a store over zero documents")
        return cls(rows, PrimeOps(scheme_for_ops, ordered))

    @classmethod
    def _build_simple(
        cls,
        documents: Sequence[XmlElement],
        scheme_class: Callable[[], LabelingScheme],
        ops: StoreOps,
    ) -> "LabelStore":
        rows: List[ElementRow] = []
        next_id = 0
        for doc_id, root in enumerate(documents):
            scheme = scheme_class()
            scheme.label_tree(root)
            doc_rows, next_id = cls._make_rows(doc_id, root, scheme.label_of, next_id)
            rows.extend(doc_rows)
        if not rows:
            raise QueryEvaluationError("cannot build a store over zero documents")
        return cls(rows, ops)

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    @property
    def doc_ids(self) -> List[int]:
        return list(self._doc_ids)

    def rows_with_tag(self, doc_id: int, tag: str) -> List[ElementRow]:
        """The tag-index scan every step starts from (``*`` = any tag)."""
        if tag == "*":
            return self.rows_in_doc(doc_id)
        return self._by_doc_tag.get((doc_id, tag), [])

    def rows_in_doc(self, doc_id: int) -> List[ElementRow]:
        """Every row of one document (the descendant-or-self expansions)."""
        return self._by_doc.get(doc_id, [])

    def ordered_documents(self) -> Dict[int, "OrderedDocument"]:
        """Per-doc :class:`OrderedDocument` instances, when the store has
        them (prime scheme only); empty for schemes without an SC table.
        Used by the deep auditor behind the CLI's ``--audit`` flag."""
        if isinstance(self.ops, PrimeOps):
            return self.ops.ordered_documents
        return {}

    def __len__(self) -> int:
        return len(self.rows)
