"""The element table: labels in relational form, plus per-scheme operators.

Section 5.2 stores one row per element in a DBMS; every query predicate is
a comparison over label columns.  :class:`LabelStore` is that table in
memory.  Each document in the collection is labeled by its own scheme
instance (the Niagara repository is multi-document), and rows carry:

* ``doc_id`` and ``element_id`` — table keys,
* ``tag`` — the element name,
* ``label`` — the scheme's label,
* ``depth`` and ``parent_id`` — standard companion columns of relational
  XML storage (XISS keeps both; parent/child and sibling predicates need
  them for schemes whose labels cannot express parenthood alone).

The scheme-specific comparison logic lives in :class:`StoreOps` objects:

* ``prime`` — ancestor test by modulo (Property 2), parenthood and
  siblinghood by the ``parent-label`` identity, document order by the SC
  table (``SC mod self_label``), computed per access so the paper's "SC
  overhead" is really paid at query time;
* ``interval`` — containment tests, order from the ``order`` column;
* ``prefix`` — a ``check_prefix`` *user-defined function* implemented over
  the label's string form, mirroring how a DBMS UDF marshals values (and
  why Figure 15 shows prefix losing).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryEvaluationError
from repro.labeling.base import LabelingScheme
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Bits, Prefix2Scheme
from repro.labeling.prime import PrimeScheme
from repro.order.document import OrderedDocument
from repro.query.window import WindowIndex
from repro.xmlkit.tree import XmlElement

__all__ = [
    "ElementRow",
    "FrozenPrimeOps",
    "StoreOps",
    "StoreStatistics",
    "LabelStore",
    "check_prefix",
]


@dataclass
class ElementRow:
    """One row of the element table."""

    doc_id: int
    element_id: int
    tag: str
    label: Any
    depth: int
    parent_id: Optional[int]
    node: XmlElement  # back-reference for result verification only
    text: str = ""  # the value column of relational XML storage


def check_prefix(ancestor_label: Bits, descendant_label: Bits) -> bool:
    """The prefix scheme's "user-defined function".

    Deliberately string-based: a relational UDF receives marshaled values,
    and the paper attributes the prefix scheme's slower response times to
    exactly this call ("the prefix labeling schemes use a user-defined
    function to retrieve data").
    """
    ancestor_text, descendant_text = str(ancestor_label), str(descendant_label)
    return len(ancestor_text) < len(descendant_text) and descendant_text.startswith(
        ancestor_text
    )


class StoreOps:
    """Per-scheme comparison operators over :class:`ElementRow` pairs."""

    name = "abstract"

    def is_ancestor(self, ancestor: ElementRow, descendant: ElementRow) -> bool:
        """Label-only proper-ancestor test between two rows."""
        raise NotImplementedError

    def is_parent(self, parent: ElementRow, child: ElementRow) -> bool:
        """Default: ancestor one level up (uses the ``depth`` column)."""
        return child.depth == parent.depth + 1 and self.is_ancestor(parent, child)

    def same_parent(self, first: ElementRow, second: ElementRow) -> bool:
        """Default: the relational ``parent_id`` column."""
        return (
            first.parent_id is not None
            and first.parent_id == second.parent_id
            and first.element_id != second.element_id
        )

    def order_key(self, row: ElementRow) -> Any:
        """A sort key realizing document order for this scheme's labels."""
        raise NotImplementedError

    def parent_key(self, row: ElementRow) -> Any:
        """A hashable key identifying the row's parent (sibling grouping)."""
        return row.parent_id

    def node_key(self, row: ElementRow) -> Any:
        """A hashable key such that ``parent_key(child) == node_key(parent)``."""
        return row.element_id


class PrimeOps(StoreOps):
    """Prime labels: modulo tests plus SC-table order.

    Each document is labeled by its *own* scheme instance (multi-document
    repository), so comparisons resolve the owning document's scheme per
    call rather than trusting one shared instance whose configuration may
    have diverged after updates.  ``scheme`` remains as the fallback for
    stores loaded from disk, whose order holders carry only an SC table.
    """

    name = "prime"

    def __init__(self, scheme: PrimeScheme, ordered: Dict[int, OrderedDocument]):
        self._scheme = scheme
        self._ordered = ordered

    @property
    def ordered_documents(self) -> Dict[int, OrderedDocument]:
        """The per-doc ordered documents backing the SC order lookups."""
        return dict(self._ordered)

    def scheme_for(self, doc_id: int) -> PrimeScheme:
        """The scheme that labeled ``doc_id``'s rows (fallback: shared)."""
        document = self._ordered.get(doc_id)
        scheme = getattr(document, "scheme", None) if document is not None else None
        return scheme if scheme is not None else self._scheme

    def is_ancestor(self, ancestor: ElementRow, descendant: ElementRow) -> bool:
        # Resolve through the descendant's document: the engine only ever
        # compares rows of the same document, and the descendant row is the
        # one whose leaf/internal encoding the test inspects.
        return self.scheme_for(descendant.doc_id).is_ancestor_label(
            ancestor.label, descendant.label
        )

    def is_parent(self, parent: ElementRow, child: ElementRow) -> bool:
        # the root's parent-label equals its own label (both 1); identity
        # must be excluded or the root becomes its own parent
        return (
            parent.element_id != child.element_id
            and child.label.parent_value == parent.label.value
        )

    def same_parent(self, first: ElementRow, second: ElementRow) -> bool:
        # a root (parent-label == own label) has no siblings; without the
        # exclusion it would pose as a sibling of the top-level nodes
        return (
            first.element_id != second.element_id
            and first.label.parent_value == second.label.parent_value
            and first.label.parent_value != first.label.value
            and second.label.parent_value != second.label.value
        )

    def order_key(self, row: ElementRow) -> int:
        # Computed from the SC value on every access — this is the paper's
        # "overhead ... to generate global order via the SC table".
        if row.depth == 0:
            return 0
        return self._ordered[row.doc_id].sc_table.order_of(row.label.self_label)

    def parent_key(self, row: ElementRow) -> int:
        return row.label.parent_value

    def node_key(self, row: ElementRow) -> int:
        return row.label.value


class FrozenPrimeOps(PrimeOps):
    """Prime operators for a *published* (immutable) store version.

    :meth:`PrimeOps.order_key` reads the live SC table on every access —
    correct for the writer's own store, but a published MVCC view must
    keep answering with the order that held at publish time even while
    the writer rewrites SC records underneath.  The order of every row is
    therefore materialized into a plain dict at publish time; ancestor /
    parent / sibling tests stay pure label arithmetic and are shared with
    the base class.  ``name`` stays ``"prime"`` so the planner's cost
    model treats frozen and live stores identically.
    """

    def __init__(
        self,
        scheme: PrimeScheme,
        ordered: Dict[int, OrderedDocument],
        orders: Dict[int, int],
    ):
        super().__init__(scheme, ordered)
        self._orders = orders

    def order_key(self, row: ElementRow) -> int:
        try:
            return self._orders[row.element_id]
        except KeyError:
            raise QueryEvaluationError(
                f"row {row.element_id} is not part of this published version"
            ) from None


class IntervalOps(StoreOps):
    """XISS interval labels: containment tests, order = the order column."""

    name = "interval"

    def is_ancestor(self, ancestor: ElementRow, descendant: ElementRow) -> bool:
        return (
            ancestor.label.order
            < descendant.label.order
            <= ancestor.label.order + ancestor.label.size
        )

    def order_key(self, row: ElementRow) -> int:
        return row.label.order


class PrefixOps(StoreOps):
    """Prefix labels: the ``check_prefix`` UDF; order = lexicographic bits."""

    name = "prefix-2"

    def is_ancestor(self, ancestor: ElementRow, descendant: ElementRow) -> bool:
        return check_prefix(ancestor.label, descendant.label)

    def order_key(self, row: ElementRow) -> str:
        # Prefix-2 sibling codes grow lexicographically, and an ancestor's
        # label is a prefix of (hence sorts before) its descendants', so the
        # label's string form *is* a document-order key.
        return str(row.label)


@dataclass(frozen=True)
class StoreStatistics:
    """Summary statistics the cost-based planner reads off the store.

    Kept deliberately coarse — counts a DBMS catalog would maintain
    anyway — so the planner's estimates stay cheap to refresh after
    mutations (the store recomputes them lazily on first use).
    """

    doc_count: int
    row_count: int
    tag_totals: Mapping[str, int] = field(default_factory=dict)
    has_windows: bool = False
    ops_name: str = ""  # the StoreOps flavor (order-key cost differs)

    def candidates_per_doc(self, tag: str) -> float:
        """Average per-document candidate count for one tag test."""
        docs = max(1, self.doc_count)
        if tag == "*":
            return self.row_count / docs
        return self.tag_totals.get(tag, 0) / docs

    def total_candidates(self, tag: str) -> int:
        """Collection-wide candidate count for one tag test."""
        if tag == "*":
            return self.row_count
        return self.tag_totals.get(tag, 0)


class LabelStore:
    """The in-memory element table for a document collection."""

    def __init__(self, rows: List[ElementRow], ops: StoreOps):
        self.rows = rows
        self.ops = ops
        self._by_doc_tag: Dict[Tuple[int, str], List[ElementRow]] = {}
        self._by_doc: Dict[int, List[ElementRow]] = {}
        self._doc_ids: List[int] = []
        self._row_by_id: Dict[int, ElementRow] = {}
        self._row_by_node: Dict[int, ElementRow] = {}
        for row in rows:
            self._by_doc_tag.setdefault((row.doc_id, row.tag), []).append(row)
            if row.doc_id not in self._by_doc:
                self._by_doc[row.doc_id] = []
                self._doc_ids.append(row.doc_id)
            self._by_doc[row.doc_id].append(row)
            self._row_by_id[row.element_id] = row
            self._row_by_node[id(row.node)] = row
        self._next_id = max(self._row_by_id, default=-1) + 1
        # The accelerator columns; None when the row stream is not a clean
        # preorder (hand-assembled stores) — the engine then falls back to
        # label comparisons.
        self.windows: Optional[WindowIndex] = WindowIndex.build(rows)
        self._statistics: Optional[StoreStatistics] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, documents: Sequence[XmlElement], scheme: str = "prime"
    ) -> "LabelStore":
        """Label ``documents`` with ``scheme`` and load the element table.

        ``scheme`` is one of ``"prime"``, ``"interval"``, ``"prefix-2"`` —
        the three contenders of Figure 15.
        """
        builders: Dict[str, Callable[[], LabelStore]] = {
            "prime": lambda: cls._build_prime(documents),
            "interval": lambda: cls._build_simple(documents, XissIntervalScheme, IntervalOps()),
            "prefix-2": lambda: cls._build_simple(documents, Prefix2Scheme, PrefixOps()),
        }
        try:
            builder = builders[scheme]
        except KeyError:
            raise QueryEvaluationError(
                f"unknown scheme {scheme!r}; choose from {', '.join(sorted(builders))}"
            ) from None
        return builder()

    @classmethod
    def _make_rows(
        cls,
        doc_id: int,
        root: XmlElement,
        label_of: Callable[[XmlElement], Any],
        next_id: int,
    ) -> Tuple[List[ElementRow], int]:
        rows: List[ElementRow] = []
        ids: Dict[int, int] = {}
        depths: Dict[int, int] = {id(root): 0}
        for node in root.iter_preorder():
            element_id = next_id
            next_id += 1
            ids[id(node)] = element_id
            if node.parent is not None:
                depths[id(node)] = depths[id(node.parent)] + 1
            rows.append(
                ElementRow(
                    doc_id=doc_id,
                    element_id=element_id,
                    tag=node.tag,
                    label=label_of(node),
                    depth=depths[id(node)],
                    parent_id=ids[id(node.parent)] if node.parent is not None else None,
                    node=node,
                    text=node.text,
                )
            )
        return rows, next_id

    @classmethod
    def _build_prime(cls, documents: Sequence[XmlElement]) -> "LabelStore":
        rows: List[ElementRow] = []
        ordered: Dict[int, OrderedDocument] = {}
        next_id = 0
        scheme_for_ops: Optional[PrimeScheme] = None
        for doc_id, root in enumerate(documents):
            document = OrderedDocument(root)
            ordered[doc_id] = document
            scheme_for_ops = scheme_for_ops or document.scheme
            doc_rows, next_id = cls._make_rows(
                doc_id, root, document.scheme.label_of, next_id
            )
            rows.extend(doc_rows)
        if scheme_for_ops is None:
            raise QueryEvaluationError("cannot build a store over zero documents")
        return cls(rows, PrimeOps(scheme_for_ops, ordered))

    @classmethod
    def _build_simple(
        cls,
        documents: Sequence[XmlElement],
        scheme_class: Callable[[], LabelingScheme],
        ops: StoreOps,
    ) -> "LabelStore":
        rows: List[ElementRow] = []
        next_id = 0
        for doc_id, root in enumerate(documents):
            scheme = scheme_class()
            scheme.label_tree(root)
            doc_rows, next_id = cls._make_rows(doc_id, root, scheme.label_of, next_id)
            rows.extend(doc_rows)
        if not rows:
            raise QueryEvaluationError("cannot build a store over zero documents")
        return cls(rows, ops)

    def frozen_copy(self) -> "LabelStore":
        """An independent copy of the table for MVCC publication.

        Rows are copied (the writer's relabel cascades rebind ``label``
        *in place* on its own rows — see :meth:`refresh_labels` — and a
        published version must not see that), label objects are shared
        (they are immutable values), and prime order keys are materialized
        into a :class:`FrozenPrimeOps` so the copy never consults the
        writer's live SC tables.  The copy rebuilds its own indexes and
        window columns from the copied rows, so subsequent writer-side
        ``insert_row`` / ``delete_subtree`` patches cannot reach it.
        """
        rows = [replace(row) for row in self.rows]
        ops: StoreOps = self.ops
        if isinstance(ops, PrimeOps):
            orders = {row.element_id: ops.order_key(row) for row in self.rows}
            ops = FrozenPrimeOps(ops._scheme, ops._ordered, orders)
        return LabelStore(rows, ops)

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    @property
    def doc_ids(self) -> List[int]:
        return list(self._doc_ids)

    def rows_with_tag(self, doc_id: int, tag: str) -> List[ElementRow]:
        """The tag-index scan every step starts from (``*`` = any tag)."""
        if tag == "*":
            return self.rows_in_doc(doc_id)
        return self._by_doc_tag.get((doc_id, tag), [])

    def rows_in_doc(self, doc_id: int) -> List[ElementRow]:
        """Every row of one document (the descendant-or-self expansions)."""
        return self._by_doc.get(doc_id, [])

    def ordered_documents(self) -> Dict[int, "OrderedDocument"]:
        """Per-doc :class:`OrderedDocument` instances, when the store has
        them (prime scheme only); empty for schemes without an SC table.
        Used by the deep auditor behind the CLI's ``--audit`` flag."""
        if isinstance(self.ops, PrimeOps):
            return self.ops.ordered_documents
        return {}

    def row_of(self, node: XmlElement) -> Optional[ElementRow]:
        """The row backing one tree node (None if the node is unknown)."""
        return self._row_by_node.get(id(node))

    def statistics(self) -> StoreStatistics:
        """Planner statistics, recomputed lazily after mutations."""
        if self._statistics is None:
            tag_totals: Dict[str, int] = {}
            for (_, tag), bucket in self._by_doc_tag.items():
                tag_totals[tag] = tag_totals.get(tag, 0) + len(bucket)
            self._statistics = StoreStatistics(
                doc_count=len(self._doc_ids),
                row_count=len(self.rows),
                tag_totals=tag_totals,
                has_windows=self.windows is not None,
                ops_name=self.ops.name,
            )
        return self._statistics

    # ------------------------------------------------------------------
    # Incremental maintenance (called by the live layer — rule R11)
    # ------------------------------------------------------------------

    def insert_row(self, doc_id: int, node: XmlElement, label: Any) -> ElementRow:
        """Register one freshly inserted *leaf* element.

        The node must already be attached to its (indexed) parent; its row
        is appended to the table and the window columns are patched
        incrementally — no rebuild.
        """
        parent = node.parent
        if parent is None:
            raise QueryEvaluationError("cannot insert a detached root into the store")
        parent_row = self._row_by_node.get(id(parent))
        if parent_row is None:
            raise QueryEvaluationError("insert parent is not part of this store")
        element_id = self._next_id
        self._next_id += 1
        row = ElementRow(
            doc_id=doc_id,
            element_id=element_id,
            tag=node.tag,
            label=label,
            depth=parent_row.depth + 1,
            parent_id=parent_row.element_id,
            node=node,
            text=node.text,
        )
        self.rows.append(row)
        self._by_doc_tag.setdefault((doc_id, row.tag), []).append(row)
        self._by_doc.setdefault(doc_id, []).append(row)
        if doc_id not in self._doc_ids:
            self._doc_ids.append(doc_id)
        self._row_by_id[element_id] = row
        self._row_by_node[id(node)] = row
        if self.windows is not None:
            index = node.child_index
            previous = parent.children[index - 1] if index > 0 else None
            previous_row = (
                self._row_by_node.get(id(previous)) if previous is not None else None
            )
            self.windows.apply_insert(row, parent_row, previous_row)
        self._statistics = None
        return row

    def delete_subtree(self, node: XmlElement) -> List[ElementRow]:
        """Drop ``node`` and its whole subtree from the table and indexes.

        Works on the already-detached subtree (detached trees stay
        iterable); returns the removed rows in document order.
        """
        row = self._row_by_node.get(id(node))
        if row is None:
            raise QueryEvaluationError("deleted node is not part of this store")
        if self.windows is not None:
            removed = [entry.row for entry in self.windows.apply_delete(row)]
        else:
            removed = []
            for descendant in node.iter_preorder():
                gone = self._row_by_node.get(id(descendant))
                if gone is not None:
                    removed.append(gone)
        removed_ids = {gone.element_id for gone in removed}
        for gone in removed:
            del self._row_by_id[gone.element_id]
            del self._row_by_node[id(gone.node)]
        self.rows = [r for r in self.rows if r.element_id not in removed_ids]
        doc_id = row.doc_id
        self._by_doc[doc_id] = [
            r for r in self._by_doc.get(doc_id, []) if r.element_id not in removed_ids
        ]
        for tag in {gone.tag for gone in removed}:
            key = (doc_id, tag)
            bucket = [
                r for r in self._by_doc_tag.get(key, ())
                if r.element_id not in removed_ids
            ]
            if bucket:
                self._by_doc_tag[key] = bucket
            else:
                self._by_doc_tag.pop(key, None)
        self._statistics = None
        return removed

    def refresh_labels(
        self, nodes: Sequence[XmlElement], label_of: Callable[[XmlElement], Any]
    ) -> int:
        """Re-read the labels of ``nodes`` after a relabeling cascade.

        Returns how many rows were refreshed; nodes the store does not
        know (e.g. already deleted) are skipped.
        """
        refreshed = 0
        for node in nodes:
            target = self._row_by_node.get(id(node))
            if target is not None:
                # The row's label *column* mirrors the scheme's label; the
                # scheme already relabeled the node through its own API.
                target.label = label_of(node)  # repro: ignore[R1] -- table column refresh, not a tree relabel
                refreshed += 1
        return refreshed

    def __len__(self) -> int:
        return len(self.rows)
