"""Illustrative SQL translation of queries, per labeling scheme.

Section 5.2: "All these queries are first transformed into SQL using an
approach similar to [Tatarinov et al.]".  The in-memory engine is the thing
we measure; this module renders the equivalent SQL text so examples and
docs can show exactly which native operators (``mod``, ``<``, ``>``) or
user-defined functions (``check_prefix``) each scheme would push into a
DBMS.
"""

from __future__ import annotations

from typing import List

from repro.errors import QueryEvaluationError
from repro.query.ast import Axis, Query
from repro.query.xpath import parse_query

__all__ = ["to_sql"]

_JOIN_TEMPLATES = {
    "prime": {
        Axis.CHILD: "{child}.label / {child}.self_label = {parent}.label",
        Axis.DESCENDANT: "MOD({desc}.label, {anc}.label) = 0 AND {desc}.label <> {anc}.label",
        Axis.FOLLOWING: "sc_order({next}.self_label) > sc_order({prev}.self_label) "
        "AND MOD({next}.label, {prev}.label) <> 0",
        Axis.PRECEDING: "sc_order({next}.self_label) < sc_order({prev}.self_label) "
        "AND MOD({prev}.label, {next}.label) <> 0",
        Axis.FOLLOWING_SIBLING: "{next}.label / {next}.self_label = {prev}.label / {prev}.self_label "
        "AND sc_order({next}.self_label) > sc_order({prev}.self_label)",
        Axis.PRECEDING_SIBLING: "{next}.label / {next}.self_label = {prev}.label / {prev}.self_label "
        "AND sc_order({next}.self_label) < sc_order({prev}.self_label)",
    },
    "interval": {
        Axis.CHILD: "{child}.ord > {parent}.ord AND {child}.ord <= {parent}.ord + {parent}.size "
        "AND {child}.depth = {parent}.depth + 1",
        Axis.DESCENDANT: "{desc}.ord > {anc}.ord AND {desc}.ord <= {anc}.ord + {anc}.size",
        Axis.FOLLOWING: "{next}.ord > {prev}.ord + {prev}.size",
        Axis.PRECEDING: "{next}.ord + {next}.size < {prev}.ord",
        Axis.FOLLOWING_SIBLING: "{next}.parent_id = {prev}.parent_id AND {next}.ord > {prev}.ord",
        Axis.PRECEDING_SIBLING: "{next}.parent_id = {prev}.parent_id AND {next}.ord < {prev}.ord",
    },
    "prefix-2": {
        Axis.CHILD: "check_prefix({parent}.label, {child}.label) "
        "AND {child}.depth = {parent}.depth + 1",
        Axis.DESCENDANT: "check_prefix({anc}.label, {desc}.label)",
        Axis.FOLLOWING: "{next}.label > {prev}.label AND NOT check_prefix({prev}.label, {next}.label)",
        Axis.PRECEDING: "{next}.label < {prev}.label AND NOT check_prefix({next}.label, {prev}.label)",
        Axis.FOLLOWING_SIBLING: "{next}.parent_id = {prev}.parent_id AND {next}.label > {prev}.label",
        Axis.PRECEDING_SIBLING: "{next}.parent_id = {prev}.parent_id AND {next}.label < {prev}.label",
    },
}


def _fill(template: str, prev_alias: str, next_alias: str) -> str:
    return template.format(
        parent=prev_alias,
        child=next_alias,
        anc=prev_alias,
        desc=next_alias,
        prev=prev_alias,
        next=next_alias,
    )


def to_sql(query: Query | str, scheme: str = "prime", table: str = "elements") -> str:
    """Render the SQL a DBMS-backed evaluation of ``query`` would run."""
    if isinstance(query, str):
        query = parse_query(query)
    try:
        templates = _JOIN_TEMPLATES[scheme]
    except KeyError:
        raise QueryEvaluationError(
            f"unknown scheme {scheme!r}; choose from {', '.join(sorted(_JOIN_TEMPLATES))}"
        ) from None
    aliases = [f"e{i}" for i in range(len(query.steps))]
    conditions: List[str] = [f"{aliases[0]}.tag = '{query.steps[0].tag}'"]
    for index, step in enumerate(query.steps[1:], start=1):
        conditions.append(f"{aliases[index]}.tag = '{step.tag}'")
        conditions.append(_fill(templates[step.axis], aliases[index - 1], aliases[index]))
    for index, step in enumerate(query.steps):
        if step.position is not None:
            conditions.append(f"/* position() = {step.position} over {aliases[index]} */")
        if step.text is not None:
            escaped = step.text.replace("'", "''")
            conditions.append(f"{aliases[index]}.value = '{escaped}'")
    from_clause = ", ".join(f"{table} {alias}" for alias in aliases)
    where_clause = "\n  AND ".join(conditions)
    return (
        f"SELECT {aliases[-1]}.element_id\n"
        f"FROM {from_clause}\n"
        f"WHERE {where_clause};"
    )
