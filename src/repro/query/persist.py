"""On-disk persistence for label stores.

The paper stores labels in DBMS tables precisely so they outlive the
documents; this module provides the equivalent for the in-memory
:class:`~repro.query.store.LabelStore`: a compact binary file holding one
record per element (document id, tag, depth, parent id, encoded label),
written with the fixed-width codec of :mod:`repro.labeling.codec`.

File layout (all integers big-endian)::

    magic   4 bytes  b"RPLS"
    version 1 byte
    scheme  1 byte length + UTF-8 name        ("prime" | "interval" | "prefix-2")
    kind    1 byte length + UTF-8 codec kind
    widths  2 bytes field_count, 2 bytes field_bytes   (versions 1-2 only)
    tags    4 bytes count, then per tag: 2 bytes length + UTF-8
    rows    4 bytes count, then per row:
              4B doc_id  4B element_id  4B tag_index  2B depth
              4B parent_id (0xFFFFFFFF = none)  encoded label
              2B text length + UTF-8 text (the value column)
    footer  4 bytes CRC32 of everything above      (version >= 2 only)

Version 2 adds the CRC32 footer so a silently truncated or bit-flipped
file is rejected outright instead of being decoded into plausible-looking
garbage; version-1 files (no footer) are still readable.

Version 3 replaces the fixed-width label column with the self-delimiting
varint records of :class:`repro.labeling.codec.VarintCodec` (and drops the
now-meaningless ``widths`` header field): every label pays for its own
bits instead of the document's widest, which is what shrinks prime-label
columns whose sizes span orders of magnitude.  Readers dispatch on the
version byte; versions 1 and 2 stay loadable, writers default to 3.

Loading rebuilds a fully queryable store.  The ``node`` back-references of
a loaded store are *placeholder* elements (tag only) — queries never touch
them; they exist so result rows still render a tag.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List

from repro.errors import LabelingError, QueryEvaluationError
from repro.labeling.codec import FixedWidthCodec, VarintCodec, label_to_ints
from repro.order.sc_table import SCTable
from repro.query.store import (
    ElementRow,
    IntervalOps,
    LabelStore,
    PrefixOps,
    PrimeOps,
    StoreOps,
)
from repro.xmlkit.tree import XmlElement

__all__ = ["save_store", "load_store"]

_MAGIC = b"RPLS"
_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
_NO_PARENT = 0xFFFFFFFF

_KIND_BY_SCHEME = {"prime": "prime", "interval": "order-size", "prefix-2": "bits"}


def _write_string(out: List[bytes], text: str, width: str) -> None:
    data = text.encode("utf-8")
    out.append(struct.pack(width, len(data)))
    out.append(data)


class _Reader:
    def __init__(self, blob: bytes):
        self.blob = blob
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.blob):
            raise QueryEvaluationError("truncated label store file")
        chunk = self.blob[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def unpack(self, fmt: str):
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def string(self, width: str) -> str:
        (length,) = self.unpack(width)
        return self.take(length).decode("utf-8")


def _scheme_name(ops: StoreOps) -> str:
    if isinstance(ops, PrimeOps):
        return "prime"
    if isinstance(ops, IntervalOps):
        return "interval"
    if isinstance(ops, PrefixOps):
        return "prefix-2"
    raise QueryEvaluationError(f"cannot persist ops of type {type(ops).__name__}")


def save_store(store: LabelStore, path: str | Path, version: int = _VERSION) -> int:
    """Write ``store`` to ``path``; returns the number of bytes written.

    ``version`` defaults to the current format (3: varint labels,
    CRC-protected).  Passing ``2`` writes fixed-width labels with the CRC
    footer and ``1`` the legacy footer-less layout — both kept for
    compatibility tests and for producing files older readers accept.
    """
    if version not in _SUPPORTED_VERSIONS:
        raise QueryEvaluationError(f"cannot write label store version {version}")
    scheme = _scheme_name(store.ops)
    kind = _KIND_BY_SCHEME[scheme]
    codec: FixedWidthCodec | VarintCodec
    if version >= 3:
        codec = VarintCodec(kind)
    else:
        field_count = max(
            (len(label_to_ints(row.label)) for row in store.rows), default=1
        )
        field_count = max(field_count, 1)
        widest = max(
            (part for row in store.rows for part in label_to_ints(row.label)),
            default=0,
        )
        codec = FixedWidthCodec(
            kind, field_count, max((widest.bit_length() + 7) // 8, 1)
        )

    tags: List[str] = []
    tag_index: Dict[str, int] = {}
    for row in store.rows:
        if row.tag not in tag_index:
            tag_index[row.tag] = len(tags)
            tags.append(row.tag)

    out: List[bytes] = [_MAGIC, struct.pack(">B", version)]
    _write_string(out, scheme, ">B")
    _write_string(out, kind, ">B")
    if version < 3:
        out.append(struct.pack(">HH", codec.field_count, codec.field_bytes))
    out.append(struct.pack(">I", len(tags)))
    for tag in tags:
        _write_string(out, tag, ">H")
    out.append(struct.pack(">I", len(store.rows)))
    for row in store.rows:
        parent = _NO_PARENT if row.parent_id is None else row.parent_id
        out.append(
            struct.pack(
                ">IIIHI", row.doc_id, row.element_id, tag_index[row.tag], row.depth, parent
            )
        )
        out.append(codec.encode(row.label))
        _write_string(out, row.text, ">H")
    blob = b"".join(out)
    if version >= 2:
        blob += struct.pack(">I", zlib.crc32(blob))
    Path(path).write_bytes(blob)
    return len(blob)


def _rebuild_ops(scheme: str, rows: List[ElementRow]) -> StoreOps:
    if scheme == "interval":
        return IntervalOps()
    if scheme == "prefix-2":
        return PrefixOps()
    # prime: rebuild the per-document SC tables from the stored labels —
    # document order is recoverable because labels were issued in document
    # order (ascending primes per document).
    from repro.labeling.prime import PrimeScheme

    ordered: Dict[int, Any] = {}
    by_doc: Dict[int, List[ElementRow]] = {}
    for row in rows:
        by_doc.setdefault(row.doc_id, []).append(row)
    for doc_id, doc_rows in by_doc.items():
        table = SCTable(group_size=5)
        ranked = sorted(
            (row for row in doc_rows if row.depth > 0),
            key=lambda row: row.label.self_label,
        )
        for order, row in enumerate(ranked, start=1):
            table.register(row.label.self_label, order)
        holder = _LoadedOrderHolder(table)
        ordered[doc_id] = holder
    return PrimeOps(PrimeScheme(reserved_primes=0, power2_leaves=False), ordered)


class _LoadedOrderHolder:
    """Duck-typed stand-in for OrderedDocument: only ``sc_table`` is used."""

    def __init__(self, sc_table: SCTable):
        self.sc_table = sc_table


def load_store(path: str | Path) -> LabelStore:
    """Load a store written by :func:`save_store`.

    Raises :class:`repro.errors.QueryEvaluationError` on anything that is
    not a well-formed store file (wrong magic, truncation, corrupted
    indices or labels).
    """
    try:
        return _load_store_checked(path)
    except (
        ValueError,
        IndexError,
        UnicodeDecodeError,
        struct.error,
        LabelingError,
    ) as error:
        raise QueryEvaluationError(f"corrupt label store {path}: {error}") from error


def _load_store_checked(path: str | Path) -> LabelStore:
    blob = Path(path).read_bytes()
    if len(blob) >= 5 and blob[:4] == _MAGIC and blob[4] >= 2:
        # version >= 2: the last 4 bytes are a CRC32 over everything else;
        # verify before decoding so truncation or bit rot is caught whole-
        # file rather than wherever the parser happens to trip.
        if len(blob) < 9:
            raise QueryEvaluationError(f"truncated label store {path}")
        (stored_crc,) = struct.unpack(">I", blob[-4:])
        blob = blob[:-4]
        if zlib.crc32(blob) != stored_crc:
            raise QueryEvaluationError(
                f"label store {path} failed its CRC32 check (truncated or corrupt)"
            )
    reader = _Reader(blob)
    if reader.take(4) != _MAGIC:
        raise QueryEvaluationError(f"{path} is not a label store file")
    (version,) = reader.unpack(">B")
    if version not in _SUPPORTED_VERSIONS:
        raise QueryEvaluationError(f"unsupported label store version {version}")
    scheme = reader.string(">B")
    kind = reader.string(">B")
    if scheme not in _KIND_BY_SCHEME or _KIND_BY_SCHEME[scheme] != kind:
        raise QueryEvaluationError(
            f"corrupt label store: scheme {scheme!r} / kind {kind!r}"
        )
    codec: FixedWidthCodec | VarintCodec
    if version >= 3:
        codec = VarintCodec(kind)
    else:
        field_count, field_bytes = reader.unpack(">HH")
        codec = FixedWidthCodec(kind, field_count, field_bytes)
    (tag_count,) = reader.unpack(">I")
    tags = [reader.string(">H") for _ in range(tag_count)]
    (row_count,) = reader.unpack(">I")
    rows: List[ElementRow] = []
    for _ in range(row_count):
        doc_id, element_id, tag_idx, depth, parent = reader.unpack(">IIIHI")
        if version >= 3:
            label, reader.offset = codec.decode(reader.blob, reader.offset)
        else:
            label = codec.decode(reader.take(codec.record_bytes))
        text = reader.string(">H")
        rows.append(
            ElementRow(
                doc_id=doc_id,
                element_id=element_id,
                tag=tags[tag_idx],
                label=label,
                depth=depth,
                parent_id=None if parent == _NO_PARENT else parent,
                node=XmlElement(tags[tag_idx]),
                text=text,
            )
        )
    return LabelStore(rows, _rebuild_ops(scheme, rows))
