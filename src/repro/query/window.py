"""Pre/post window indexes: the XPath-Accelerator columns over the store.

The paper's Section 5.2 engine answers every structural step by comparing
*labels* — a per-(context, candidate) test that costs O(|ctx| · |cand|)
regardless of how few pairs actually match.  The XPath-Accelerator design
(Grust; see ROADMAP "Query accelerator") observes that four plain integer
columns turn every axis into a *contiguous range* of the preorder rank:

* ``pre``   — preorder rank within the document (0 = the root),
* ``post``  — postorder rank within the document,
* ``level`` — depth (the store's ``depth`` column, mirrored here so the
  window machinery is self-contained),
* ``size``  — subtree size including the node itself.

Because a subtree is contiguous in preorder, the descendants of a context
node ``c`` are exactly the nodes with ``pre(c) < pre <= pre(c)+size(c)-1``;
following nodes start at ``pre(c)+size(c)``; children are the descendants
one level down.  ``post`` is fully determined by the other three columns —
``post = pre + size - 1 - level`` (descendants + preceding precede a node
in postorder; ancestors + preceding precede it in preorder) — and the
maintenance code leans on that identity: it shifts ``pre``/``post``
together and lets the randomized soak in ``tests/test_window_maintenance``
prove the result byte-identical to a from-scratch rebuild.

:class:`WindowIndex` keeps, per document, the entry list in preorder
(``by_pre``) plus per-tag entry lists sorted by ``pre`` so an axis window
becomes two binary searches (:mod:`bisect`) into the tag's list.  The
index is *incrementally maintained*: order-sensitive insertion shifts the
``pre``/``post`` of the nodes after the insertion point (exactly the nodes
whose SC records the paper's update algorithm rewrites) and bumps ancestor
sizes; subtree deletion removes a contiguous ``by_pre`` slice.  Mutation
entry points live here but may only be *called* from the store/live layer
— rule R11 in :mod:`repro.analysis.rules` enforces that containment.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a store cycle
    from repro.query.store import ElementRow

__all__ = ["WindowEntry", "DocWindow", "WindowIndex"]


class WindowEntry:
    """One node's window columns plus a back-reference to its store row."""

    __slots__ = ("row", "pre", "post", "level", "size")

    def __init__(self, row: "ElementRow", pre: int, post: int, level: int, size: int):
        self.row = row
        self.pre = pre
        self.post = post
        self.level = level
        self.size = size

    @property
    def end(self) -> int:
        """Preorder rank of the last node in this entry's subtree."""
        return self.pre + self.size - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowEntry(id={self.row.element_id}, pre={self.pre}, "
            f"post={self.post}, level={self.level}, size={self.size})"
        )


class DocWindow:
    """One document's window columns and its per-tag pre-sorted lists."""

    __slots__ = ("by_pre", "by_id", "by_tag")

    def __init__(self) -> None:
        self.by_pre: List[WindowEntry] = []
        self.by_id: Dict[int, WindowEntry] = {}
        self.by_tag: Dict[str, List[WindowEntry]] = {}

    def entry(self, element_id: int) -> WindowEntry:
        """The window entry of one store row (KeyError if unknown)."""
        return self.by_id[element_id]

    def tag_entries(self, tag: str) -> List[WindowEntry]:
        """Entries with ``tag``, sorted by ``pre`` (``*`` = every entry)."""
        if tag == "*":
            return self.by_pre
        return self.by_tag.get(tag, [])

    def range_in(
        self, entries: List[WindowEntry], first_pre: int, last_pre: int
    ) -> List[WindowEntry]:
        """Entries whose ``pre`` lies in ``[first_pre, last_pre]``.

        Two binary searches — this is the "window" of the accelerator: the
        caller never touches entries outside the range.
        """
        lo = bisect_left(entries, first_pre, key=_pre_of)
        hi = bisect_right(entries, last_pre, key=_pre_of)
        return entries[lo:hi]

    def __len__(self) -> int:
        return len(self.by_pre)


def _pre_of(entry: WindowEntry) -> int:
    return entry.pre


class WindowIndex:
    """Incrementally-maintained pre/post/level/size columns per document.

    Construct with :meth:`build` (returns ``None`` when the row stream is
    not a clean per-document preorder — the engine then falls back to the
    label-comparison strategies); mutate through :meth:`apply_insert` /
    :meth:`apply_delete` *from the store/live layer only* (rule R11).
    """

    def __init__(self) -> None:
        self._docs: Dict[int, DocWindow] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, rows: Sequence["ElementRow"]) -> Optional["WindowIndex"]:
        """Compute the four columns from a per-document preorder row stream.

        Rows must arrive grouped by document in document order — exactly
        what :meth:`LabelStore._make_rows` and the store file format emit.
        ``level`` comes from the ``depth`` column and ``size`` from a
        depth-stack sweep; ``post`` from the pre/size/level identity.
        Returns ``None`` when any document's rows are not a consistent
        preorder (wrong depth jumps or parent links), so a hand-assembled
        store degrades to the scan path instead of answering wrongly.
        """
        index = cls()
        per_doc: Dict[int, List["ElementRow"]] = {}
        for row in rows:
            per_doc.setdefault(row.doc_id, []).append(row)
        for doc_id, doc_rows in per_doc.items():
            doc = index._docs[doc_id] = DocWindow()
            stack: List[WindowEntry] = []
            for pre, row in enumerate(doc_rows):
                while stack and stack[-1].level >= row.depth:
                    top = stack.pop()
                    top.size = pre - top.pre
                if row.depth > 0:
                    if not stack or stack[-1].level != row.depth - 1:
                        return None  # depth jump: not a preorder stream
                    if (
                        row.parent_id is not None
                        and stack[-1].row.element_id != row.parent_id
                    ):
                        return None  # parent link disagrees with nesting
                elif stack or pre != 0:
                    return None  # a second root mid-document
                entry = WindowEntry(row, pre=pre, post=0, level=row.depth, size=0)
                doc.by_pre.append(entry)
                doc.by_id[row.element_id] = entry
                doc.by_tag.setdefault(row.tag, []).append(entry)
                stack.append(entry)
            total = len(doc_rows)
            while stack:
                top = stack.pop()
                top.size = total - top.pre
            for entry in doc.by_pre:
                entry.post = entry.pre + entry.size - 1 - entry.level
        return index

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    def doc(self, doc_id: int) -> Optional[DocWindow]:
        """The window structures of one document (None if unknown)."""
        return self._docs.get(doc_id)

    def entry_of(self, row: "ElementRow") -> WindowEntry:
        """The window entry of ``row`` (KeyError if it was never indexed)."""
        return self._docs[row.doc_id].by_id[row.element_id]

    def columns(self) -> Dict[int, Dict[int, Tuple[int, int, int, int]]]:
        """``{doc_id: {element_id: (pre, post, level, size)}}`` snapshot.

        The byte-identity soak compares this (mapped through node
        identities, since element ids differ across builds) against a
        freshly built index.
        """
        return {
            doc_id: {
                element_id: (entry.pre, entry.post, entry.level, entry.size)
                for element_id, entry in doc.by_id.items()
            }
            for doc_id, doc in self._docs.items()
        }

    # ------------------------------------------------------------------
    # Incremental maintenance (store/live layer only — rule R11)
    # ------------------------------------------------------------------

    def apply_insert(
        self,
        row: "ElementRow",
        parent_row: "ElementRow",
        previous_sibling_row: Optional["ElementRow"],
    ) -> WindowEntry:
        """Index one freshly inserted leaf row.

        ``pre`` of the new node is its parent's ``pre`` plus one when it
        became the first child, else its previous sibling's subtree end
        plus one.  Everything after the insertion point shifts ``pre`` and
        ``post`` by one (the same node set whose SC records the paper's
        Section 4.2 update rewrites); ancestors gain one unit of ``size``
        and ``post``.
        """
        doc = self._docs[row.doc_id]
        parent = doc.by_id[parent_row.element_id]
        if previous_sibling_row is None:
            pre = parent.pre + 1
        else:
            previous = doc.by_id[previous_sibling_row.element_id]
            pre = previous.pre + previous.size
        level = parent.level + 1
        entry = WindowEntry(row, pre=pre, post=pre - level, level=level, size=1)
        # Tail shift first: every entry at or after the insertion point
        # moves one preorder (and postorder) rank to the right.
        shifted = 0
        for moved in doc.by_pre[pre:]:
            moved.pre += 1
            moved.post += 1
            shifted += 1
        # Ancestors close one position later in postorder and grow by one.
        ancestor = parent
        while ancestor is not None:
            ancestor.size += 1
            ancestor.post += 1
            parent_id = ancestor.row.parent_id
            ancestor = doc.by_id.get(parent_id) if parent_id is not None else None
        doc.by_pre.insert(pre, entry)
        doc.by_id[row.element_id] = entry
        bucket = doc.by_tag.setdefault(row.tag, [])
        bucket.insert(bisect_left(bucket, pre, key=_pre_of), entry)
        metrics.incr("window.inserts")
        metrics.incr("window.entries_shifted", shifted)
        return entry

    def apply_delete(self, row: "ElementRow") -> List[WindowEntry]:
        """Drop ``row``'s whole subtree from the index; returns the entries.

        The subtree is one contiguous ``by_pre`` slice; the tail shifts
        left by the subtree size and ancestors shrink by it.  The caller
        (the store) drops the returned entries' rows from its own indexes.
        """
        doc = self._docs[row.doc_id]
        entry = doc.by_id[row.element_id]
        pre, size = entry.pre, entry.size
        removed = doc.by_pre[pre : pre + size]
        # De-index the removed entries while their pre values still match
        # the tag lists' sort order.
        for gone in removed:
            bucket = doc.by_tag[gone.row.tag]
            bucket.pop(bisect_left(bucket, gone.pre, key=_pre_of))
            del doc.by_id[gone.row.element_id]
        del doc.by_pre[pre : pre + size]
        shifted = 0
        for moved in doc.by_pre[pre:]:
            moved.pre -= size
            moved.post -= size
            shifted += 1
        parent_id = row.parent_id
        ancestor = doc.by_id.get(parent_id) if parent_id is not None else None
        while ancestor is not None:
            ancestor.size -= size
            ancestor.post -= size
            parent_id = ancestor.row.parent_id
            ancestor = doc.by_id.get(parent_id) if parent_id is not None else None
        metrics.incr("window.deletes")
        metrics.incr("window.entries_shifted", shifted)
        return removed
