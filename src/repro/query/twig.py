"""Twig (tree-pattern) matching over labeled element sets.

"Path and tree pattern matching algorithms play crucial roles in the
processing of XML queries" (Section 1).  Beyond binary structural joins,
XML queries are *twigs*: small trees of tag tests connected by child or
descendant edges, e.g.::

    play
     //act
        /scene          ->  TwigPattern.parse("play//act[/scene[//line]]/title")?
           //line

This module provides:

* :class:`TwigPattern` — a pattern tree with ``/`` (child) and ``//``
  (descendant) edges, built programmatically or parsed from a compact
  string form (``a/b`` child, ``a//b`` descendant, ``[...]`` branches);
* :func:`match_twig` — evaluation over any labeling scheme through its
  label-only tests: a bottom-up set-join that returns all bindings of the
  pattern's *output node* (or full bindings with ``bindings=True``).

The matcher is scheme-agnostic (only ``is_ancestor_label`` + the depth
column are consulted), so it doubles as yet another cross-scheme
consistency oracle in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QuerySyntaxError
from repro.labeling.base import LabelingScheme
from repro.xmlkit.tree import XmlElement

__all__ = ["TwigNode", "TwigPattern", "match_twig"]


@dataclass(eq=False)  # identity semantics: pattern nodes are binding keys
class TwigNode:
    """One node of a twig pattern.

    ``edge`` describes how this node relates to its pattern parent:
    ``"child"`` or ``"descendant"`` (ignored on the root).
    """

    tag: str
    edge: str = "descendant"
    children: List["TwigNode"] = field(default_factory=list)

    def add(self, child: "TwigNode") -> "TwigNode":
        """Attach ``child`` under this pattern node; returns the child."""
        self.children.append(child)
        return child

    def iter_nodes(self) -> List["TwigNode"]:
        """This node and all pattern descendants, preorder."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.iter_nodes())
        return nodes

    def __str__(self) -> str:
        rendered = self.tag
        if self.children:
            parts = []
            for child in self.children:
                sep = "/" if child.edge == "child" else "//"
                parts.append(f"{sep}{child}")
            if len(parts) == 1:
                rendered += parts[0]
            else:
                rendered += "".join(f"[{part}]" for part in parts)
        return rendered


@dataclass
class TwigPattern:
    """A twig: a pattern tree plus the node whose bindings are returned."""

    root: TwigNode
    output: Optional[TwigNode] = None

    def __post_init__(self) -> None:
        if self.output is None:
            # default output: the last node in a preorder walk (the "end"
            # of the main path, XPath-style)
            self.output = self.root.iter_nodes()[-1]

    @classmethod
    def parse(cls, text: str) -> "TwigPattern":
        """Parse the compact twig syntax.

        Grammar::

            twig    := name branch*
            branch  := sep twig | '[' sep twig ']'
            sep     := '/' | '//'

        ``a//b[/c]/d`` is ``a`` with descendant ``b``, which has child
        branches ``c`` (in brackets) and ``d`` (main path; the output node).
        """
        parser = _TwigParser(text)
        root = parser.parse_node(edge="descendant")
        parser.expect_end()
        return cls(root=root, output=parser.main_path_end or root)


class _TwigParser:
    def __init__(self, text: str):
        self.text = text.strip()
        self.pos = 0
        self.main_path_end: Optional[TwigNode] = None

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(f"{message} at offset {self.pos} in {self.text!r}")

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def read_name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_.-:*"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a tag name")
        return self.text[start : self.pos]

    def read_separator(self) -> str:
        if self.text.startswith("//", self.pos):
            self.pos += 2
            return "descendant"
        if self.peek() == "/":
            self.pos += 1
            return "child"
        raise self.error("expected '/' or '//'")

    def parse_node(self, edge: str) -> TwigNode:
        node = TwigNode(tag=self.read_name(), edge=edge)
        self.main_path_end = node
        while True:
            if self.peek() == "[":
                self.pos += 1
                saved_end = self.main_path_end
                child_edge = self.read_separator()
                node.add(self.parse_node(child_edge))
                self.main_path_end = saved_end
                if self.peek() != "]":
                    raise self.error("expected ']'")
                self.pos += 1
            elif self.peek() == "/":
                child_edge = self.read_separator()
                node.add(self.parse_node(child_edge))
                return node
            else:
                return node

    def expect_end(self) -> None:
        if self.pos != len(self.text):
            raise self.error("trailing characters")


def _satisfies_edge(
    scheme: LabelingScheme,
    depths: Dict[int, int],
    parent: XmlElement,
    child: XmlElement,
    edge: str,
) -> bool:
    if not scheme.is_ancestor_label(scheme.label_of(parent), scheme.label_of(child)):
        return False
    if edge == "child":
        return depths[id(child)] == depths[id(parent)] + 1
    return True


def match_twig(
    scheme: LabelingScheme,
    nodes: Sequence[XmlElement],
    pattern: TwigPattern,
    bindings: bool = False,
):
    """Match ``pattern`` against ``nodes`` using only label comparisons.

    ``nodes`` is the candidate pool (typically every element of a
    document).  Returns the distinct matches of the pattern's output node
    in input order — or, with ``bindings=True``, a list of dicts mapping
    each pattern node to its bound element for every full embedding.

    Bottom-up semi-join evaluation: each pattern node's candidate set is
    filtered by the existence of satisfying children; full bindings are
    then enumerated top-down from the surviving candidates.
    """
    depths = {id(node): node.depth for node in nodes}
    by_tag: Dict[str, List[XmlElement]] = {}
    for node in nodes:
        by_tag.setdefault(node.tag, []).append(node)

    def candidates_for(twig: TwigNode) -> List[XmlElement]:
        return list(nodes) if twig.tag == "*" else by_tag.get(twig.tag, [])

    # Bottom-up: survivors[twig] = elements that can root an embedding of
    # the twig's subtree.
    survivors: Dict[int, List[XmlElement]] = {}

    def filter_up(twig: TwigNode) -> List[XmlElement]:
        child_survivors = [(child, filter_up(child)) for child in twig.children]
        kept = []
        for candidate in candidates_for(twig):
            ok = all(
                any(
                    _satisfies_edge(scheme, depths, candidate, element, child.edge)
                    for element in elements
                )
                for child, elements in child_survivors
            )
            if ok:
                kept.append(candidate)
        survivors[id(twig)] = kept
        return kept

    filter_up(pattern.root)

    if not bindings:
        output = pattern.output
        assert output is not None
        if output is pattern.root:
            return list(survivors[id(output)])
        # output matches = survivors of the output node that occur in at
        # least one full embedding; enumerate embeddings restricted to the
        # path root->output for efficiency, then verify side branches are
        # already guaranteed by the bottom-up filter.
        matches = []
        seen = set()
        for binding in _enumerate_bindings(scheme, depths, pattern.root, survivors):
            element = binding[id(output)]
            if id(element) not in seen:
                seen.add(id(element))
                matches.append(element)
        return matches

    return [
        {twig: binding[id(twig)] for twig in pattern.root.iter_nodes()}
        for binding in _enumerate_bindings(scheme, depths, pattern.root, survivors)
    ]


def _enumerate_bindings(
    scheme: LabelingScheme,
    depths: Dict[int, int],
    root: TwigNode,
    survivors: Dict[int, List[XmlElement]],
) -> List[Dict[int, XmlElement]]:
    """All full embeddings, as maps from pattern-node id to element."""

    def expand(twig: TwigNode, element: XmlElement) -> List[Dict[int, XmlElement]]:
        partials: List[Dict[int, XmlElement]] = [{id(twig): element}]
        for child in twig.children:
            extended: List[Dict[int, XmlElement]] = []
            for candidate in survivors[id(child)]:
                if _satisfies_edge(scheme, depths, element, candidate, child.edge):
                    for sub in expand(child, candidate):
                        for partial in partials:
                            merged = dict(partial)
                            merged.update(sub)
                            extended.append(merged)
            partials = extended
            if not partials:
                return []
        return partials

    results: List[Dict[int, XmlElement]] = []
    for element in survivors[id(root)]:
        results.extend(expand(root, element))
    return results
