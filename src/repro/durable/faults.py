"""Injectable failure layer for the durability subsystem.

Durability code that has never survived a crash is durability theater, so
the write paths of :mod:`repro.durable.wal` and
:mod:`repro.durable.snapshot` route every hazardous step through a
:class:`FaultInjector`.  The default injector does nothing; tests swap in
scripted ones that kill the "process" (by raising :class:`InjectedCrash`)
at precisely chosen points, leave half-written records behind, or flip
bits in files that were already acknowledged — the fault matrix of
``docs/DURABILITY.md``.

The injector API mirrors the places real systems lose data:

* :meth:`FaultInjector.on_append` — may truncate the record's bytes (a
  torn write at the end of the log), crash before anything is written, or
  raise a *transient* ``OSError`` the resilient layer retries;
* :meth:`FaultInjector.after_write` — crash *after* the OS buffered the
  bytes but *before* ``fsync`` (data in the page cache, lost on power cut
  under ``fsync="never"``/``"batch"`` policies), or fail transiently —
  the ambiguous-write case the WAL rolls back;
* :meth:`FaultInjector.on_sync` — fail (or stall) the ``fsync`` itself,
  the boundary where slow or dying disks actually hurt;
* :meth:`FaultInjector.on_snapshot` — corrupt or truncate a snapshot blob
  before it reaches the temp file (a controller writing garbage);
* :meth:`FaultInjector.on_snapshot_io` — fail or stall the snapshot's
  file I/O transiently, before any byte is written (retry-safe: the temp
  file is rebuilt from scratch).

Crash hooks raise :class:`InjectedCrash`; transient hooks raise plain
``OSError`` subclasses (see :class:`repro.resilient.chaos.ChaosInjector`
for the probabilistic chaos harness built on these hooks).

:func:`flip_bit` and :func:`truncate_file` operate on closed files and
model at-rest corruption (bit rot, partial ``rename`` on a dying disk).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import DurabilityError

__all__ = [
    "InjectedCrash",
    "FaultInjector",
    "CrashAfterAppends",
    "TornAppend",
    "CrashBeforeFsync",
    "CorruptSnapshotWrite",
    "flip_bit",
    "truncate_file",
]


class InjectedCrash(DurabilityError):
    """The simulated process death.

    Raised by scripted injectors at their trigger point.  Tests catch it,
    abandon the in-memory state (exactly what a real crash does), and then
    re-open the on-disk state through recovery.
    """


class FaultInjector:
    """Base injector: every hook is a no-op — the production behaviour."""

    def on_append(self, seq: int, blob: bytes) -> bytes:
        """Called with a WAL record's full encoded bytes before writing.

        Return value is what actually reaches the file; returning a strict
        prefix models a torn write.  May raise :class:`InjectedCrash` to
        die before any byte lands.
        """
        return blob

    def after_write(self, seq: int) -> None:
        """Called after a record's bytes were written, before any fsync."""

    def on_sync(self, pending: int) -> None:
        """Called right before the WAL fsyncs ``pending`` unsynced appends.

        May raise ``OSError`` (a transient fsync failure — the bytes stay
        in the page cache and a later sync can still succeed) or sleep to
        model a stalling disk.
        """

    def on_snapshot(self, blob: bytes) -> bytes:
        """Called with a snapshot's full encoded bytes before writing."""
        return blob

    def on_snapshot_io(self, path: str) -> None:
        """Called before a snapshot's temp file is opened for writing.

        May raise ``OSError`` (transient storage failure) or sleep (slow
        disk).  Raising here is always retry-safe: nothing has been
        written yet and the atomic-rename protocol never exposes a
        partial snapshot.
        """


class CrashAfterAppends(FaultInjector):
    """Die cleanly once ``count`` records have been appended.

    The crash happens *before* record ``count + 1`` touches the file, so
    the log ends exactly on a record boundary — the base case of the
    crash matrix.
    """

    def __init__(self, count: int):
        self.count = count
        self._seen = 0

    def on_append(self, seq: int, blob: bytes) -> bytes:
        if self._seen >= self.count:
            raise InjectedCrash(f"crash before append #{self._seen + 1}")
        self._seen += 1
        return blob


class TornAppend(FaultInjector):
    """Write only ``keep_bytes`` of the ``at``-th append, then die.

    Models a power cut mid-``write()``: the log gains a torn final record
    that recovery must detect (CRC mismatch or short read) and truncate.
    """

    def __init__(self, at: int, keep_bytes: int):
        if keep_bytes < 0:
            raise ValueError(f"keep_bytes must be >= 0, got {keep_bytes}")
        self.at = at
        self.keep_bytes = keep_bytes
        self._seen = 0

    def on_append(self, seq: int, blob: bytes) -> bytes:
        self._seen += 1
        if self._seen == self.at:
            return blob[: self.keep_bytes]
        return blob


class CrashBeforeFsync(FaultInjector):
    """Die after the ``at``-th append's bytes were written, pre-fsync.

    Under ``fsync="always"`` the bytes are still in the OS page cache at
    that instant; whether they survive is the OS's business, which is why
    the crash matrix treats "record present" and "record absent" as both
    legal outcomes for the final unsynced record.
    """

    def __init__(self, at: int):
        self.at = at
        self._seen = 0

    def after_write(self, seq: int) -> None:
        self._seen += 1
        if self._seen >= self.at:
            raise InjectedCrash(f"crash before fsync of append #{self._seen}")


class CorruptSnapshotWrite(FaultInjector):
    """Flip one bit of every snapshot blob before it reaches disk."""

    def __init__(self, byte_offset: int = 12, bit: int = 0):
        self.byte_offset = byte_offset
        self.bit = bit

    def on_snapshot(self, blob: bytes) -> bytes:
        if not blob:
            return blob
        mutated = bytearray(blob)
        offset = self.byte_offset % len(mutated)
        mutated[offset] ^= 1 << (self.bit % 8)
        return bytes(mutated)


def flip_bit(path: str | Path, offset: int, bit: int = 0) -> None:
    """Flip one bit of the file at ``path`` in place (at-rest corruption)."""
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if not blob:
        raise ValueError(f"cannot flip a bit of empty file {path}")
    blob[offset % len(blob)] ^= 1 << (bit % 8)
    path.write_bytes(bytes(blob))


def truncate_file(path: str | Path, size: int) -> None:
    """Cut the file at ``path`` down to ``size`` bytes (lost tail)."""
    with open(path, "r+b") as handle:
        handle.truncate(size)
        # repro: ignore[R10] -- crash-simulation harness: the torn tail must
        # really reach the disk or the simulated power cut proves nothing
        handle.flush()
        # repro: ignore[R10] -- same crash-simulation requirement as above
        os.fsync(handle.fileno())
