"""A crash-safe wrapper around :class:`~repro.query.live.LiveCollection`.

:class:`DurableCollection` is the user-facing face of the durability
subsystem: the same update/query surface as the live collection, plus a
directory on disk that always holds enough state to reconstruct the
in-memory collection after a crash —

* ``wal.log`` — every mutation, logged *before* it is applied,
* ``snap-<generation>.rpsn`` — periodic checksummed snapshots (the last
  two generations are retained so a corrupt latest snapshot still leaves
  a recoverable, merely stale, base).

The write protocol per mutation:

1. validate the operation against the in-memory state (so a logged
   record is guaranteed to replay cleanly),
2. encode the target node as ``(document index, preorder position)``
   *before* mutating (positions shift under the mutation itself),
3. append the record to the WAL (fsynced per policy),
4. apply the operation to the live collection.

A crash between 3 and 4 is harmless: replay applies the logged record to
the snapshot state and reaches exactly where step 4 would have.  A crash
between 1 and 3 loses the operation entirely, which is also consistent —
the caller never got an acknowledgement.

Batches invert the protocol (**apply, then group-commit**): the sub-ops
are applied in memory first — computing each one's WAL address immediately
before it applies, which is exactly the state sequential replay sees —
and then all of them are logged as *one* record (one append, one fsync).
A crash before the record lands leaves no trace of the batch on disk, so
recovery restores the pre-batch state; once it lands the whole batch
replays.  Either way the batch is atomic.  If applying or logging fails
in-process, :meth:`DurableCollection.apply_batch` rolls the in-memory
collection back by reloading the last durable state, so a failed batch is
safely retriable as a unit (the resilient layer does exactly that).

:meth:`checkpoint` first fsyncs the WAL (so no retained snapshot ever
claims coverage of records the log does not durably hold), then writes a
new snapshot generation, drops generations beyond the last two, and
prunes WAL records already covered by the *oldest* retained generation.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.durable.faults import FaultInjector, InjectedCrash
from repro.durable.recovery import (
    RecoveryInfo,
    WAL_NAME,
    list_generations,
    recover,
    snapshot_path,
    write_pointer,
)
from repro.durable.snapshot import read_snapshot, write_snapshot
from repro.durable.wal import FsyncPolicy, WriteAheadLog, batch_record
from repro.errors import (
    DurabilityError,
    OrderingError,
    ReproError,
    SnapshotCorruptError,
)
from repro.obs import metrics
from repro.order.document import OrderedUpdateReport
from repro.query.live import BatchOp, BatchReport, LiveCollection
from repro.query.store import ElementRow
from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import XmlElement

__all__ = ["DurableCollection"]

#: Snapshot generations kept after a checkpoint: the fresh one plus one
#: fallback.  More would widen the corruption tolerance at linear disk
#: cost; the recovery protocol works unchanged for any retention depth.
RETAINED_GENERATIONS = 2

#: Collection format generation -> (snapshot version, WAL version).
#: Format 3 is the current default (varint snapshots, binary WAL
#: payloads); format 2 pins the legacy encodings and exists for
#: compatibility tests and the before/after compaction benchmarks.
_FORMAT_VERSIONS = {2: (2, 1), 3: (3, 3)}


class DurableCollection:
    """A live collection whose every update survives process death."""

    def __init__(
        self,
        directory: Path,
        live: LiveCollection,
        wal: WriteAheadLog,
        last_seq: int,
        faults: Optional[FaultInjector] = None,
        snapshot_version: int = 3,
    ):
        self.directory = directory
        self.live = live
        self.wal = wal
        self.last_seq = last_seq
        self.faults = faults
        #: Snapshot format every checkpoint of this instance writes.
        self.snapshot_version = snapshot_version
        #: Recovery report from :meth:`open`; ``None`` for fresh collections.
        self.last_recovery: Optional[RecoveryInfo] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str | Path,
        documents: Sequence[XmlElement],
        group_size: int | None = 5,
        strategy: str = "scan",
        fsync: "str | FsyncPolicy" = "always",
        faults: Optional[FaultInjector] = None,
        format_version: int = 3,
    ) -> "DurableCollection":
        """Initialise a fresh durable collection in ``directory``.

        Writes snapshot generation 1 (the empty-WAL base state) and opens
        the log.  Refuses a directory that already holds a collection —
        use :meth:`open` for that.  ``format_version`` picks the on-disk
        generation: 3 (default) writes varint snapshots and binary WAL
        payloads, 2 the legacy fixed/JSON encodings.
        """
        if format_version not in _FORMAT_VERSIONS:
            raise DurabilityError(
                f"unknown collection format version {format_version}"
            )
        snapshot_version, wal_version = _FORMAT_VERSIONS[format_version]
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if list_generations(directory) or (directory / WAL_NAME).exists():
            raise DurabilityError(
                f"{directory} already holds a durable collection; "
                "open() it instead of create()"
            )
        live = LiveCollection(documents, group_size=group_size, strategy=strategy)
        write_snapshot(
            live,
            snapshot_path(directory, 1),
            last_seq=0,
            faults=faults,
            version=snapshot_version,
        )
        write_pointer(directory, generation=1, last_seq=0)
        wal = WriteAheadLog(
            directory / WAL_NAME, fsync=fsync, faults=faults, version=wal_version
        )
        return cls(
            directory,
            live,
            wal,
            last_seq=0,
            faults=faults,
            snapshot_version=snapshot_version,
        )

    @classmethod
    def open(
        cls,
        directory: str | Path,
        fsync: "str | FsyncPolicy" = "always",
        faults: Optional[FaultInjector] = None,
        verify: bool = True,
    ) -> "DurableCollection":
        """Recover the collection in ``directory`` and resume appending.

        Runs the full recovery protocol (snapshot + WAL replay + audit +
        generation fallback), truncates any torn WAL tail, and advances
        the log past every sequence number the recovered state already
        covers.  The recovery report is kept on ``last_recovery``.
        """
        directory = Path(directory)
        recovered = recover(directory, verify=verify)
        wal = WriteAheadLog(directory / WAL_NAME, fsync=fsync, faults=faults)
        if wal.next_seq <= recovered.info.last_seq:
            # The snapshot covers records an unsynced WAL tail lost; never
            # reissue their sequence numbers (replay would drop the new
            # records as already-covered).
            wal.reset(recovered.info.last_seq + 1)
        collection = cls(
            directory,
            recovered.collection,
            wal,
            last_seq=recovered.info.last_seq,
            faults=faults,
        )
        collection.last_recovery = recovered.info
        return collection

    # ------------------------------------------------------------------
    # Logged mutations
    # ------------------------------------------------------------------

    def _address(self, node: XmlElement) -> Tuple[int, int]:
        """``(document index, preorder position)`` — computed pre-mutation."""
        return self.live.document_index_of(node), node.document_position()

    def _log(self, op: dict) -> int:
        if self._closed:
            raise DurabilityError("durable collection is closed")
        seq = self.wal.append(op)
        return seq

    def insert_child(
        self, parent: XmlElement, index: int, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Logged order-sensitive insertion under ``parent`` at ``index``."""
        doc, position = self._address(parent)
        if not 0 <= index <= len(parent.children):
            raise OrderingError(
                f"insert index {index} out of range for a parent with "
                f"{len(parent.children)} children"
            )
        seq = self._log(
            {
                "op": "insert_child",
                "doc": doc,
                "parent": position,
                "index": index,
                "tag": tag,
            }
        )
        report = self.live.insert_child(parent, index, tag=tag)
        self.last_seq = seq
        return report

    def insert_before(
        self, reference: XmlElement, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Logged insertion of a sibling immediately before ``reference``."""
        doc, position = self._address(reference)
        if reference.is_root:
            raise OrderingError("cannot insert a sibling of the root")
        seq = self._log(
            {"op": "insert_before", "doc": doc, "ref": position, "tag": tag}
        )
        report = self.live.insert_before(reference, tag=tag)
        self.last_seq = seq
        return report

    def insert_after(
        self, reference: XmlElement, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Logged insertion of a sibling immediately after ``reference``."""
        doc, position = self._address(reference)
        if reference.is_root:
            raise OrderingError("cannot insert a sibling of the root")
        seq = self._log(
            {"op": "insert_after", "doc": doc, "ref": position, "tag": tag}
        )
        report = self.live.insert_after(reference, tag=tag)
        self.last_seq = seq
        return report

    def delete(self, node: XmlElement) -> OrderedUpdateReport:
        """Logged deletion of ``node`` and its subtree."""
        doc, position = self._address(node)
        if node.is_root:
            raise OrderingError(
                "cannot delete the document root; deleting every child "
                "individually is the closest well-defined operation"
            )
        seq = self._log({"op": "delete", "doc": doc, "node": position})
        report = self.live.delete(node)
        self.last_seq = seq
        return report

    def add_document(self, root: XmlElement) -> int:
        """Logged addition of a whole document; returns its index.

        The WAL payload carries the document's serialized XML, so replay
        reconstructs an equivalent tree by re-parsing (compact
        serialization is a lossless round trip for mixed-content-free
        documents, which is all the toolkit produces).
        """
        if root.parent is not None:
            raise OrderingError(
                "add_document needs a detached root; detach() the subtree first"
            )
        seq = self._log({"op": "add_document", "xml": serialize(root)})
        index = self.live.add_document(root)
        self.last_seq = seq
        return index

    def compact(self) -> List[int]:
        """Logged SC-table compaction; returns per-document record counts."""
        seq = self._log({"op": "compact"})
        record_counts = self.live.compact()
        self.last_seq = seq
        return record_counts

    # ------------------------------------------------------------------
    # Batched mutations (group commit)
    # ------------------------------------------------------------------

    def encode_batch(self, ops: Sequence[BatchOp]) -> List[dict]:
        """Encode batch ops as addresses against the *current* state.

        Returns JSON-ready entries carrying ``(document index, preorder
        position)`` for each op's target, all in pre-batch coordinates.
        This addressed form is the retriable currency of a batch: node
        references die when a failed batch rolls the in-memory collection
        back, but addresses re-resolve against the reloaded (pre-batch-
        identical) state — see :meth:`resolve_batch`.
        """
        encoded: List[dict] = []
        for position, op in enumerate(ops):
            doc, node_position = self._address(op.node)
            if op.kind != "insert_child" and op.node.is_root:
                raise OrderingError(
                    f"batch op #{position} ({op.kind}) targets the document "
                    "root, which has no siblings and cannot be deleted"
                )
            entry = {"kind": op.kind, "doc": doc, "pos": node_position}
            if op.kind == "insert_child":
                if not 0 <= op.index <= len(op.node.children):
                    raise OrderingError(
                        f"batch op #{position}: insert index {op.index} out "
                        f"of range for a parent with {len(op.node.children)} "
                        "children"
                    )
                entry["index"] = op.index
            if op.kind != "delete":
                entry["tag"] = op.tag
            encoded.append(entry)
        return encoded

    def resolve_batch(self, encoded: Sequence[dict]) -> List[BatchOp]:
        """Re-materialize :class:`BatchOp`\\ s from an addressed batch.

        Resolves every address in one preorder walk per referenced
        document, against the current in-memory state — which, for a
        retried batch, is the rolled-back state the addresses were encoded
        against.
        """
        roots = self.live.documents
        needed: dict = {}
        for entry in encoded:
            needed.setdefault(entry["doc"], set()).add(entry["pos"])
        nodes: dict = {}
        for doc, positions in needed.items():
            if not 0 <= doc < len(roots):
                raise DurabilityError(
                    f"batch references document {doc}; have {len(roots)}"
                )
            for position, node in enumerate(roots[doc].iter_preorder()):
                if position in positions:
                    nodes[(doc, position)] = node
        ops: List[BatchOp] = []
        for entry in encoded:
            key = (entry["doc"], entry["pos"])
            if key not in nodes:
                raise DurabilityError(
                    f"batch references preorder position {key[1]} of "
                    f"document {key[0]}, which does not exist"
                )
            node = nodes[key]
            kind = entry["kind"]
            if kind == "insert_child":
                ops.append(BatchOp.insert_child(node, entry["index"], tag=entry["tag"]))
            elif kind == "delete":
                ops.append(BatchOp.delete(node))
            else:
                ops.append(BatchOp(kind, node, tag=entry["tag"]))
        return ops

    def apply_batch(self, ops: Sequence[BatchOp]) -> BatchReport:
        """Apply N mutations as one atomic, group-committed unit.

        All-or-nothing in memory *and* on disk: the sub-ops apply through
        the live collection's coalesced batch path, then land in the WAL as
        a single checksummed record (one append + one fsync per batch under
        ``fsync='always'``).  Any failure rolls the in-memory state back to
        the last durable state before re-raising, so node references held
        by the caller into mutated documents become stale — re-fetch from
        ``documents`` after a failed batch.
        """
        if self._closed:
            raise DurabilityError("durable collection is closed")
        ops = list(ops)
        if not ops:
            return BatchReport()
        return self.apply_batch_addressed(self.encode_batch(ops))

    def apply_batch_addressed(self, encoded: Sequence[dict]) -> BatchReport:
        """:meth:`apply_batch` for an already-:meth:`encode_batch`-ed batch.

        The resilient layer encodes once and retries this, because a
        rollback invalidates the node references the original ops carried
        while the addressed form survives.
        """
        if self._closed:
            raise DurabilityError("durable collection is closed")
        encoded = list(encoded)
        if not encoded:
            return BatchReport()
        payload: List[dict] = []

        def log_address(position: int, op: BatchOp) -> None:
            # Called by the live layer immediately before each sub-op
            # applies: these coordinates are exactly what sequential replay
            # of the batch record will see.
            doc, node_position = self._address(op.node)
            if op.kind == "insert_child":
                payload.append(
                    {
                        "op": "insert_child",
                        "doc": doc,
                        "parent": node_position,
                        "index": op.index,
                        "tag": op.tag,
                    }
                )
            elif op.kind == "delete":
                payload.append({"op": "delete", "doc": doc, "node": node_position})
            else:
                payload.append(
                    {"op": op.kind, "doc": doc, "ref": node_position, "tag": op.tag}
                )

        try:
            resolved = self.resolve_batch(encoded)
            report = self.live.apply_batch(resolved, before_op=log_address)  # repro: ignore[R17] -- group commit: the apply builds the batch record's addresses, the single _log call makes it durable, and any failure in between rolls back via _rollback_batch, so no applied-but-unlogged state survives
            seq = self._log(batch_record(payload))
        except InjectedCrash:
            # Simulated process death: in-memory state is moot, and the
            # torn-tail rule guarantees recovery lands on the pre-batch
            # state (the batch record never became fully durable).
            raise
        except Exception:
            self._rollback_batch()
            raise
        self.last_seq = seq
        metrics.incr("durable.group_commits")
        metrics.incr("durable.batched_ops", len(encoded))
        return report

    def bulk_insert(
        self, inserts: Sequence[Tuple[XmlElement, int, str]]
    ) -> BatchReport:
        """Group-committed insertions from (parent, index, tag) triples."""
        return self.apply_batch(
            [BatchOp.insert_child(parent, index, tag) for parent, index, tag in inserts]
        )

    def bulk_delete(self, nodes: Sequence[XmlElement]) -> BatchReport:
        """Group-committed deletion of ``nodes`` (each with its subtree)."""
        return self.apply_batch([BatchOp.delete(node) for node in nodes])

    def _rollback_batch(self) -> None:
        """Discard a half-applied batch: reload memory from durable state.

        The WAL is repaired first so an ambiguous append (record bytes
        written but not acknowledged) cannot survive on disk while the
        caller is told the batch failed — otherwise a retry would apply the
        batch twice.  If even reloading fails, a :class:`DurabilityError`
        is raised (chained onto the original failure) because the in-memory
        state can no longer be trusted to match the log.
        """
        try:
            self.reopen_wal()
            recovered = recover(self.directory, verify=False)
        except (OSError, ReproError) as error:
            raise DurabilityError(
                "batch rollback could not reload the last durable state; "
                f"the in-memory collection may be ahead of the log: {error}"
            ) from error
        self.live = recovered.collection
        self.last_seq = recovered.info.last_seq
        metrics.incr("durable.batch_rollbacks")

    # ------------------------------------------------------------------
    # Queries (pass-through: reading needs no logging)
    # ------------------------------------------------------------------

    def query(self, text: str) -> List[ElementRow]:
        """Evaluate an XPath-subset query over the collection."""
        return self.live.query(text)

    def count(self, text: str) -> int:
        """Number of nodes the query retrieves."""
        return self.live.count(text)

    def check(self) -> bool:
        """Verify every document's SC-derived order."""
        return self.live.check()

    @property
    def documents(self) -> List[XmlElement]:
        """The document roots, in collection order."""
        return self.live.documents

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def reopen_wal(self) -> None:
        """Repair and reopen the write-ahead log after a storage fault.

        Truncates any torn or poisoned tail (see
        :meth:`repro.durable.wal.WriteAheadLog.reopen`) and — when the
        surviving log chains behind sequence numbers this collection has
        already applied — resets it forward so no sequence number is ever
        reissued under a snapshot's coverage.  Called by the resilient
        layer before every retry of a failed durable operation.
        """
        if self._closed:
            raise DurabilityError("durable collection is closed")
        self.wal.reopen()
        if self.wal.next_seq <= self.last_seq:
            self.wal.reset(self.last_seq + 1)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Write a new snapshot generation; returns its generation number.

        Syncs the WAL first, so no snapshot ever claims sequence numbers
        the log does not durably hold.  Keeps the newest
        :data:`RETAINED_GENERATIONS` snapshots and prunes WAL records the
        oldest retained generation already covers (they can never be
        needed by any surviving replay path).
        """
        if self._closed:
            raise DurabilityError("durable collection is closed")
        with metrics.timed("durable.checkpoint"):
            self.wal.sync()
            generations = list_generations(self.directory)
            generation = (generations[-1] if generations else 0) + 1
            write_snapshot(
                self.live,
                snapshot_path(self.directory, generation),
                last_seq=self.last_seq,
                faults=self.faults,
                version=self.snapshot_version,
            )
            # Publish the pointer before deleting stale generations, so an
            # external bootstrapper that reads it never chases a file this
            # same checkpoint is about to unlink.
            write_pointer(self.directory, generation=generation, last_seq=self.last_seq)
            retained = (generations + [generation])[-RETAINED_GENERATIONS:]
            for stale in generations:
                if stale not in retained:
                    snapshot_path(self.directory, stale).unlink(missing_ok=True)
            try:
                oldest_covered = read_snapshot(
                    snapshot_path(self.directory, retained[0])
                ).last_seq
            except SnapshotCorruptError:
                # A corrupt fallback snapshot means every WAL record might
                # still matter; prune nothing rather than guess.
                oldest_covered = 0
            self.wal.prune(oldest_covered)
            metrics.incr("durable.checkpoints")
        return generation

    def close(self) -> None:
        """Sync and close the log; the collection object becomes read-only.

        Marked closed even when the final WAL sync fails (the error still
        propagates) so a failing close cannot leave a half-open object.
        """
        if self._closed:
            return
        try:
            self.wal.close()
        finally:
            self._closed = True

    def __enter__(self) -> "DurableCollection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
