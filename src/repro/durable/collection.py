"""A crash-safe wrapper around :class:`~repro.query.live.LiveCollection`.

:class:`DurableCollection` is the user-facing face of the durability
subsystem: the same update/query surface as the live collection, plus a
directory on disk that always holds enough state to reconstruct the
in-memory collection after a crash —

* ``wal.log`` — every mutation, logged *before* it is applied,
* ``snap-<generation>.rpsn`` — periodic checksummed snapshots (the last
  two generations are retained so a corrupt latest snapshot still leaves
  a recoverable, merely stale, base).

The write protocol per mutation:

1. validate the operation against the in-memory state (so a logged
   record is guaranteed to replay cleanly),
2. encode the target node as ``(document index, preorder position)``
   *before* mutating (positions shift under the mutation itself),
3. append the record to the WAL (fsynced per policy),
4. apply the operation to the live collection.

A crash between 3 and 4 is harmless: replay applies the logged record to
the snapshot state and reaches exactly where step 4 would have.  A crash
between 1 and 3 loses the operation entirely, which is also consistent —
the caller never got an acknowledgement.

:meth:`checkpoint` first fsyncs the WAL (so no retained snapshot ever
claims coverage of records the log does not durably hold), then writes a
new snapshot generation, drops generations beyond the last two, and
prunes WAL records already covered by the *oldest* retained generation.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.durable.faults import FaultInjector
from repro.durable.recovery import (
    RecoveryInfo,
    WAL_NAME,
    list_generations,
    recover,
    snapshot_path,
)
from repro.durable.snapshot import read_snapshot, write_snapshot
from repro.durable.wal import FsyncPolicy, WriteAheadLog
from repro.errors import DurabilityError, OrderingError, SnapshotCorruptError
from repro.obs import metrics
from repro.order.document import OrderedUpdateReport
from repro.query.live import LiveCollection
from repro.query.store import ElementRow
from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import XmlElement

__all__ = ["DurableCollection"]

#: Snapshot generations kept after a checkpoint: the fresh one plus one
#: fallback.  More would widen the corruption tolerance at linear disk
#: cost; the recovery protocol works unchanged for any retention depth.
RETAINED_GENERATIONS = 2


class DurableCollection:
    """A live collection whose every update survives process death."""

    def __init__(
        self,
        directory: Path,
        live: LiveCollection,
        wal: WriteAheadLog,
        last_seq: int,
        faults: Optional[FaultInjector] = None,
    ):
        self.directory = directory
        self.live = live
        self.wal = wal
        self.last_seq = last_seq
        self.faults = faults
        #: Recovery report from :meth:`open`; ``None`` for fresh collections.
        self.last_recovery: Optional[RecoveryInfo] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str | Path,
        documents: Sequence[XmlElement],
        group_size: int | None = 5,
        strategy: str = "scan",
        fsync: "str | FsyncPolicy" = "always",
        faults: Optional[FaultInjector] = None,
    ) -> "DurableCollection":
        """Initialise a fresh durable collection in ``directory``.

        Writes snapshot generation 1 (the empty-WAL base state) and opens
        the log.  Refuses a directory that already holds a collection —
        use :meth:`open` for that.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if list_generations(directory) or (directory / WAL_NAME).exists():
            raise DurabilityError(
                f"{directory} already holds a durable collection; "
                "open() it instead of create()"
            )
        live = LiveCollection(documents, group_size=group_size, strategy=strategy)
        write_snapshot(live, snapshot_path(directory, 1), last_seq=0, faults=faults)
        wal = WriteAheadLog(directory / WAL_NAME, fsync=fsync, faults=faults)
        return cls(directory, live, wal, last_seq=0, faults=faults)

    @classmethod
    def open(
        cls,
        directory: str | Path,
        fsync: "str | FsyncPolicy" = "always",
        faults: Optional[FaultInjector] = None,
        verify: bool = True,
    ) -> "DurableCollection":
        """Recover the collection in ``directory`` and resume appending.

        Runs the full recovery protocol (snapshot + WAL replay + audit +
        generation fallback), truncates any torn WAL tail, and advances
        the log past every sequence number the recovered state already
        covers.  The recovery report is kept on ``last_recovery``.
        """
        directory = Path(directory)
        recovered = recover(directory, verify=verify)
        wal = WriteAheadLog(directory / WAL_NAME, fsync=fsync, faults=faults)
        if wal.next_seq <= recovered.info.last_seq:
            # The snapshot covers records an unsynced WAL tail lost; never
            # reissue their sequence numbers (replay would drop the new
            # records as already-covered).
            wal.reset(recovered.info.last_seq + 1)
        collection = cls(
            directory,
            recovered.collection,
            wal,
            last_seq=recovered.info.last_seq,
            faults=faults,
        )
        collection.last_recovery = recovered.info
        return collection

    # ------------------------------------------------------------------
    # Logged mutations
    # ------------------------------------------------------------------

    def _address(self, node: XmlElement) -> Tuple[int, int]:
        """``(document index, preorder position)`` — computed pre-mutation."""
        return self.live.document_index_of(node), node.document_position()

    def _log(self, op: dict) -> int:
        if self._closed:
            raise DurabilityError("durable collection is closed")
        seq = self.wal.append(op)
        return seq

    def insert_child(
        self, parent: XmlElement, index: int, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Logged order-sensitive insertion under ``parent`` at ``index``."""
        doc, position = self._address(parent)
        if not 0 <= index <= len(parent.children):
            raise OrderingError(
                f"insert index {index} out of range for a parent with "
                f"{len(parent.children)} children"
            )
        seq = self._log(
            {
                "op": "insert_child",
                "doc": doc,
                "parent": position,
                "index": index,
                "tag": tag,
            }
        )
        report = self.live.insert_child(parent, index, tag=tag)
        self.last_seq = seq
        return report

    def insert_before(
        self, reference: XmlElement, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Logged insertion of a sibling immediately before ``reference``."""
        doc, position = self._address(reference)
        if reference.is_root:
            raise OrderingError("cannot insert a sibling of the root")
        seq = self._log(
            {"op": "insert_before", "doc": doc, "ref": position, "tag": tag}
        )
        report = self.live.insert_before(reference, tag=tag)
        self.last_seq = seq
        return report

    def insert_after(
        self, reference: XmlElement, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Logged insertion of a sibling immediately after ``reference``."""
        doc, position = self._address(reference)
        if reference.is_root:
            raise OrderingError("cannot insert a sibling of the root")
        seq = self._log(
            {"op": "insert_after", "doc": doc, "ref": position, "tag": tag}
        )
        report = self.live.insert_after(reference, tag=tag)
        self.last_seq = seq
        return report

    def delete(self, node: XmlElement) -> OrderedUpdateReport:
        """Logged deletion of ``node`` and its subtree."""
        doc, position = self._address(node)
        if node.is_root:
            raise OrderingError(
                "cannot delete the document root; deleting every child "
                "individually is the closest well-defined operation"
            )
        seq = self._log({"op": "delete", "doc": doc, "node": position})
        report = self.live.delete(node)
        self.last_seq = seq
        return report

    def add_document(self, root: XmlElement) -> int:
        """Logged addition of a whole document; returns its index.

        The WAL payload carries the document's serialized XML, so replay
        reconstructs an equivalent tree by re-parsing (compact
        serialization is a lossless round trip for mixed-content-free
        documents, which is all the toolkit produces).
        """
        if root.parent is not None:
            raise OrderingError(
                "add_document needs a detached root; detach() the subtree first"
            )
        seq = self._log({"op": "add_document", "xml": serialize(root)})
        index = self.live.add_document(root)
        self.last_seq = seq
        return index

    def compact(self) -> None:
        """Logged SC-table compaction across every document."""
        seq = self._log({"op": "compact"})
        self.live.compact()
        self.last_seq = seq

    # ------------------------------------------------------------------
    # Queries (pass-through: reading needs no logging)
    # ------------------------------------------------------------------

    def query(self, text: str) -> List[ElementRow]:
        """Evaluate an XPath-subset query over the collection."""
        return self.live.query(text)

    def count(self, text: str) -> int:
        """Number of nodes the query retrieves."""
        return self.live.count(text)

    def check(self) -> bool:
        """Verify every document's SC-derived order."""
        return self.live.check()

    @property
    def documents(self) -> List[XmlElement]:
        """The document roots, in collection order."""
        return self.live.documents

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def reopen_wal(self) -> None:
        """Repair and reopen the write-ahead log after a storage fault.

        Truncates any torn or poisoned tail (see
        :meth:`repro.durable.wal.WriteAheadLog.reopen`) and — when the
        surviving log chains behind sequence numbers this collection has
        already applied — resets it forward so no sequence number is ever
        reissued under a snapshot's coverage.  Called by the resilient
        layer before every retry of a failed durable operation.
        """
        if self._closed:
            raise DurabilityError("durable collection is closed")
        self.wal.reopen()
        if self.wal.next_seq <= self.last_seq:
            self.wal.reset(self.last_seq + 1)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Write a new snapshot generation; returns its generation number.

        Syncs the WAL first, so no snapshot ever claims sequence numbers
        the log does not durably hold.  Keeps the newest
        :data:`RETAINED_GENERATIONS` snapshots and prunes WAL records the
        oldest retained generation already covers (they can never be
        needed by any surviving replay path).
        """
        if self._closed:
            raise DurabilityError("durable collection is closed")
        with metrics.timed("durable.checkpoint"):
            self.wal.sync()
            generations = list_generations(self.directory)
            generation = (generations[-1] if generations else 0) + 1
            write_snapshot(
                self.live,
                snapshot_path(self.directory, generation),
                last_seq=self.last_seq,
                faults=self.faults,
            )
            retained = (generations + [generation])[-RETAINED_GENERATIONS:]
            for stale in generations:
                if stale not in retained:
                    snapshot_path(self.directory, stale).unlink(missing_ok=True)
            try:
                oldest_covered = read_snapshot(
                    snapshot_path(self.directory, retained[0])
                ).last_seq
            except SnapshotCorruptError:
                # A corrupt fallback snapshot means every WAL record might
                # still matter; prune nothing rather than guess.
                oldest_covered = 0
            self.wal.prune(oldest_covered)
            metrics.incr("durable.checkpoints")
        return generation

    def close(self) -> None:
        """Sync and close the log; the collection object becomes read-only.

        Marked closed even when the final WAL sync fails (the error still
        propagates) so a failing close cannot leave a half-open object.
        """
        if self._closed:
            return
        try:
            self.wal.close()
        finally:
            self._closed = True

    def __enter__(self) -> "DurableCollection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
