"""Checksummed full-state snapshots of a live collection.

A snapshot is everything recovery needs to resume a
:class:`~repro.query.live.LiveCollection` *exactly* where it stood:

* each document's element tree (tags, attributes, text, child order),
* each node's prime label (full value + self-label) in preorder,
* each prime generator's issuance position (so replayed inserts draw the
  same fresh primes the original run would have),
* each SC table's records — group membership, residues, and routing keys
  preserved record by record, because future ``register`` calls append to
  the last record and must see the same fill level,
* the collection's configuration (``group_size``, ``strategy``) and its
  accumulated update cost.

The file extends the RPLS binary conventions of
:mod:`repro.query.persist` (big-endian, length-prefixed strings) with
arbitrary-precision integers and a CRC32 footer over the whole body::

    magic    4 bytes b"RPSN", 1 byte version
    header   8B last_seq   8B total_update_cost
             4B group_size (0xFFFFFFFF = None)   1B+len strategy
    docs     4B count, then per document:
               tree     preorder: 2B+len tag, 4B+len text,
                        2B attr count ×(2B+len name, 2B+len value),
                        4B child count
               gen      4B reserved_limit, 4B next_reserved,
                        4B next_general, 8B issued
               labels   4B count ×(int value, int self_label)  [preorder]
               sc       4B record count, per record: 4B members,
                        int max_prime ×(int modulus, int residue)
    footer   4 bytes CRC32 of everything above

where ``int`` is a 2-byte length + big-endian magnitude (labels are
products of primes and routinely exceed machine words).

Writes are atomic: the blob goes to ``<name>.tmp``, is fsynced, and is
``os.replace``d over the final name — a crash mid-snapshot leaves the
previous generation untouched.  :func:`read_snapshot` verifies the footer
before decoding a single field, so truncation and bit-flips surface as
:class:`repro.errors.SnapshotCorruptError`, never as plausible garbage.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.durable.faults import FaultInjector
from repro.errors import LabelingError, OrderingError, SnapshotCorruptError
from repro.labeling.prime import PrimeLabel, PrimeScheme
from repro.obs import metrics
from repro.order.document import OrderedDocument
from repro.order.sc_table import SCTable
from repro.primes.gen import PrimeGenerator
from repro.query.live import LiveCollection
from repro.query.persist import _Reader, _write_string
from repro.xmlkit.tree import XmlElement

__all__ = [
    "SnapshotState",
    "write_snapshot",
    "read_snapshot",
    "restore_collection",
    "collection_fingerprint",
]

_MAGIC = b"RPSN"
_VERSION = 1
_NO_GROUP_SIZE = 0xFFFFFFFF

Groups = List[Tuple[int, List[Tuple[int, int]]]]


@dataclass
class DocumentState:
    """One document's decoded snapshot: tree + labels + generator + SC."""

    root: XmlElement
    labels: List[Tuple[int, int]]  # (value, self_label) in preorder
    generator_state: Tuple[int, int, int, int]
    sc_groups: Groups


@dataclass
class SnapshotState:
    """A decoded snapshot, ready for :func:`restore_collection`."""

    last_seq: int
    total_update_cost: int
    group_size: Optional[int]
    strategy: str
    documents: List[DocumentState]


# ----------------------------------------------------------------------
# Encoding helpers (int = 2B length + big-endian magnitude)
# ----------------------------------------------------------------------


def _write_int(out: List[bytes], value: int) -> None:
    if value < 0:
        raise SnapshotCorruptError(f"cannot encode negative integer {value}")
    data = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    out.append(struct.pack(">H", len(data)))
    out.append(data)


def _read_int(reader: _Reader) -> int:
    (length,) = reader.unpack(">H")
    return int.from_bytes(reader.take(length), "big")


def _write_tree(out: List[bytes], node: XmlElement) -> None:
    _write_string(out, node.tag, ">H")
    _write_string(out, node.text, ">I")
    out.append(struct.pack(">H", len(node.attributes)))
    for name, value in node.attributes.items():
        _write_string(out, name, ">H")
        _write_string(out, value, ">H")
    out.append(struct.pack(">I", len(node.children)))
    for child in node.children:
        _write_tree(out, child)


def _read_tree(reader: _Reader) -> XmlElement:
    tag = reader.string(">H")
    text = reader.string(">I")
    (attr_count,) = reader.unpack(">H")
    attributes = {}
    for _ in range(attr_count):
        name = reader.string(">H")
        attributes[name] = reader.string(">H")
    node = XmlElement(tag, attributes, text)
    (child_count,) = reader.unpack(">I")
    for _ in range(child_count):
        node.append(_read_tree(reader))
    return node


# ----------------------------------------------------------------------
# Write
# ----------------------------------------------------------------------


def snapshot_bytes(collection: LiveCollection, last_seq: int = 0) -> bytes:
    """Encode ``collection`` as a complete snapshot blob (footer included)."""
    out: List[bytes] = [_MAGIC, struct.pack(">B", _VERSION)]
    out.append(struct.pack(">QQ", last_seq, collection.total_update_cost))
    group_size = collection.group_size
    out.append(
        struct.pack(">I", _NO_GROUP_SIZE if group_size is None else group_size)
    )
    _write_string(out, collection.strategy, ">B")
    ordered = collection.ordered_documents
    out.append(struct.pack(">I", len(ordered)))
    for document in ordered:
        _write_tree(out, document.root)
        reserved, next_reserved, next_general, issued = document.scheme._generator.state()
        out.append(struct.pack(">IIIQ", reserved, next_reserved, next_general, issued))
        nodes = list(document.root.iter_preorder())
        out.append(struct.pack(">I", len(nodes)))
        for node in nodes:
            label: PrimeLabel = document.label_of(node)
            _write_int(out, label.value)
            _write_int(out, label.self_label)
        groups = document.sc_table.groups()
        out.append(struct.pack(">I", len(groups)))
        for max_prime, members in groups:
            out.append(struct.pack(">I", len(members)))
            _write_int(out, max_prime)
            for modulus, residue in members:
                _write_int(out, modulus)
                _write_int(out, residue)
    body = b"".join(out)
    return body + struct.pack(">I", zlib.crc32(body))


def write_snapshot(
    collection: LiveCollection,
    path: str | Path,
    last_seq: int = 0,
    faults: Optional[FaultInjector] = None,
) -> int:
    """Atomically write a snapshot of ``collection``; returns bytes written.

    ``last_seq`` is the WAL sequence number of the last operation already
    reflected in the collection — recovery replays strictly after it.
    """
    with metrics.timed("snapshot.write"):
        path = Path(path)
        blob = snapshot_bytes(collection, last_seq)
        if faults is not None:
            blob = faults.on_snapshot(blob)
            # The transient-I/O hook fires before the temp file is opened,
            # so an injected failure (or stall) is always retry-safe.
            faults.on_snapshot_io(str(path))
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(blob)
            # repro: ignore[R10] -- atomic-rename protocol: the temp file
            # must be durable before os.replace or a crash could retain a
            # snapshot pointer to unwritten bytes; no fsync policy applies
            handle.flush()
            # repro: ignore[R10] -- second half of the atomic-rename fsync
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        metrics.incr("snapshot.writes")
        metrics.incr("snapshot.bytes", len(blob))
    return len(blob)


# ----------------------------------------------------------------------
# Read + restore
# ----------------------------------------------------------------------


def read_snapshot(path: str | Path) -> SnapshotState:
    """Decode and checksum-verify the snapshot at ``path``.

    Raises :class:`repro.errors.SnapshotCorruptError` on any damage —
    truncation, bit-flip, bad magic, or undecodable structure.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise SnapshotCorruptError(f"cannot read snapshot {path}: {error}") from error
    if len(blob) < len(_MAGIC) + 1 + 4:
        raise SnapshotCorruptError(f"snapshot {path} is truncated")
    (stored_crc,) = struct.unpack(">I", blob[-4:])
    body = blob[:-4]
    if zlib.crc32(body) != stored_crc:
        raise SnapshotCorruptError(
            f"snapshot {path} failed its CRC32 check (truncated or corrupt)"
        )
    try:
        state = _decode_body(body, path)
    except (ValueError, IndexError, UnicodeDecodeError, struct.error) as error:
        raise SnapshotCorruptError(f"corrupt snapshot {path}: {error}") from error
    metrics.incr("snapshot.loads")
    return state


def _decode_body(body: bytes, path: Path) -> SnapshotState:
    reader = _Reader(body)
    if reader.take(4) != _MAGIC:
        raise SnapshotCorruptError(f"{path} is not a snapshot file")
    (version,) = reader.unpack(">B")
    if version != _VERSION:
        raise SnapshotCorruptError(f"unsupported snapshot version {version}")
    last_seq, total_cost = reader.unpack(">QQ")
    (raw_group_size,) = reader.unpack(">I")
    group_size = None if raw_group_size == _NO_GROUP_SIZE else raw_group_size
    strategy = reader.string(">B")
    (doc_count,) = reader.unpack(">I")
    documents: List[DocumentState] = []
    for _ in range(doc_count):
        root = _read_tree(reader)
        generator_state = reader.unpack(">IIIQ")
        (label_count,) = reader.unpack(">I")
        labels = [(_read_int(reader), _read_int(reader)) for _ in range(label_count)]
        (group_count,) = reader.unpack(">I")
        groups: Groups = []
        for _ in range(group_count):
            (member_count,) = reader.unpack(">I")
            max_prime = _read_int(reader)
            members = [
                (_read_int(reader), _read_int(reader)) for _ in range(member_count)
            ]
            groups.append((max_prime, members))
        documents.append(
            DocumentState(
                root=root,
                labels=labels,
                generator_state=generator_state,
                sc_groups=groups,
            )
        )
    return SnapshotState(
        last_seq=last_seq,
        total_update_cost=total_cost,
        group_size=group_size,
        strategy=strategy,
        documents=documents,
    )


def restore_collection(state: SnapshotState) -> LiveCollection:
    """Rebuild a live collection from a decoded snapshot, relabeling nothing."""
    with metrics.timed("snapshot.restore"):
        ordered: List[OrderedDocument] = []
        try:
            for doc_state in state.documents:
                nodes = list(doc_state.root.iter_preorder())
                if len(nodes) != len(doc_state.labels):
                    raise SnapshotCorruptError(
                        f"snapshot holds {len(doc_state.labels)} labels for "
                        f"{len(nodes)} nodes"
                    )
                scheme = PrimeScheme(
                    reserved_primes=doc_state.generator_state[0],
                    power2_leaves=False,
                )
                scheme._generator = PrimeGenerator.from_state(
                    doc_state.generator_state
                )
                scheme._root = doc_state.root
                for node, (value, self_label) in zip(nodes, doc_state.labels):
                    scheme._set_label(
                        node, PrimeLabel(value=value, self_label=self_label)
                    )
                table = SCTable.from_groups(
                    doc_state.sc_groups, group_size=state.group_size
                )
                ordered.append(
                    OrderedDocument.from_state(doc_state.root, scheme, table)
                )
            return LiveCollection.from_ordered(
                ordered,
                group_size=state.group_size,
                strategy=state.strategy,
                total_update_cost=state.total_update_cost,
            )
        except (ValueError, OrderingError, LabelingError) as error:
            raise SnapshotCorruptError(
                f"snapshot state is internally inconsistent: {error}"
            ) from error


def collection_fingerprint(collection: LiveCollection) -> str:
    """A canonical content hash of the collection's entire durable state.

    Two collections with identical trees, labels, SC grouping, config, and
    accumulated update cost produce the same hex digest — the "byte
    identical" oracle of the crash-recovery tests.  Implemented as a
    SHA-256 of the canonical snapshot encoding at ``last_seq=0`` (the
    sequence number is bookkeeping, not state).
    """
    return hashlib.sha256(snapshot_bytes(collection, last_seq=0)).hexdigest()
