"""Checksummed full-state snapshots of a live collection.

A snapshot is everything recovery needs to resume a
:class:`~repro.query.live.LiveCollection` *exactly* where it stood:

* each document's element tree (tags, attributes, text, child order),
* each node's prime label (full value + self-label) in preorder,
* each prime generator's issuance position (so replayed inserts draw the
  same fresh primes the original run would have),
* each SC table's records — group membership, residues, and routing keys
  preserved record by record, because future ``register`` calls append to
  the last record and must see the same fill level,
* the collection's configuration (``group_size``, ``strategy``) and its
  accumulated update cost.

The file extends the RPLS binary conventions of
:mod:`repro.query.persist` (big-endian, length-prefixed strings) with
arbitrary-precision integers and a CRC32 footer over the whole body::

    magic    4 bytes b"RPSN", 1 byte version
    header   8B last_seq   8B total_update_cost
             4B group_size (0xFFFFFFFF = None)   1B+len strategy
    docs     4B count, then per document:
               tree     preorder: 2B+len tag, 4B+len text,
                        2B attr count ×(2B+len name, 2B+len value),
                        4B child count
               gen      4B reserved_limit, 4B next_reserved,
                        4B next_general, 8B issued
               labels   4B count ×(int value, int self_label)  [preorder]
               sc       4B record count, per record: 4B members,
                        int max_prime ×(int modulus, int residue)
    footer   4 bytes CRC32 of everything above

where ``int`` is, in versions 1–2, a 2-byte length + big-endian magnitude
(labels are products of primes and routinely exceed machine words) and,
in version 3, the LEB128 varint of :func:`repro.labeling.codec.write_uvarint`.
The legacy length prefix caps one integer at 64 KiB of magnitude — the v1/v2
writer now rejects larger values with a typed
:class:`~repro.errors.SnapshotCorruptError` instead of leaking a bare
``struct.error``; the varint encoding removes the limit (up to the codec's
anti-flood bound).  Version 3 additionally appends, per document, the
Opt2 leaf-allocation counters of
:meth:`repro.labeling.prime.PrimeScheme.export_state`::

    leaf     4B entry count ×(varint parent_value, varint next_index)

so a restored scheme resumes power-of-two leaf issuance exactly where the
snapshotted one stood.  Readers accept versions 1–3; writers default to 3.

Writes are atomic: the blob goes to ``<name>.tmp``, is fsynced, and is
``os.replace``d over the final name — a crash mid-snapshot leaves the
previous generation untouched.  :func:`read_snapshot` verifies the footer
before decoding a single field, so truncation and bit-flips surface as
:class:`repro.errors.SnapshotCorruptError`, never as plausible garbage.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.durable.faults import FaultInjector
from repro.errors import LabelingError, OrderingError, SnapshotCorruptError
from repro.labeling.codec import read_uvarint, write_uvarint
from repro.labeling.prime import PrimeLabel, PrimeScheme
from repro.obs import metrics
from repro.order.document import OrderedDocument
from repro.order.sc_table import SCTable
from repro.query.live import LiveCollection
from repro.query.persist import _Reader, _write_string
from repro.xmlkit.tree import XmlElement

__all__ = [
    "SnapshotState",
    "write_snapshot",
    "read_snapshot",
    "restore_collection",
    "collection_fingerprint",
]

_MAGIC = b"RPSN"
_VERSION = 3
#: Versions whose integers use the legacy 2-byte-length encoding and which
#: carry no leaf-counter section.  Layout-identical; the version byte split
#: exists so files written before and after the CRC-era conventions read
#: the same way.
_LEGACY_VERSIONS = (1, 2)
_SUPPORTED_VERSIONS = (1, 2, 3)
_NO_GROUP_SIZE = 0xFFFFFFFF

Groups = List[Tuple[int, List[Tuple[int, int]]]]


@dataclass
class DocumentState:
    """One document's decoded snapshot: tree + labels + generator + SC."""

    root: XmlElement
    labels: List[Tuple[int, int]]  # (value, self_label) in preorder
    generator_state: Tuple[int, int, int, int]
    sc_groups: Groups
    #: Opt2 leaf-allocation counters (parent label value -> next leaf
    #: index); always empty for legacy (v1/v2) snapshots.
    leaf_counters: Tuple[Tuple[int, int], ...] = ()


@dataclass
class SnapshotState:
    """A decoded snapshot, ready for :func:`restore_collection`."""

    last_seq: int
    total_update_cost: int
    group_size: Optional[int]
    strategy: str
    documents: List[DocumentState]


# ----------------------------------------------------------------------
# Encoding helpers: legacy (v1/v2) int = 2B length + big-endian magnitude;
# v3 int = LEB128 varint
# ----------------------------------------------------------------------


def _write_int(out: List[bytes], value: int) -> None:
    if value < 0:
        raise SnapshotCorruptError(f"cannot encode negative integer {value}")
    data = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    if len(data) > 0xFFFF:
        # The 2-byte length prefix tops out at 64 KiB of magnitude; without
        # this guard the struct.pack below escapes as a bare struct.error
        # from deep inside the write path.  Format v3 has no such ceiling.
        raise SnapshotCorruptError(
            f"integer of {len(data)} bytes exceeds the legacy snapshot "
            "encoding's 65535-byte field limit; write format v3 instead"
        )
    out.append(struct.pack(">H", len(data)))
    out.append(data)


def _read_int(reader: _Reader) -> int:
    (length,) = reader.unpack(">H")
    return int.from_bytes(reader.take(length), "big")


def _write_varint(out: List[bytes], value: int) -> None:
    if value < 0:
        raise SnapshotCorruptError(f"cannot encode negative integer {value}")
    buf: List[int] = []
    write_uvarint(value, buf)
    out.append(bytes(buf))


def _read_varint(reader: _Reader) -> int:
    value, reader.offset = read_uvarint(reader.blob, reader.offset)
    return value


def _write_tree(out: List[bytes], node: XmlElement) -> None:
    _write_string(out, node.tag, ">H")
    _write_string(out, node.text, ">I")
    out.append(struct.pack(">H", len(node.attributes)))
    for name, value in node.attributes.items():
        _write_string(out, name, ">H")
        _write_string(out, value, ">H")
    out.append(struct.pack(">I", len(node.children)))
    for child in node.children:
        _write_tree(out, child)


def _read_tree(reader: _Reader) -> XmlElement:
    tag = reader.string(">H")
    text = reader.string(">I")
    (attr_count,) = reader.unpack(">H")
    attributes = {}
    for _ in range(attr_count):
        name = reader.string(">H")
        attributes[name] = reader.string(">H")
    node = XmlElement(tag, attributes, text)
    (child_count,) = reader.unpack(">I")
    for _ in range(child_count):
        node.append(_read_tree(reader))
    return node


# ----------------------------------------------------------------------
# Write
# ----------------------------------------------------------------------


def snapshot_bytes(
    collection: LiveCollection, last_seq: int = 0, version: int = _VERSION
) -> bytes:
    """Encode ``collection`` as a complete snapshot blob (footer included).

    ``version`` defaults to the current format (3: varint integers plus
    the Opt2 leaf-counter section); 1 and 2 write the legacy layout and
    are kept for compatibility tests.
    """
    if version not in _SUPPORTED_VERSIONS:
        raise SnapshotCorruptError(f"cannot write snapshot version {version}")
    write_int = _write_varint if version >= 3 else _write_int
    out: List[bytes] = [_MAGIC, struct.pack(">B", version)]
    out.append(struct.pack(">QQ", last_seq, collection.total_update_cost))
    group_size = collection.group_size
    out.append(
        struct.pack(">I", _NO_GROUP_SIZE if group_size is None else group_size)
    )
    _write_string(out, collection.strategy, ">B")
    ordered = collection.ordered_documents
    out.append(struct.pack(">I", len(ordered)))
    for document in ordered:
        _write_tree(out, document.root)
        reserved, next_reserved, next_general, issued = document.scheme._generator.state()
        out.append(struct.pack(">IIIQ", reserved, next_reserved, next_general, issued))
        nodes = list(document.root.iter_preorder())
        out.append(struct.pack(">I", len(nodes)))
        for node in nodes:
            label: PrimeLabel = document.label_of(node)
            write_int(out, label.value)
            write_int(out, label.self_label)
        groups = document.sc_table.groups()
        out.append(struct.pack(">I", len(groups)))
        for max_prime, members in groups:
            out.append(struct.pack(">I", len(members)))
            write_int(out, max_prime)
            for modulus, residue in members:
                write_int(out, modulus)
                write_int(out, residue)
        if version >= 3:
            _, leaf_counters = document.scheme.export_state()
            out.append(struct.pack(">I", len(leaf_counters)))
            for parent_value, next_index in leaf_counters:
                write_int(out, parent_value)
                write_int(out, next_index)
    body = b"".join(out)
    return body + struct.pack(">I", zlib.crc32(body))


def write_snapshot(
    collection: LiveCollection,
    path: str | Path,
    last_seq: int = 0,
    faults: Optional[FaultInjector] = None,
    version: int = _VERSION,
) -> int:
    """Atomically write a snapshot of ``collection``; returns bytes written.

    ``last_seq`` is the WAL sequence number of the last operation already
    reflected in the collection — recovery replays strictly after it.
    ``version`` selects the snapshot format (see :func:`snapshot_bytes`).
    """
    with metrics.timed("snapshot.write"):
        path = Path(path)
        blob = snapshot_bytes(collection, last_seq, version=version)
        if faults is not None:
            blob = faults.on_snapshot(blob)
            # The transient-I/O hook fires before the temp file is opened,
            # so an injected failure (or stall) is always retry-safe.
            faults.on_snapshot_io(str(path))
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(blob)
            # repro: ignore[R10] -- atomic-rename protocol: the temp file
            # must be durable before os.replace or a crash could retain a
            # snapshot pointer to unwritten bytes; no fsync policy applies
            handle.flush()
            # repro: ignore[R10] -- second half of the atomic-rename fsync
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        metrics.incr("snapshot.writes")
        metrics.incr("snapshot.bytes", len(blob))
    return len(blob)


# ----------------------------------------------------------------------
# Read + restore
# ----------------------------------------------------------------------


def read_snapshot(path: str | Path) -> SnapshotState:
    """Decode and checksum-verify the snapshot at ``path``.

    Raises :class:`repro.errors.SnapshotCorruptError` on any damage —
    truncation, bit-flip, bad magic, or undecodable structure.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise SnapshotCorruptError(f"cannot read snapshot {path}: {error}") from error
    if len(blob) < len(_MAGIC) + 1 + 4:
        raise SnapshotCorruptError(f"snapshot {path} is truncated")
    (stored_crc,) = struct.unpack(">I", blob[-4:])
    body = blob[:-4]
    if zlib.crc32(body) != stored_crc:
        raise SnapshotCorruptError(
            f"snapshot {path} failed its CRC32 check (truncated or corrupt)"
        )
    try:
        state = _decode_body(body, path)
    except (
        ValueError,
        IndexError,
        UnicodeDecodeError,
        struct.error,
        LabelingError,
    ) as error:
        raise SnapshotCorruptError(f"corrupt snapshot {path}: {error}") from error
    metrics.incr("snapshot.loads")
    return state


def _decode_body(body: bytes, path: Path) -> SnapshotState:
    reader = _Reader(body)
    if reader.take(4) != _MAGIC:
        raise SnapshotCorruptError(f"{path} is not a snapshot file")
    (version,) = reader.unpack(">B")
    if version not in _SUPPORTED_VERSIONS:
        raise SnapshotCorruptError(f"unsupported snapshot version {version}")
    read_int = _read_varint if version >= 3 else _read_int
    last_seq, total_cost = reader.unpack(">QQ")
    (raw_group_size,) = reader.unpack(">I")
    group_size = None if raw_group_size == _NO_GROUP_SIZE else raw_group_size
    strategy = reader.string(">B")
    (doc_count,) = reader.unpack(">I")
    documents: List[DocumentState] = []
    for _ in range(doc_count):
        root = _read_tree(reader)
        generator_state = reader.unpack(">IIIQ")
        (label_count,) = reader.unpack(">I")
        labels = [(read_int(reader), read_int(reader)) for _ in range(label_count)]
        (group_count,) = reader.unpack(">I")
        groups: Groups = []
        for _ in range(group_count):
            (member_count,) = reader.unpack(">I")
            max_prime = read_int(reader)
            members = [
                (read_int(reader), read_int(reader)) for _ in range(member_count)
            ]
            groups.append((max_prime, members))
        leaf_counters: Tuple[Tuple[int, int], ...] = ()
        if version >= 3:
            (counter_count,) = reader.unpack(">I")
            leaf_counters = tuple(
                (read_int(reader), read_int(reader)) for _ in range(counter_count)
            )
        documents.append(
            DocumentState(
                root=root,
                labels=labels,
                generator_state=generator_state,
                sc_groups=groups,
                leaf_counters=leaf_counters,
            )
        )
    return SnapshotState(
        last_seq=last_seq,
        total_update_cost=total_cost,
        group_size=group_size,
        strategy=strategy,
        documents=documents,
    )


def restore_collection(state: SnapshotState) -> LiveCollection:
    """Rebuild a live collection from a decoded snapshot, relabeling nothing."""
    with metrics.timed("snapshot.restore"):
        ordered: List[OrderedDocument] = []
        try:
            for doc_state in state.documents:
                nodes = list(doc_state.root.iter_preorder())
                if len(nodes) != len(doc_state.labels):
                    raise SnapshotCorruptError(
                        f"snapshot holds {len(doc_state.labels)} labels for "
                        f"{len(nodes)} nodes"
                    )
                scheme = PrimeScheme(
                    reserved_primes=doc_state.generator_state[0],
                    power2_leaves=False,
                )
                scheme.restore_state(
                    doc_state.root,
                    doc_state.labels,
                    doc_state.generator_state,
                    doc_state.leaf_counters,
                )
                table = SCTable.from_groups(
                    doc_state.sc_groups, group_size=state.group_size
                )
                ordered.append(
                    OrderedDocument.from_state(doc_state.root, scheme, table)
                )
            return LiveCollection.from_ordered(
                ordered,
                group_size=state.group_size,
                strategy=state.strategy,
                total_update_cost=state.total_update_cost,
            )
        except (ValueError, OrderingError, LabelingError) as error:
            raise SnapshotCorruptError(
                f"snapshot state is internally inconsistent: {error}"
            ) from error


def collection_fingerprint(collection: LiveCollection) -> str:
    """A canonical content hash of the collection's entire durable state.

    Two collections with identical trees, labels, SC grouping, config, and
    accumulated update cost produce the same hex digest — the "byte
    identical" oracle of the crash-recovery tests.  Implemented as a
    SHA-256 of the canonical snapshot encoding at ``last_seq=0`` (the
    sequence number is bookkeeping, not state).
    """
    return hashlib.sha256(snapshot_bytes(collection, last_seq=0)).hexdigest()
