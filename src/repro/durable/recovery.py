"""Crash recovery: snapshot + WAL replay + invariant audit + fallback.

The open path of a durable collection directory::

    dir/
      wal.log            append-only update history
      snap-00000001.rpsn oldest retained snapshot generation
      snap-00000002.rpsn latest snapshot generation

Recovery protocol (see ``docs/DURABILITY.md``):

1. Scan the WAL once; a torn tail is noted (the opener truncates it).
2. Walk snapshot generations newest-first.  For each: checksum-verify and
   decode it, restore the collection, replay every WAL record with
   ``seq`` greater than the snapshot's ``last_seq`` through real
   :class:`~repro.query.live.LiveCollection` updates, then cross-check
   the result with :func:`repro.obs.audit.audit_ordered_document`.
3. The first generation that survives all of that wins.  A generation
   that fails *any* step (bad checksum, undecodable, replay error, audit
   violation) is skipped and the previous one is tried — stale-but-valid
   state always beats fresh-but-corrupt state.
4. If no generation survives, :class:`repro.errors.RecoveryError`.

Replay re-executes operations through the same code paths the original
process used; because prime issuance and SC maintenance are deterministic
functions of the starting state, the recovered collection's labels, SC
values, and query results are byte-identical to a process that never
crashed (the crash-matrix tests assert exactly this, via
:func:`repro.durable.snapshot.collection_fingerprint`).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.durable.snapshot import SnapshotState, read_snapshot, restore_collection
from repro.durable.wal import WalRecord, WalScan, scan_wal
from repro.errors import DurabilityError, RecoveryError, ReproError
from repro.obs import metrics
from repro.obs.audit import audit_ordered_document
from repro.query.live import LiveCollection
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import XmlElement

__all__ = [
    "BootstrapPoint",
    "RecoveryInfo",
    "RecoveredState",
    "apply_operation",
    "list_shard_directories",
    "read_pointer",
    "recover",
    "recover_shard",
    "resolve_bootstrap",
    "shard_directory",
    "write_pointer",
]

WAL_NAME = "wal.log"
SNAPSHOT_PATTERN = re.compile(r"^snap-(\d{8})\.rpsn$")
#: Per-shard subdirectory naming under a sharded-collection root.  Each
#: ``shard-NN/`` is a complete, self-contained durable directory (its own
#: ``wal.log`` + snapshot generations + ``CURRENT``), so shard recovery
#: is exactly single-collection recovery run against the subdirectory —
#: one shard's corruption can never spill into a sibling's state.
SHARD_DIR_PATTERN = re.compile(r"^shard-(\d{2,})$")
#: Atomic manifest naming the latest complete snapshot generation.  An
#: *external* reader (a replica bootstrapping over a shared filesystem)
#: cannot safely race ``list_generations`` against the primary's
#: checkpoint — the newest generation it lists may be half-written or
#: already deleted by the time it opens the file.  The pointer is written
#: by ``os.replace`` *after* the snapshot it names is durable, so
#: whatever JSON a reader decodes names a snapshot that was complete at
#: pointer-write time.
POINTER_NAME = "CURRENT"


def snapshot_path(directory: Path, generation: int) -> Path:
    """The canonical snapshot filename for ``generation``."""
    return Path(directory) / f"snap-{generation:08d}.rpsn"


def list_generations(directory: Path) -> List[int]:
    """Snapshot generations present in ``directory``, ascending."""
    generations = []
    for entry in directory.iterdir():
        match = SNAPSHOT_PATTERN.match(entry.name)
        if match:
            generations.append(int(match.group(1)))
    return sorted(generations)


def shard_directory(root: str | Path, shard_id: int) -> Path:
    """The canonical durable directory for ``shard_id`` under ``root``."""
    if shard_id < 0:
        raise DurabilityError(f"shard id must be non-negative, got {shard_id}")
    return Path(root) / f"shard-{shard_id:02d}"


def list_shard_directories(root: str | Path) -> List[Tuple[int, Path]]:
    """``(shard id, directory)`` pairs present under ``root``, ascending.

    Only names matching :data:`SHARD_DIR_PATTERN` count; anything else in
    the root (the shard manifest, stray files) is ignored.
    """
    root = Path(root)
    found: List[Tuple[int, Path]] = []
    if not root.is_dir():
        return found
    for entry in root.iterdir():
        match = SHARD_DIR_PATTERN.match(entry.name)
        if match and entry.is_dir():
            found.append((int(match.group(1)), entry))
    return sorted(found)


def recover_shard(
    root: str | Path, shard_id: int, verify: bool = True
) -> RecoveredState:
    """Recover one shard of a sharded collection root.

    The per-shard recovery entry point: runs the full single-collection
    protocol (:func:`recover`) against the shard's private subdirectory.
    This is what a restarted shard worker executes before rejoining the
    router, and what operators can run offline on a single sick shard.
    """
    return recover(shard_directory(root, shard_id), verify=verify)


@dataclass(frozen=True)
class BootstrapPoint:
    """An atomically-resolved "start here" for replica bootstrap."""

    generation: int
    path: Path
    last_seq: int


def write_pointer(directory: Path, generation: int, last_seq: int) -> None:
    """Atomically publish ``generation`` as the latest complete snapshot.

    Written after every checkpoint (and at create time), before stale
    generations are deleted, so a reader that decodes the pointer never
    chases a file the very same checkpoint is about to remove.
    """
    directory = Path(directory)
    pointer = {
        "generation": generation,
        "snapshot": snapshot_path(directory, generation).name,
        "last_seq": last_seq,
    }
    blob = json.dumps(pointer, sort_keys=True).encode("utf-8")
    tmp = directory / (POINTER_NAME + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        # repro: ignore[R10] -- atomic-rename protocol: the pointer must
        # be durable before os.replace or a crash could leave a pointer
        # naming a never-written snapshot; no fsync policy applies here
        handle.flush()
        # repro: ignore[R10] -- second half of the atomic-rename fsync
        os.fsync(handle.fileno())
    os.replace(tmp, directory / POINTER_NAME)
    metrics.incr("durable.pointer_writes")


def read_pointer(directory: Path) -> Optional[Dict[str, Any]]:
    """Decode the ``CURRENT`` pointer, or ``None`` when absent/corrupt.

    A corrupt pointer is not an error: the file predates this scheme or a
    crash interrupted an OS that reorders metadata — callers fall back to
    scanning generations, exactly as if the pointer did not exist.
    """
    path = Path(directory) / POINTER_NAME
    try:
        decoded = json.loads(path.read_text("utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        metrics.incr("durable.pointer_misses")
        return None
    if (
        not isinstance(decoded, dict)
        or not isinstance(decoded.get("generation"), int)
        or not isinstance(decoded.get("last_seq"), int)
    ):
        metrics.incr("durable.pointer_misses")
        return None
    return decoded


def resolve_bootstrap(
    directory: str | Path, attempts: int = 3
) -> Tuple[BootstrapPoint, SnapshotState]:
    """Atomically resolve "latest complete snapshot + its starting LSN".

    The replica-bootstrap entry point: prefers the ``CURRENT`` pointer and
    verifies the named snapshot actually decodes; when the pointer is
    missing, stale (its file was already rotated away), or corrupt, falls
    back to scanning generations newest-first.  The whole resolution
    retries up to ``attempts`` times because a checkpoint can rotate files
    between any two steps; each retry re-reads the pointer, which by then
    names the *new* complete generation.

    Raises :class:`repro.errors.RecoveryError` when no generation can be
    decoded at all.
    """
    directory = Path(directory)
    last_error: Optional[Exception] = None
    for _ in range(max(1, attempts)):
        pointer = read_pointer(directory)
        if pointer is not None:
            generation = pointer["generation"]
            path = snapshot_path(directory, generation)
            try:
                state = read_snapshot(path)
            except ReproError as error:
                # Pointer raced a rotation or names damage; fall through
                # to the generation scan and, failing that, retry.
                last_error = error
                metrics.incr("durable.bootstrap_pointer_races")
            else:
                point = BootstrapPoint(
                    generation=generation, path=path, last_seq=state.last_seq
                )
                return point, state
        try:
            generations = list_generations(directory)
        except OSError as error:
            # A missing/unreadable directory is an unrecoverable-bootstrap
            # condition, not a crash: report it as the RecoveryError below.
            last_error = error
            metrics.incr("durable.bootstrap_scan_fallbacks")
            generations = []
        for generation in reversed(generations):
            path = snapshot_path(directory, generation)
            try:
                state = read_snapshot(path)
            except ReproError as error:
                last_error = error
                metrics.incr("durable.bootstrap_scan_fallbacks")
                continue
            point = BootstrapPoint(
                generation=generation, path=path, last_seq=state.last_seq
            )
            return point, state
    raise RecoveryError(
        f"no complete snapshot generation could be resolved in {directory}"
        + (f": {last_error}" if last_error else "")
    )


@dataclass
class RecoveryInfo:
    """What recovery did, for operators and tests."""

    generation: int
    snapshot_last_seq: int
    replayed_records: int
    last_seq: int
    torn_bytes: int
    skipped_generations: List[int] = field(default_factory=list)
    audit_checks: int = 0

    def summary(self) -> str:
        """Human-readable multi-line account of how recovery proceeded."""
        lines = [
            f"recovered from snapshot generation {self.generation} "
            f"(covers seq {self.snapshot_last_seq})",
            f"replayed {self.replayed_records} WAL record(s) "
            f"up to seq {self.last_seq}",
        ]
        if self.torn_bytes:
            lines.append(f"truncated {self.torn_bytes} torn tail byte(s)")
        if self.skipped_generations:
            skipped = ", ".join(str(g) for g in self.skipped_generations)
            lines.append(f"fell back past corrupt generation(s): {skipped}")
        lines.append(f"audit: {self.audit_checks} checks, 0 violations")
        return "\n".join(lines)


@dataclass
class RecoveredState:
    """A recovered collection plus the recovery report."""

    collection: LiveCollection
    info: RecoveryInfo


def _node_at(collection: LiveCollection, doc: int, position: int) -> XmlElement:
    roots = collection.documents
    if not 0 <= doc < len(roots):
        raise DurabilityError(f"WAL references document {doc}; have {len(roots)}")
    for index, node in enumerate(roots[doc].iter_preorder()):
        if index == position:
            return node
    raise DurabilityError(
        f"WAL references preorder position {position} of document {doc}, "
        "which does not exist"
    )


def apply_operation(collection: LiveCollection, op: Dict[str, Any]) -> None:
    """Apply one decoded WAL operation to ``collection``.

    Operations address nodes by ``(document index, preorder position)`` —
    both are stable identifiers *at the moment the operation was logged*,
    and replay visits operations in logged order, so the addressing is
    exact.
    """
    kind = op.get("op")
    if kind == "insert_child":
        parent = _node_at(collection, op["doc"], op["parent"])
        collection.insert_child(parent, op["index"], tag=op["tag"])
    elif kind == "insert_before":
        reference = _node_at(collection, op["doc"], op["ref"])
        collection.insert_before(reference, tag=op["tag"])
    elif kind == "insert_after":
        reference = _node_at(collection, op["doc"], op["ref"])
        collection.insert_after(reference, tag=op["tag"])
    elif kind == "delete":
        collection.delete(_node_at(collection, op["doc"], op["node"]))
    elif kind == "add_document":
        collection.add_document(parse_document(op["xml"]))
    elif kind == "compact":
        collection.compact()
    elif kind == "batch":
        # A group commit: sub-ops replay in logged order as one unit (the
        # record is atomic under the torn-tail rule, so a half batch never
        # reaches here).  Each sub-op's address was encoded immediately
        # before it originally applied, which is exactly the state this
        # sequential replay presents.  batch_scope keeps replay's CRT cost
        # on the original group-commit footing: one solve per touched SC
        # record for the whole batch.
        with collection.batch_scope():
            for sub_op in op["ops"]:
                apply_operation(collection, sub_op)
    else:
        raise DurabilityError(f"unknown WAL operation {kind!r}")


def _replay(
    collection: LiveCollection, records: List[WalRecord], after_seq: int
) -> int:
    replayed = 0
    for record in records:
        if record.seq <= after_seq:
            continue
        apply_operation(collection, record.op)
        replayed += 1
    metrics.incr("recovery.replayed_records", replayed)
    return replayed


def _verify(collection: LiveCollection) -> int:
    """Run the deep auditor over every document; returns checks performed.

    Raises :class:`repro.errors.DurabilityError` on any violation so the
    caller treats the generation as corrupt and falls back.
    """
    checks = 0
    for index, document in enumerate(collection.ordered_documents):
        report = audit_ordered_document(document)
        checks += sum(report.checks.values())
        if not report.ok:
            raise DurabilityError(
                f"recovered document {index} failed its invariant audit:\n"
                + report.summary()
            )
    return checks


def recover(
    directory: str | Path,
    verify: bool = True,
) -> RecoveredState:
    """Recover the durable collection stored in ``directory``.

    Tries snapshot generations newest-first, replaying the WAL suffix and
    (by default) auditing the result; falls back on any corruption.  The
    WAL's torn tail, if any, is reported in the returned info — actually
    truncating it on disk is the opener's job
    (:class:`repro.durable.wal.WriteAheadLog` repairs on open).
    """
    with metrics.timed("recovery.run"):
        directory = Path(directory)
        if not directory.is_dir():
            raise RecoveryError(f"{directory} is not a durable collection directory")
        generations = list_generations(directory)
        if not generations:
            raise RecoveryError(f"{directory} holds no snapshot generations")
        scan: WalScan = scan_wal(directory / WAL_NAME)
        skipped: List[int] = []
        failures: List[str] = []
        for generation in reversed(generations):
            path = snapshot_path(directory, generation)
            try:
                state = read_snapshot(path)
                collection = restore_collection(state)
                replayed = _replay(collection, scan.records, state.last_seq)
                audit_checks = _verify(collection) if verify else 0
            except ReproError as error:
                skipped.append(generation)
                failures.append(f"generation {generation}: {error}")
                metrics.incr("recovery.snapshot_fallbacks")
                continue
            info = RecoveryInfo(
                generation=generation,
                snapshot_last_seq=state.last_seq,
                replayed_records=replayed,
                last_seq=max(scan.last_seq, state.last_seq),
                torn_bytes=scan.torn_bytes,
                skipped_generations=skipped,
                audit_checks=audit_checks,
            )
            metrics.incr("recovery.runs")
            return RecoveredState(collection=collection, info=info)
        detail = "; ".join(failures)
        raise RecoveryError(
            f"no snapshot generation in {directory} is recoverable: {detail}"
        )
