"""Append-only write-ahead log for order-sensitive collection updates.

Every mutation of a :class:`~repro.durable.collection.DurableCollection`
is appended here *before* it is applied in memory, so the complete update
history since the last snapshot can be replayed after a crash.  Replay
through real :class:`~repro.order.document.OrderedDocument` updates is
deterministic (prime issuance and SC rewrites are pure functions of the
starting state), which is what lets recovery reproduce the exact labels
and SC values of a never-crashed run.

File layout (all integers big-endian)::

    header   4 bytes magic b"RPWL", 1 byte version
    record   8 bytes seq   — monotonically increasing, +1 per record
             4 bytes len   — payload byte count
             4 bytes crc   — CRC32 over (seq ‖ len ‖ payload)
             len bytes payload — one encoded operation

The record framing (seq/len/crc) is identical in every version; the
header's version byte selects only the *payload* encoding:

* version 1 — canonical JSON (sorted keys, no whitespace),
* version 3 — the compact binary operation codec: 1 opcode byte, then the
  operation's fields as LEB128 varints (ints) and varint-length-prefixed
  UTF-8 (strings).  Batch records nest their sub-operations with the same
  grammar; opcode 0 is a varint-length-prefixed JSON fallback for shapes
  the binary codec does not know, so no payload is ever unrepresentable.

Fresh logs are written at version 3; appending to an existing log always
keeps the version its header declares, and readers accept both.

Sequence numbers are assigned by the log and never reused; a snapshot
records the last sequence it covers, so the replay suffix is "every
record with ``seq`` greater than that".

**Torn-tail rule**: a crash can leave a half-written final record (or,
under ``fsync='never'``/``'batch'``, lose several).  :func:`scan_wal`
stops at the first record that is short, fails its CRC, or breaks the
sequence chain; everything before that point is trusted, everything from
it on is dead weight and :meth:`WriteAheadLog.open`'s repair pass
truncates it.  Corruption *before* the valid tail cannot be distinguished
from a torn tail by the scanner — it simply shortens the usable prefix,
and the snapshot fallback in :mod:`repro.durable.recovery` covers the
rest.

Fsync policy decides when appended bytes are forced to disk:

* ``"always"`` — fsync after every append (no acknowledged record is ever
  lost; slowest),
* ``"batch:N"`` — fsync every N appends (bounded loss window of N-1
  acknowledged records),
* ``"never"`` — leave it to the OS (fastest; loss window unbounded until
  :meth:`~WriteAheadLog.close`, which always syncs).

**Group commit**: a batched mutation
(:meth:`~repro.durable.collection.DurableCollection.apply_batch`) logs all
of its N logical operations as *one* record whose payload is
:func:`batch_record` — ``{"op": "batch", "count": N, "ops": [...]}`` with
each element shaped exactly like a single-op record's payload.  One
append, one CRC, and (under ``"always"``) one fsync cover the whole batch,
and because the torn-tail rule discards a record atomically, recovery
replays the batch all-or-nothing — a crash mid-commit yields the
pre-batch state, never a half-applied one.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.durable.faults import FaultInjector
from repro.errors import DurabilityError, LabelingError, WalCorruptError
from repro.labeling.codec import read_uvarint, write_uvarint
from repro.obs import metrics

__all__ = [
    "FsyncPolicy",
    "SUPPORTED_WAL_VERSIONS",
    "WAL_HEADER",
    "WAL_MAGIC",
    "WalReader",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "batch_record",
    "scan_records",
    "scan_wal",
    "scan_wal_from",
    "wal_header",
]


def batch_record(ops: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The group-commit payload: N logical operations, one WAL record.

    ``ops`` are single-op payloads (same shapes the single-op write paths
    log) in application order; replay applies them in that order as one
    atomic unit.  ``count`` is redundant with ``len(ops)`` but makes raw
    log inspection cheap.
    """
    return {"op": "batch", "count": len(ops), "ops": list(ops)}

_MAGIC = b"RPWL"
#: The version fresh logs are created at (binary payloads).
_DEFAULT_VERSION = 3
#: Versions this scanner can read: 1 (JSON payloads) and 3 (binary
#: payloads; 3 to match the repo-wide format-v3 generation of the RPLS
#: store and RPSN snapshot).
SUPPORTED_WAL_VERSIONS = (1, 3)
_HEADER_LEN = 5
#: The 4 magic bytes every log starts with — public so transports that
#: ship raw WAL bytes (``repro.replica``) can validate a stream without
#: importing scanner internals; the fifth header byte is the version,
#: checked against :data:`SUPPORTED_WAL_VERSIONS`.
WAL_MAGIC = _MAGIC
#: The exact 5 header bytes of a *version-1* log, kept for callers that
#: predate multi-version headers; new code should use :func:`wal_header`
#: or validate magic and version separately.
WAL_HEADER = _MAGIC + bytes([1])
_RECORD_HEADER = struct.Struct(">QII")  # seq, payload length, crc32


def wal_header(version: int = _DEFAULT_VERSION) -> bytes:
    """The 5 header bytes of a log at ``version`` (magic ‖ version)."""
    if version not in SUPPORTED_WAL_VERSIONS:
        raise DurabilityError(f"unsupported WAL version {version}")
    return _MAGIC + bytes([version])
#: Upper bound on one payload — anything larger is treated as corruption
#: (a flipped length byte must not make the scanner swallow the file).
_MAX_PAYLOAD = 64 * 1024 * 1024


@dataclass(frozen=True)
class FsyncPolicy:
    """When to force appended bytes to stable storage.

    ``interval`` is the number of appends between fsyncs: ``1`` is the
    paper-grade ``always``, ``0`` means never (OS-buffered).  Use
    :meth:`parse` for the string forms exposed in configuration.
    """

    interval: int

    @classmethod
    def parse(cls, text: "str | FsyncPolicy") -> "FsyncPolicy":
        """Parse ``"always"`` / ``"never"`` / ``"batch:N"`` (N >= 1)."""
        if isinstance(text, FsyncPolicy):
            return text
        if text == "always":
            return cls(interval=1)
        if text == "never":
            return cls(interval=0)
        if text.startswith("batch:"):
            try:
                interval = int(text.split(":", 1)[1])
            except ValueError:
                interval = 0
            if interval >= 1:
                return cls(interval=interval)
        raise DurabilityError(
            f"unknown fsync policy {text!r}; use 'always', 'never', or 'batch:N'"
        )

    def due(self, pending_appends: int) -> bool:
        """Whether ``pending_appends`` unsynced records warrant an fsync."""
        return self.interval > 0 and pending_appends >= self.interval

    def __str__(self) -> str:
        if self.interval == 1:
            return "always"
        if self.interval == 0:
            return "never"
        return f"batch:{self.interval}"


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: its sequence number, operation, and span."""

    seq: int
    op: Dict[str, Any]
    end_offset: int  # file offset one past this record's last byte


@dataclass
class WalScan:
    """Result of scanning a log file: the valid prefix plus tail damage.

    ``stop_reason`` says *why* the scan stopped, which is what lets a
    live tailer tell a half-written record racing the writer (``"short"``
    — come back later) apart from real damage (``"crc"``, ``"chain"``,
    ``"decode"``, ``"oversize"``).  ``"clean"`` means the scan consumed
    the file exactly to its last byte.
    """

    records: List[WalRecord]
    valid_bytes: int  # offset of the first byte the scanner distrusts
    total_bytes: int
    stop_reason: str = "clean"
    #: Payload-format version of the scanned stream (1 when scanning
    #: empty/headerless data, where no payload was ever decoded).
    version: int = 1

    @property
    def torn_bytes(self) -> int:
        """How many trailing bytes fail validation (0 for a clean log)."""
        return self.total_bytes - self.valid_bytes

    @property
    def last_seq(self) -> int:
        """Sequence number of the last valid record (0 for an empty log)."""
        return self.records[-1].seq if self.records else 0


# ----------------------------------------------------------------------
# Payload codecs: v1 = canonical JSON, v3 = binary opcode + varints
# ----------------------------------------------------------------------

_OPCODES = {
    "insert_child": 1,
    "insert_before": 2,
    "insert_after": 3,
    "delete": 4,
    "add_document": 5,
    "compact": 6,
    "batch": 7,
}
_OP_NAMES = {code: name for name, code in _OPCODES.items()}
#: Field order and type per binary-encodable operation (batch is special-
#: cased).  An op whose keys or types stray from its shape falls back to
#: the JSON opcode so nothing is silently dropped or coerced.
_OP_FIELDS = {
    "insert_child": (("doc", int), ("parent", int), ("index", int), ("tag", str)),
    "insert_before": (("doc", int), ("ref", int), ("tag", str)),
    "insert_after": (("doc", int), ("ref", int), ("tag", str)),
    "delete": (("doc", int), ("node", int)),
    "add_document": (("xml", str),),
    "compact": (),
}


def _matches_shape(op: Dict[str, Any], fields) -> bool:
    if set(op) != {"op", *(name for name, _ in fields)}:
        return False
    for name, kind in fields:
        value = op[name]
        if kind is int:
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                return False
        elif not isinstance(value, str):
            return False
    return True


def _write_bytes_field(out: bytearray, data: bytes) -> None:
    write_uvarint(len(data), out)
    out.extend(data)


def _encode_op_v3(op: Dict[str, Any], out: bytearray, depth: int = 0) -> None:
    kind = op.get("op")
    fields = _OP_FIELDS.get(kind)
    if fields is not None and _matches_shape(op, fields):
        out.append(_OPCODES[kind])
        for name, field_kind in fields:
            if field_kind is int:
                write_uvarint(op[name], out)
            else:
                _write_bytes_field(out, op[name].encode("utf-8"))
        return
    if (
        depth == 0
        and kind == "batch"
        and set(op) == {"op", "count", "ops"}
        and isinstance(op.get("ops"), list)
        and op.get("count") == len(op["ops"])
        and all(isinstance(sub, dict) for sub in op["ops"])
    ):
        out.append(_OPCODES["batch"])
        write_uvarint(len(op["ops"]), out)
        for sub in op["ops"]:
            _encode_op_v3(sub, out, depth=1)
        return
    # JSON fallback (opcode 0) for shapes the binary grammar doesn't
    # cover; length-prefixed so it stays self-delimiting inside a batch.
    out.append(0)
    _write_bytes_field(
        out, json.dumps(op, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def _decode_op_v3(payload: bytes, offset: int, depth: int = 0):
    if offset >= len(payload):
        raise ValueError("truncated v3 operation")
    opcode = payload[offset]
    offset += 1
    if opcode == 0:
        length, offset = read_uvarint(payload, offset)
        if length > len(payload) - offset:
            raise ValueError("truncated JSON-fallback operation")
        op = json.loads(payload[offset : offset + length].decode("utf-8"))
        if not isinstance(op, dict) or "op" not in op:
            raise ValueError("fallback payload is not an operation object")
        return op, offset + length
    name = _OP_NAMES.get(opcode)
    if name is None:
        raise ValueError(f"unknown v3 opcode {opcode}")
    if name == "batch":
        if depth:
            raise ValueError("nested batch records are not valid")
        count, offset = read_uvarint(payload, offset)
        if count > len(payload) - offset:  # every sub-op costs >= 1 byte
            raise ValueError(f"batch claims {count} ops beyond the payload")
        ops = []
        for _ in range(count):
            sub, offset = _decode_op_v3(payload, offset, depth=1)
            ops.append(sub)
        return {"op": "batch", "count": count, "ops": ops}, offset
    op: Dict[str, Any] = {"op": name}
    for field, field_kind in _OP_FIELDS[name]:
        if field_kind is int:
            value, offset = read_uvarint(payload, offset)
        else:
            length, offset = read_uvarint(payload, offset)
            if length > len(payload) - offset:
                raise ValueError("truncated string field")
            value = payload[offset : offset + length].decode("utf-8")
            offset += length
        op[field] = value
    return op, offset


def _encode_payload(op: Dict[str, Any], version: int = 1) -> bytes:
    if version >= 3:
        out = bytearray()
        _encode_op_v3(op, out)
        return bytes(out)
    # Canonical JSON: sorted keys, no whitespace — byte-stable across runs
    # so fingerprints of equivalent logs agree.
    return json.dumps(op, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _decode_payload(payload: bytes, version: int) -> Dict[str, Any]:
    """Decode one record payload; raises ``ValueError`` family on damage."""
    if version >= 3:
        op, end = _decode_op_v3(payload, 0)
        if end != len(payload):
            raise ValueError(f"{len(payload) - end} trailing bytes after v3 op")
        return op
    op = json.loads(payload.decode("utf-8"))
    if not isinstance(op, dict) or "op" not in op:
        raise ValueError("payload is not an operation object")
    return op


def _scan_suffix(
    buffer: bytes, base: int, total: int, expected_seq: Optional[int], version: int = 1
) -> WalScan:
    """Decode records from ``buffer``, whose first byte sits at file
    offset ``base``; ``total`` is the file's full size.  Shared by the
    whole-file :func:`scan_wal` and the incremental :func:`scan_wal_from`.
    """
    records: List[WalRecord] = []
    pos = 0
    reason = "clean"
    while True:
        if pos + _RECORD_HEADER.size > len(buffer):
            if pos < len(buffer):
                reason = "short"  # partial record header at the tail
            break
        seq, length, crc = _RECORD_HEADER.unpack_from(buffer, pos)
        payload_start = pos + _RECORD_HEADER.size
        if length > _MAX_PAYLOAD:
            reason = "oversize"  # flipped length byte, not a torn write
            break
        if payload_start + length > len(buffer):
            reason = "short"  # payload not fully on disk (yet)
            break
        payload = buffer[payload_start : payload_start + length]
        if zlib.crc32(buffer[pos : pos + 12] + payload) != crc:
            reason = "crc"
            break
        if expected_seq is not None and seq != expected_seq:
            reason = "chain"
            break
        try:
            op = _decode_payload(payload, version)
        except (UnicodeDecodeError, ValueError, LabelingError):
            reason = "decode"
            break
        pos = payload_start + length
        records.append(WalRecord(seq=seq, op=op, end_offset=base + pos))
        expected_seq = seq + 1
    return WalScan(
        records=records,
        valid_bytes=base + pos,
        total_bytes=total,
        stop_reason=reason,
        version=version,
    )


def scan_records(
    buffer: bytes,
    base: int,
    total: int,
    expected_seq: Optional[int] = None,
    version: int = 1,
) -> WalScan:
    """Decode shipped WAL bytes that are *not* on a local filesystem.

    The replication tailer receives raw byte ranges over a transport;
    this applies the exact same record validation as :func:`scan_wal`
    (CRC, chain, torn-tail rules) to an in-memory buffer whose first byte
    sits at file offset ``base``.  ``total`` is the primary's file size
    as reported alongside the bytes; ``version`` is the payload format the
    stream's header declared (the tailer learns it at offset 0).
    """
    return _scan_suffix(buffer, base, total, expected_seq, version)


def scan_wal(path: str | Path) -> WalScan:
    """Read every trustworthy record of the log at ``path``.

    Raises :class:`repro.errors.WalCorruptError` when the *header* is
    damaged (nothing in the file can be trusted); per the torn-tail rule,
    record-level damage is never an error — scanning just stops there.
    A missing file scans as empty.
    """
    path = Path(path)
    if not path.exists():
        return WalScan(records=[], valid_bytes=0, total_bytes=0)
    blob = path.read_bytes()
    if len(blob) < _HEADER_LEN:
        # A crash while creating the log can leave a short header; there
        # are no records to lose, so treat it as empty-and-repairable.
        return WalScan(
            records=[],
            valid_bytes=0,
            total_bytes=len(blob),
            stop_reason="short" if blob else "clean",
        )
    if blob[:4] != _MAGIC:
        raise WalCorruptError(f"{path} is not a write-ahead log")
    if blob[4] not in SUPPORTED_WAL_VERSIONS:
        raise WalCorruptError(f"unsupported WAL version {blob[4]} in {path}")
    return _scan_suffix(blob[_HEADER_LEN:], _HEADER_LEN, len(blob), None, blob[4])


def scan_wal_from(
    path: str | Path, offset: int, expected_seq: Optional[int] = None
) -> WalScan:
    """Scan only the records at file offsets ``>= offset``.

    The incremental half of the scanner: a tailer that has already
    consumed the prefix passes the ``valid_bytes`` of its previous scan
    (and the next sequence number it expects) and pays only for the
    unread suffix.  ``offset`` below the header length degrades to a
    full :func:`scan_wal` (which also validates the header).  ``offset``
    beyond the end of the file scans as empty with ``stop_reason``
    ``"clean"`` — the caller detects shrinkage by comparing sizes.
    """
    path = Path(path)
    if offset < _HEADER_LEN:
        scan = scan_wal(path)
        if expected_seq is not None and scan.records:
            if scan.records[0].seq != expected_seq:
                return WalScan(
                    records=[],
                    valid_bytes=_HEADER_LEN,
                    total_bytes=scan.total_bytes,
                    stop_reason="chain",
                )
        return scan
    if not path.exists():
        return WalScan(records=[], valid_bytes=offset, total_bytes=0)
    with open(path, "rb") as handle:
        size = handle.seek(0, os.SEEK_END)
        if offset >= size:
            # Nothing new — or the file shrank under us (reset/prune
            # rewrote it); ``total_bytes < offset`` signals the latter.
            return WalScan(records=[], valid_bytes=offset, total_bytes=size)
        # The suffix's payload encoding is dictated by the file header, so
        # an incremental scan still reads the 5 header bytes.
        handle.seek(0)
        head = handle.read(_HEADER_LEN)
        if len(head) < _HEADER_LEN or head[:4] != _MAGIC:
            raise WalCorruptError(f"{path} is not a write-ahead log")
        if head[4] not in SUPPORTED_WAL_VERSIONS:
            raise WalCorruptError(f"unsupported WAL version {head[4]} in {path}")
        handle.seek(offset)
        suffix = handle.read()
    return _scan_suffix(suffix, offset, offset + len(suffix), expected_seq, head[4])


class WriteAheadLog:
    """The append half of the log (reading goes through :func:`scan_wal`).

    Opening an existing log scans it, truncates any torn tail in place,
    and resumes sequence numbering after the last valid record.  An
    existing log also fixes the payload format: appended records must be
    decodable by the version its header declares, so :attr:`version`
    follows the file and the ``version`` argument only applies to logs
    created fresh (default: version 3, binary payloads).
    """

    def __init__(
        self,
        path: str | Path,
        fsync: "str | FsyncPolicy" = "always",
        faults: Optional[FaultInjector] = None,
        version: Optional[int] = None,
    ):
        if version is not None and version not in SUPPORTED_WAL_VERSIONS:
            raise DurabilityError(f"unsupported WAL version {version}")
        self.path = Path(path)
        self.policy = FsyncPolicy.parse(fsync)
        self.faults = faults or FaultInjector()
        scan = scan_wal(self.path)
        if scan.torn_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            metrics.incr("wal.torn_tail_truncations")
            metrics.incr("wal.torn_tail_bytes", scan.torn_bytes)
        fresh = scan.valid_bytes == 0
        #: Payload-format version every append encodes with.
        self.version = (
            (version if version is not None else _DEFAULT_VERSION)
            if fresh
            else scan.version
        )
        self._handle = open(self.path, "ab")
        if fresh:
            self._handle.write(wal_header(self.version))
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._next_seq = scan.last_seq + 1
        self._pending = 0
        self._closed = False
        #: File offset a failed rollback could not truncate to; ``reopen``
        #: finishes the repair before trusting the tail again.
        self._poisoned: Optional[int] = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next append will receive."""
        return self._next_seq

    def append(self, op: Dict[str, Any]) -> int:
        """Append one operation record; returns its sequence number.

        The record is on disk (or at least handed to the OS, per the fsync
        policy) when this returns — callers apply the operation in memory
        only afterwards, the "log before apply" contract recovery needs.

        A *transient* failure (an ``OSError`` from the storage layer or an
        injected one, as opposed to an :class:`InjectedCrash` simulating
        process death) rolls the file back to its pre-append length before
        re-raising, so the append is atomic: either the caller gets the
        sequence number or the record is absent and a retry cannot create
        a duplicate that replay would apply twice.
        """
        if self._closed:
            raise WalCorruptError("write-ahead log is closed")
        from repro.durable.faults import InjectedCrash

        with metrics.timed("wal.append"):
            payload = _encode_payload(op, self.version)
            seq = self._next_seq
            header = _RECORD_HEADER.pack(
                seq, len(payload), zlib.crc32(header_prefix(seq, payload))
            )
            blob = header + payload
            start = self._handle.tell()
            try:
                to_write = self.faults.on_append(seq, blob)
                written = len(to_write)
                if written:
                    self._handle.write(to_write)
                    self._handle.flush()
                if written < len(blob):
                    # A torn write is a crash: the record never happened as
                    # far as recovery is concerned; this process is done for.
                    raise InjectedCrash(
                        f"torn append of record {seq}: {written}/{len(blob)} bytes"
                    )
                self.faults.after_write(seq)
                self._next_seq += 1
                self._pending += 1
                metrics.incr("wal.appends")
                metrics.incr("wal.append_bytes", len(blob))
                if self.policy.due(self._pending):
                    self.sync()
            except InjectedCrash:
                raise  # simulated power cut: on-disk bytes stay exactly as-is
            except Exception:
                self._rollback(start, seq)
                raise
        return seq

    def _rollback(self, offset: int, seq: int) -> None:
        """Best-effort truncate back to ``offset`` after a failed append.

        Makes the append atomic under transient faults: without this, a
        record whose bytes landed but whose acknowledgement did not (an
        fsync or post-write error) would be duplicated by a retry and
        applied twice on replay.  When the truncate itself fails the
        offset is remembered as poisoned and :meth:`reopen` finishes the
        repair.
        """
        try:
            self._handle.flush()
        except OSError:
            pass
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            self._poisoned = offset
            return
        if self._next_seq > seq:
            # sync() failed after the bookkeeping advanced; rewind it.
            self._next_seq = seq
            self._pending = max(0, self._pending - 1)
        metrics.incr("wal.append_rollbacks")

    def sync(self) -> None:
        """Force everything appended so far to stable storage.

        The fault hook fires between the flush and the ``fsync`` — the
        boundary where a dying disk actually fails — so an injected
        ``OSError`` leaves the unsynced count intact and a later sync
        retries the full tail.
        """
        if self._closed:
            return
        self._handle.flush()
        self.faults.on_sync(self._pending)
        os.fsync(self._handle.fileno())
        self._pending = 0
        metrics.incr("wal.fsyncs")

    def close(self) -> None:
        """Sync and close; further appends raise.

        The handle is closed and the log marked closed even when the
        final sync fails — the error still propagates, but a ``close``
        in an exception path can never leak the file descriptor or leave
        the object half-usable.  Under ``batch:N`` policies this final
        sync is what flushes the un-synced tail of a partial batch.
        """
        if self._closed:
            return
        try:
            self.sync()
        finally:
            try:
                self._handle.close()
            except OSError:
                pass
            self._closed = True

    def reopen(self) -> None:
        """Discard the handle, repair the file in place, resume appending.

        The resilient layer calls this after any transient storage fault
        before retrying: it truncates a poisoned tail a failed rollback
        left behind, then a torn tail if any, and re-chains the sequence
        counter to the last valid record — so a retried append extends
        the trustworthy prefix instead of writing an unreachable record
        after damage.
        """
        if self._closed:
            raise WalCorruptError("write-ahead log is closed")
        try:
            self._handle.close()
        except OSError:
            pass
        if self._poisoned is not None and self.path.exists():
            with open(self.path, "r+b") as handle:
                handle.truncate(min(self._poisoned, os.path.getsize(self.path)))
                handle.flush()
                os.fsync(handle.fileno())
        self._poisoned = None
        scan = scan_wal(self.path)
        if scan.torn_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            metrics.incr("wal.torn_tail_truncations")
            metrics.incr("wal.torn_tail_bytes", scan.torn_bytes)
        self._handle = open(self.path, "ab")
        if scan.valid_bytes == 0:
            self._handle.write(wal_header(self.version))
            self._handle.flush()
            os.fsync(self._handle.fileno())
        # Chain strictly after the last surviving record: a gap would make
        # the scanner distrust everything appended from here on.
        self._next_seq = scan.last_seq + 1
        self._pending = 0
        metrics.incr("wal.reopens")

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def reset(self, next_seq: int) -> None:
        """Discard every record and resume numbering at ``next_seq``.

        Needed when a snapshot covers sequence numbers the log no longer
        holds (an unsynced tail died with the page cache under
        ``fsync='never'``/``'batch'``): appending with a *reused* number
        would make recovery's "replay strictly after the snapshot" filter
        silently drop the new record.  The stale records cannot help any
        retained snapshot generation once state has moved past them, so
        the log restarts empty at a safe number.  (The scanner accepts an
        arbitrary first sequence number; only consecutive records must
        chain.)
        """
        if self._closed:
            raise WalCorruptError("write-ahead log is closed")
        if next_seq < self._next_seq:
            raise ValueError(
                f"reset cannot move the sequence backwards "
                f"({next_seq} < {self._next_seq})"
            )
        self._handle.close()
        with open(self.path, "wb") as handle:
            handle.write(wal_header(self.version))
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")
        self._next_seq = next_seq
        self._pending = 0
        metrics.incr("wal.resets")

    def prune(self, keep_after_seq: int) -> int:
        """Drop records with ``seq <= keep_after_seq``; returns bytes freed.

        Called after a checkpoint: records already covered by the oldest
        *retained* snapshot generation can never be replayed again.  The
        log is rewritten to a temp file and atomically renamed, so a crash
        mid-prune leaves either the old or the new log — never a hybrid.
        """
        scan = scan_wal(self.path)
        kept = [record for record in scan.records if record.seq > keep_after_seq]
        if len(kept) == len(scan.records):
            return 0
        out = [wal_header(self.version)]
        for record in kept:
            payload = _encode_payload(record.op, self.version)
            out.append(
                _RECORD_HEADER.pack(
                    record.seq,
                    len(payload),
                    zlib.crc32(header_prefix(record.seq, payload)),
                )
                + payload
            )
        tmp = self.path.with_name(self.path.name + ".tmp")
        blob = b"".join(out)
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp, self.path)
        self._handle = open(self.path, "ab")
        freed = scan.valid_bytes - len(blob)
        metrics.incr("wal.pruned_records", len(scan.records) - len(kept))
        metrics.incr("wal.pruned_bytes", freed)
        return freed

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class WalReader:
    """Incremental, read-only cursor over a WAL file.

    The replication tailer polls the primary's log many times per second;
    re-reading the whole file each poll would make shipping cost quadratic
    in history length.  A reader remembers the offset and sequence number
    of the last record it trusted and each :meth:`poll` (or
    :meth:`last_lsn`) scans only the unread suffix.  It also notices when
    the file shrank — :meth:`WriteAheadLog.reset` and
    :meth:`WriteAheadLog.prune` rewrite the log in place — and restarts
    from the header so the caller sees a coherent stream again.

    Readers never write: repair of a torn tail is the owner's job
    (:meth:`WriteAheadLog.reopen`); a reader merely refuses to trust the
    bytes, reporting *why* via :attr:`last_stop_reason` so a live tailer
    can tell "writer mid-append, try again" (``"short"``) from damage.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._offset = 0  # 0 = header not yet validated
        self._last_seq = 0
        self._last_stop_reason = "clean"

    @property
    def offset(self) -> int:
        """File offset one past the last record this reader trusted."""
        return self._offset

    @property
    def last_stop_reason(self) -> str:
        """``stop_reason`` of the most recent scan (``"clean"`` initially)."""
        return self._last_stop_reason

    def read_from(self, offset: int, expected_seq: Optional[int] = None) -> WalScan:
        """One-shot scan from ``offset`` without touching the cursor.

        For callers that manage their own position (the tailer keeps its
        applied-LSN durable elsewhere); :meth:`poll` is the cursor-ful
        variant.
        """
        return scan_wal_from(self.path, offset, expected_seq)

    def poll(self) -> WalScan:
        """Scan the unread suffix and advance the cursor past it.

        Returns only the *new* records since the previous poll.  When the
        file shrank (the owner reset or pruned it) the cursor rewinds to
        the header and the scan restarts from the first surviving record,
        so the same poll can return records whose sequence numbers the
        caller has already applied — callers filter by their applied LSN.
        """
        size = os.path.getsize(self.path) if self.path.exists() else 0
        if size < self._offset:
            metrics.incr("wal.reader_rewinds")
            self._offset = 0
            self._last_seq = 0
        expected = self._last_seq + 1 if self._offset > 0 and self._last_seq else None
        scan = scan_wal_from(self.path, self._offset, expected)
        self._last_stop_reason = scan.stop_reason
        if scan.records:
            self._offset = scan.valid_bytes
            self._last_seq = scan.records[-1].seq
        elif self._offset == 0 and scan.valid_bytes >= _HEADER_LEN:
            self._offset = scan.valid_bytes
        return scan

    def last_lsn(self) -> int:
        """Sequence number of the last valid record, scanning only the
        suffix appended since this reader last looked (0 for empty)."""
        self.poll()
        return self._last_seq


def header_prefix(seq: int, payload: bytes) -> bytes:
    """The CRC32 input for one record: seq ‖ len ‖ payload.

    The checksum covers the header fields *and* the payload so a flipped
    sequence or length byte is caught exactly like flipped content.
    """
    return struct.pack(">QI", seq, len(payload)) + payload
