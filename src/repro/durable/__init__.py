"""Durability subsystem: WAL, checksummed snapshots, crash recovery.

The paper's labeling scheme is pitched at *dynamic* documents, and a
dynamic store that forgets everything on process death is a toy.  This
package makes a :class:`~repro.query.live.LiveCollection` durable:

* :mod:`repro.durable.wal` — append-only, CRC32-checksummed write-ahead
  log of every order-sensitive update, with configurable fsync policy,
* :mod:`repro.durable.snapshot` — atomic, checksummed full-state
  snapshots (trees + prime labels + generator positions + SC grouping),
* :mod:`repro.durable.recovery` — snapshot load + WAL replay + invariant
  audit, with fallback to the previous snapshot generation on corruption,
* :mod:`repro.durable.collection` — :class:`DurableCollection`, the
  log-before-apply wrapper tying it together,
* :mod:`repro.durable.faults` — injectable crashes, torn writes, and bit
  flips, so all of the above is actually exercised under failure.

See ``docs/DURABILITY.md`` for the design rationale and fault matrix.
"""

from repro.durable.collection import DurableCollection
from repro.durable.faults import (
    CorruptSnapshotWrite,
    CrashAfterAppends,
    CrashBeforeFsync,
    FaultInjector,
    InjectedCrash,
    TornAppend,
    flip_bit,
    truncate_file,
)
from repro.durable.recovery import (
    BootstrapPoint,
    RecoveredState,
    RecoveryInfo,
    list_shard_directories,
    read_pointer,
    recover,
    recover_shard,
    resolve_bootstrap,
    shard_directory,
    write_pointer,
)
from repro.durable.snapshot import (
    SnapshotState,
    collection_fingerprint,
    read_snapshot,
    restore_collection,
    write_snapshot,
)
from repro.durable.wal import (
    FsyncPolicy,
    WalReader,
    WalRecord,
    WalScan,
    WriteAheadLog,
    batch_record,
    scan_wal,
    scan_wal_from,
)

__all__ = [
    "BootstrapPoint",
    "DurableCollection",
    "FaultInjector",
    "InjectedCrash",
    "CrashAfterAppends",
    "TornAppend",
    "CrashBeforeFsync",
    "CorruptSnapshotWrite",
    "flip_bit",
    "truncate_file",
    "RecoveredState",
    "RecoveryInfo",
    "list_shard_directories",
    "read_pointer",
    "recover",
    "recover_shard",
    "resolve_bootstrap",
    "shard_directory",
    "write_pointer",
    "SnapshotState",
    "collection_fingerprint",
    "read_snapshot",
    "restore_collection",
    "write_snapshot",
    "FsyncPolicy",
    "WalReader",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "batch_record",
    "scan_wal",
    "scan_wal_from",
]
