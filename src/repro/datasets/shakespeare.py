"""Synthetic Shakespeare-play documents.

The D8 dataset and the response-time / ordered-update experiments
(Sections 5.2 and 5.4) run on the Shakespeare plays in XML (Jon Bosak's
markup): ``PLAY`` holding ``TITLE``, ``PERSONAE`` (with ``PERSONA``
children) and five ``ACT``s, each with ``TITLE`` and ``SCENE``s, each scene
holding ``SPEECH``es of a ``SPEAKER`` plus ``LINE``s.

The generator reproduces that hierarchy with play-to-play variation in
scene/speech/line counts.  What the experiments need — the tag structure,
five ordered acts, speech-heavy bulk — is preserved; the verse is synthetic.

``play(..., node_budget=n)`` grows a single play to an exact element count
(used for the Hamlet-sized document of Figure 18), and
:func:`shakespeare_corpus` builds the multi-play collection (optionally
replicated, "we replicate the Shakespeare's Play dataset 5 times").
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import DatasetError
from repro.xmlkit.tree import XmlElement

__all__ = ["play", "hamlet", "shakespeare_corpus"]

_SPEAKERS = (
    "HAMLET", "CLAUDIUS", "GERTRUDE", "OPHELIA", "POLONIUS",
    "HORATIO", "LAERTES", "ROSENCRANTZ", "GUILDENSTERN", "GHOST",
)

_WORDS = (
    "thus", "conscience", "does", "make", "cowards", "of", "us", "all",
    "and", "enterprises", "great", "pith", "moment", "with", "this",
    "regard", "their", "currents", "turn", "awry",
)


def _line_text(rng: random.Random) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(5, 9)))


def _make_speech(rng: random.Random, lines: int) -> XmlElement:
    speech = XmlElement("SPEECH")
    speech.append(XmlElement("SPEAKER", text=rng.choice(_SPEAKERS)))
    for _ in range(lines):
        speech.append(XmlElement("LINE", text=_line_text(rng)))
    return speech


def play(
    seed: int = 0,
    title: str = "The Tragedy of Synthesis",
    acts: int = 5,
    node_budget: int | None = None,
) -> XmlElement:
    """Build one play.

    Without ``node_budget`` the play has naturally varying sizes (roughly
    1–3 thousand element nodes).  With a budget the speech/line counts are
    grown until the element count is exactly ``node_budget``.
    """
    if acts < 1:
        raise DatasetError(f"a play needs at least one act, got {acts}")
    rng = random.Random(seed)
    root = XmlElement("PLAY")
    root.append(XmlElement("TITLE", text=title))
    personae = root.append(XmlElement("PERSONAE"))
    for speaker in rng.sample(_SPEAKERS, k=rng.randint(5, len(_SPEAKERS))):
        personae.append(XmlElement("PERSONA", text=speaker))
    scenes_per_act = [rng.randint(2, 5) for _ in range(acts)]
    for act_number, scene_count in enumerate(scenes_per_act, start=1):
        act = root.append(XmlElement("ACT"))
        act.append(XmlElement("TITLE", text=f"ACT {act_number}"))
        # A per-act cast list (the characters appearing in the act) keeps
        # Q3 (`/PLAY//ACT//PERSONA`) non-trivial, as it is in the paper.
        act_personae = act.append(XmlElement("PERSONAE"))
        for speaker in rng.sample(_SPEAKERS, k=rng.randint(2, 5)):
            act_personae.append(XmlElement("PERSONA", text=speaker))
        for scene_number in range(1, scene_count + 1):
            scene = act.append(XmlElement("SCENE"))
            scene.append(
                XmlElement("TITLE", text=f"SCENE {scene_number}. A synthetic place.")
            )
            for _ in range(rng.randint(4, 10)):
                scene.append(_make_speech(rng, rng.randint(1, 6)))
    if node_budget is not None:
        _grow_to_budget(root, rng, node_budget)
    return root


def _grow_to_budget(root: XmlElement, rng: random.Random, node_budget: int) -> None:
    current = root.stats().node_count
    if current > node_budget:
        raise DatasetError(
            f"play already has {current} nodes, above the budget {node_budget}"
        )
    scenes = root.find_by_tag("SCENE")
    # Add whole speeches (3 nodes minimum each) while they fit, then pad the
    # last speech with single lines for an exact landing.
    while node_budget - current >= 3:
        scene = rng.choice(scenes)
        lines = min(rng.randint(1, 6), node_budget - current - 2)
        scene.append(_make_speech(rng, lines))
        current += 2 + lines
    speeches = root.find_by_tag("SPEECH")
    while current < node_budget:
        rng.choice(speeches).append(XmlElement("LINE", text=_line_text(rng)))
        current += 1


def hamlet(seed: int = 8) -> XmlElement:
    """A Hamlet-sized play: exactly 6636 element nodes (Table 1's D8 max),
    five acts — the document the Figure 18 experiment inserts ACTs into."""
    return play(seed=seed, title="The Tragedy of Hamlet, Prince of Denmark",
                acts=5, node_budget=6636)


def shakespeare_corpus(
    plays: int = 37, seed: int = 100, replicate: int = 1
) -> List[XmlElement]:
    """The play collection: ``plays`` distinct plays, ``replicate`` copies
    of each (the paper replicates D8 five times for the query experiment).

    Returns a list of independent document roots (the Niagara setting is a
    multi-document repository; queries union over documents).
    """
    if plays < 1 or replicate < 1:
        raise DatasetError("plays and replicate must both be >= 1")
    documents: List[XmlElement] = []
    act_rng = random.Random(seed)
    for play_index in range(plays):
        # Act counts vary 3..7 across plays (histories have extra parts,
        # shorter plays fewer acts), so positional queries such as
        # ``/ACT[5]//Following::ACT`` select real work.
        original = play(
            seed=seed + play_index,
            title=f"Play {play_index + 1}",
            acts=act_rng.randint(3, 7),
        )
        documents.append(original)
        for _ in range(replicate - 1):
            documents.append(original.copy())
    return documents
