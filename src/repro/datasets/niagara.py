"""Synthetic stand-ins for the Niagara repository datasets D1–D9 (Table 1).

Each dataset is generated from a DTD-like schema (see
:mod:`repro.datasets.dtd`) tuned to the structural notes in the paper:

* the node counts match Table 1 exactly;
* D4 (*Actor*) concentrates its budget in one huge filmography fan-out —
  "this dataset has a huge fan-out. As a result, the prefix labeling
  scheme suffers badly" (Section 5.1.2);
* D7 (*NASA*) is deep with low fan-out — "ideal for the prefix labeling
  scheme";
* the rest are mid-shaped, DTD-conformant documents with heavy repeated
  patterns, the food of optimization Opt3.

Generation is deterministic: ``build_dataset("D4")`` always returns the
identical tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets.dtd import SchemaElement, expand_schema
from repro.datasets.shakespeare import play
from repro.errors import DatasetError
from repro.xmlkit.tree import XmlElement

__all__ = [
    "DatasetSpec",
    "DATASET_NAMES",
    "dataset_spec",
    "build_dataset",
    "build_collection",
    "table1_rows",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one Table 1 dataset."""

    name: str
    topic: str
    max_nodes: int
    root_tag: str
    schema: Tuple[SchemaElement, ...]
    seed: int


def _sigmod_schema() -> Tuple[SchemaElement, ...]:
    return (
        SchemaElement("SigmodRecord", (("issue", 1, 3),)),
        SchemaElement("issue", (("volume", 1, 1), ("number", 1, 1), ("articles", 1, 1))),
        SchemaElement("volume", text=True),
        SchemaElement("number", text=True),
        SchemaElement("articles", (("article", 1, 40),)),
        SchemaElement(
            "article",
            (("title", 1, 1), ("initPage", 1, 1), ("endPage", 1, 1), ("authors", 1, 1)),
        ),
        SchemaElement("title", text=True),
        SchemaElement("initPage", text=True),
        SchemaElement("endPage", text=True),
        SchemaElement("authors", (("author", 1, 6),)),
        SchemaElement("author", text=True),
    )


def _movie_schema() -> Tuple[SchemaElement, ...]:
    return (
        SchemaElement("movies", (("movie", 1, 60),)),
        SchemaElement(
            "movie",
            (("title", 1, 1), ("year", 1, 1), ("genre", 1, 3), ("cast", 0, 1)),
        ),
        SchemaElement("title", text=True),
        SchemaElement("year", text=True),
        SchemaElement("genre", text=True),
        SchemaElement("cast", (("actor", 1, 8),)),
        SchemaElement("actor", text=True),
    )


def _club_schema() -> Tuple[SchemaElement, ...]:
    return (
        SchemaElement("club", (("name", 1, 1), ("member", 1, 400),)),
        SchemaElement("name", text=True),
        SchemaElement(
            "member",
            (("name", 1, 1), ("email", 0, 1), ("phone", 0, 2)),
        ),
        SchemaElement("email", text=True),
        SchemaElement("phone", text=True),
    )


def _actor_schema() -> Tuple[SchemaElement, ...]:
    # One actor, one filmography element, and a movie fan-out that swallows
    # nearly the whole budget: max fan-out ends up above 1000.
    return (
        SchemaElement("actor", (("name", 1, 1), ("filmography", 1, 1))),
        SchemaElement("name", text=True),
        SchemaElement("filmography", (("movie", 1, 100_000),)),
        SchemaElement("movie", text=True),
    )


def _car_schema() -> Tuple[SchemaElement, ...]:
    return (
        SchemaElement("cars", (("car", 1, 900),)),
        SchemaElement(
            "car",
            (("make", 1, 1), ("model", 1, 1), ("year", 1, 1), ("price", 0, 1)),
        ),
        SchemaElement("make", text=True),
        SchemaElement("model", text=True),
        SchemaElement("year", text=True),
        SchemaElement("price", text=True),
    )


def _department_schema() -> Tuple[SchemaElement, ...]:
    return (
        SchemaElement("university", (("department", 1, 40),)),
        SchemaElement(
            "department",
            (("name", 1, 1), ("course", 1, 30), ("staff", 1, 1)),
        ),
        SchemaElement("name", text=True),
        SchemaElement("course", (("code", 1, 1), ("title", 1, 1))),
        SchemaElement("code", text=True),
        SchemaElement("title", text=True),
        SchemaElement("staff", (("lecturer", 1, 20),)),
        SchemaElement("lecturer", text=True),
    )


def _nasa_schema() -> Tuple[SchemaElement, ...]:
    # High depth (8 levels of nesting), modest fan-out — the shape the paper
    # calls "ideal for the prefix labeling scheme".
    return (
        SchemaElement("datasets", (("dataset", 1, 6),)),
        SchemaElement(
            "dataset",
            (("title", 1, 1), ("reference", 1, 5), ("tableHead", 1, 2)),
        ),
        SchemaElement("title", text=True),
        SchemaElement("reference", (("source", 1, 3),)),
        SchemaElement("source", (("other", 1, 3),)),
        SchemaElement("other", (("author", 1, 4), ("journal", 1, 2))),
        SchemaElement("author", (("lastName", 1, 1), ("initial", 1, 2))),
        SchemaElement("lastName", text=True),
        SchemaElement("initial", text=True),
        SchemaElement("journal", (("name", 1, 1),)),
        SchemaElement("name", text=True),
        SchemaElement("tableHead", (("field", 1, 6),)),
        SchemaElement("field", (("definition", 1, 2),)),
        SchemaElement("definition", text=True),
    )


def _company_schema() -> Tuple[SchemaElement, ...]:
    return (
        SchemaElement("company", (("division", 1, 25),)),
        SchemaElement(
            "division",
            (("name", 1, 1), ("employee", 1, 120),),
        ),
        SchemaElement("name", text=True),
        SchemaElement(
            "employee",
            (("name", 1, 1), ("role", 1, 1), ("salary", 0, 1)),
        ),
        SchemaElement("role", text=True),
        SchemaElement("salary", text=True),
    )


_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("D1", "Sigmod record", 41, "SigmodRecord", _sigmod_schema(), seed=1),
        DatasetSpec("D2", "Movie", 125, "movies", _movie_schema(), seed=2),
        DatasetSpec("D3", "Club", 340, "club", _club_schema(), seed=3),
        DatasetSpec("D4", "Actor", 1110, "actor", _actor_schema(), seed=4),
        DatasetSpec("D5", "Car", 2495, "cars", _car_schema(), seed=5),
        DatasetSpec("D6", "Department", 2686, "university", _department_schema(), seed=6),
        DatasetSpec("D7", "NASA", 4834, "datasets", _nasa_schema(), seed=7),
        DatasetSpec("D8", "Shakespeare's Plays", 6636, "PLAY", (), seed=8),
        DatasetSpec("D9", "Company", 10052, "company", _company_schema(), seed=9),
    )
}

DATASET_NAMES: Tuple[str, ...] = tuple(sorted(_SPECS))


def dataset_spec(name: str) -> DatasetSpec:
    """Return the static spec for dataset ``name`` ("D1" .. "D9")."""
    try:
        return _SPECS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; choose one of {', '.join(DATASET_NAMES)}"
        ) from None


def build_dataset(name: str) -> XmlElement:
    """Build the synthetic document for dataset ``name``, deterministically.

    The tree's node count equals the Table 1 "Max. # of nodes" value.
    """
    spec = dataset_spec(name)
    if spec.name == "D8":
        return play(seed=spec.seed, node_budget=spec.max_nodes)
    return expand_schema(spec.schema, spec.root_tag, spec.max_nodes, seed=spec.seed)


def build_collection(name: str, files: int = 16, seed: int = 0) -> List[XmlElement]:
    """A multi-file collection for dataset ``name``.

    The paper labels "the 6224 real-world XML files" of the repository;
    Table 1 only reports each topic's *largest* file.  This generates
    ``files`` documents for one topic whose node counts decay from the
    Table 1 maximum (the largest file first, then roughly halving with
    jitter, floored at the schema's minimal size), which is the size
    profile web-crawled repositories show.
    """
    import random

    if files < 1:
        raise DatasetError(f"files must be >= 1, got {files}")
    spec = dataset_spec(name)
    rng = random.Random(seed * 7919 + spec.seed)
    documents = [build_dataset(name)]
    budget = spec.max_nodes
    for index in range(1, files):
        budget = max(5, int(budget * rng.uniform(0.45, 0.8)))
        if spec.name == "D8":
            documents.append(
                play(seed=spec.seed + index, node_budget=max(budget, 60))
            )
        else:
            documents.append(
                expand_schema(spec.schema, spec.root_tag, budget, seed=spec.seed + index)
            )
    return documents


def table1_rows() -> List[Tuple[str, str, int]]:
    """Table 1 as data: ``(dataset, topic, max node count)`` rows."""
    return [
        (spec.name, spec.topic, spec.max_nodes)
        for spec in (_SPECS[name] for name in DATASET_NAMES)
    ]
