"""A tiny DTD-like schema language and a budgeted document expander.

A :class:`SchemaElement` declares, for one element type, which child types
it may contain and with what multiplicities.  :func:`expand_schema` grows a
document from a root type to an exact node budget, breadth-biased so that
multiplicity ranges are respected as far as the budget allows.

This gives the synthetic Niagara stand-ins (``repro.datasets.niagara``)
realistic repeated-pattern structure — the property Opt3 (path collapsing)
exploits — while keeping generation deterministic under an explicit seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import DatasetError
from repro.xmlkit.tree import XmlElement

__all__ = ["SchemaElement", "expand_schema"]


@dataclass(frozen=True)
class SchemaElement:
    """One element type of a schema.

    ``children`` lists ``(child_tag, min_count, max_count)`` triples in
    content order.  ``text`` marks the element as text-bearing (the expander
    fills in a short deterministic payload, so serialized sizes are
    non-trivial).
    """

    tag: str
    children: Tuple[Tuple[str, int, int], ...] = ()
    text: bool = False

    def __post_init__(self) -> None:
        for child_tag, low, high in self.children:
            if low < 0 or high < low:
                raise DatasetError(
                    f"bad multiplicity ({low}, {high}) for {self.tag}/{child_tag}"
                )


@dataclass
class _Budget:
    remaining: int

    def take(self, count: int = 1) -> bool:
        if self.remaining < count:
            return False
        self.remaining -= count
        return True


def _payload(rng: random.Random, tag: str) -> str:
    words = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta")
    return f"{tag}-{rng.choice(words)}-{rng.randrange(10_000)}"


def expand_schema(
    schema: Sequence[SchemaElement],
    root_tag: str,
    node_budget: int,
    seed: int = 0,
) -> XmlElement:
    """Expand ``schema`` from ``root_tag`` into a document of exactly
    ``node_budget`` element nodes (when the schema permits; otherwise as
    close from below as it can get, which the Niagara specs are tuned to
    avoid).

    Expansion is level-by-level: every node first receives its minimum
    children; leftover budget is then spent raising counts toward the
    maxima, favouring element types declared earlier (document-prominent
    patterns repeat more).
    """
    if node_budget < 1:
        raise DatasetError(f"node_budget must be >= 1, got {node_budget}")
    by_tag: Dict[str, SchemaElement] = {}
    for element_type in schema:
        if element_type.tag in by_tag:
            raise DatasetError(f"duplicate schema element {element_type.tag!r}")
        by_tag[element_type.tag] = element_type
    if root_tag not in by_tag:
        raise DatasetError(f"root {root_tag!r} not declared in schema")

    min_sizes = _minimal_subtree_sizes(by_tag)
    rng = random.Random(seed)
    budget = _Budget(node_budget - 1)  # the root itself costs one node
    root = XmlElement(root_tag)
    declared = by_tag[root_tag]
    if declared.text:
        root.text = _payload(rng, root_tag)

    # Phase 1: satisfy minimum multiplicities breadth-first.
    frontier: List[XmlElement] = [root]
    #: per-node count of children created so far for each child tag
    created: Dict[int, Dict[str, int]] = {}
    while frontier:
        next_frontier: List[XmlElement] = []
        for node in frontier:
            spec = by_tag[node.tag]
            counts: Dict[str, int] = {}
            created[id(node)] = counts
            for child_tag, low, _high in spec.children:
                for _ in range(low):
                    if not budget.take():
                        return root
                    child = XmlElement(child_tag)
                    if by_tag[child_tag].text:
                        child.text = _payload(rng, child_tag)
                    node.append(child)
                    counts[child_tag] = counts.get(child_tag, 0) + 1
                    next_frontier.append(child)
        frontier = next_frontier

    # Phase 2: spend the leftover budget raising counts toward maxima.
    # Iterate rounds over all expandable (node, child_tag) slots so growth
    # stays spread across the document rather than piling onto one parent.
    while budget.remaining > 0:
        expandable: List[Tuple[XmlElement, str, int]] = []
        for node in root.iter_preorder():
            spec = by_tag[node.tag]
            counts = created.setdefault(id(node), {})
            for child_tag, _low, high in spec.children:
                current = counts.get(child_tag, 0)
                if current < high:
                    expandable.append((node, child_tag, high - current))
        if not expandable:
            break
        progressed = False
        for node, child_tag, _room in expandable:
            # Never start a child whose minimal subtree cannot be finished:
            # a half-built subtree would violate the schema's minima.
            if budget.remaining < min_sizes[child_tag]:
                continue
            counts = created[id(node)]
            budget.take()
            child = XmlElement(child_tag)
            if by_tag[child_tag].text:
                child.text = _payload(rng, child_tag)
            node.append(child)
            counts[child_tag] = counts.get(child_tag, 0) + 1
            progressed = True
            # Grow the new child's own minima immediately so the document
            # never violates the schema.
            _satisfy_minima(child, by_tag, budget, created, rng)
        if not progressed:
            break
    return root


def _minimal_subtree_sizes(by_tag: Dict[str, SchemaElement]) -> Dict[str, int]:
    """Node count of the smallest schema-valid subtree for each tag."""
    sizes: Dict[str, int] = {}
    in_progress: set = set()

    def size_of(tag: str) -> int:
        if tag in sizes:
            return sizes[tag]
        if tag in in_progress:
            raise DatasetError(
                f"schema has a cycle of required elements through {tag!r}"
            )
        in_progress.add(tag)
        total = 1
        for child_tag, low, _high in by_tag[tag].children:
            total += low * size_of(child_tag)
        in_progress.discard(tag)
        sizes[tag] = total
        return total

    for tag in by_tag:
        size_of(tag)
    return sizes


def _satisfy_minima(
    node: XmlElement,
    by_tag: Dict[str, SchemaElement],
    budget: _Budget,
    created: Dict[int, Dict[str, int]],
    rng: random.Random,
) -> None:
    spec = by_tag[node.tag]
    counts = created.setdefault(id(node), {})
    for child_tag, low, _high in spec.children:
        while counts.get(child_tag, 0) < low:
            if not budget.take():
                return
            child = XmlElement(child_tag)
            if by_tag[child_tag].text:
                child.text = _payload(rng, child_tag)
            node.append(child)
            counts[child_tag] = counts.get(child_tag, 0) + 1
            _satisfy_minima(child, by_tag, budget, created, rng)
