"""Shape-controlled tree generators for tests and update experiments.

The update experiments (Figures 16/17) run on "10 XML files whose size
ranges from 1000 to 10,000 nodes"; :class:`RandomTreeBuilder` produces
deterministic random trees at exact node counts with bounded depth and
fan-out, plus the degenerate shapes (perfect trees, chains, stars) the
analytic size models are sanity-checked against.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import DatasetError
from repro.xmlkit.tree import XmlElement

__all__ = ["RandomTreeBuilder", "perfect_tree", "chain_tree", "star_tree"]


def perfect_tree(depth: int, fanout: int, tag: str = "node") -> XmlElement:
    """A perfect tree: every internal node has exactly ``fanout`` children
    and every leaf sits at ``depth`` — the worst case of Section 3.1."""
    if depth < 0:
        raise DatasetError(f"depth must be >= 0, got {depth}")
    if fanout < 1:
        raise DatasetError(f"fanout must be >= 1, got {fanout}")
    root = XmlElement(tag)
    frontier = [root]
    for _ in range(depth):
        next_frontier: List[XmlElement] = []
        for node in frontier:
            for _ in range(fanout):
                next_frontier.append(node.append(XmlElement(tag)))
        frontier = next_frontier
    return root


def chain_tree(length: int, tag: str = "node") -> XmlElement:
    """A single path of ``length`` nodes — maximal depth, fan-out 1."""
    if length < 1:
        raise DatasetError(f"length must be >= 1, got {length}")
    root = XmlElement(tag)
    node = root
    for _ in range(length - 1):
        node = node.append(XmlElement(tag))
    return root


def star_tree(leaves: int, tag: str = "node") -> XmlElement:
    """A root with ``leaves`` children — maximal fan-out, depth 1."""
    if leaves < 0:
        raise DatasetError(f"leaves must be >= 0, got {leaves}")
    root = XmlElement(tag)
    for _ in range(leaves):
        root.append(XmlElement(tag))
    return root


class RandomTreeBuilder:
    """Deterministic random trees with exact node counts.

    Parameters
    ----------
    seed:
        RNG seed; equal seeds give identical trees.
    max_depth:
        No node is placed deeper than this many edges below the root.
    max_fanout:
        No node receives more than this many children.
    """

    def __init__(self, seed: int = 0, max_depth: int = 8, max_fanout: int = 50):
        if max_depth < 1:
            raise DatasetError(f"max_depth must be >= 1, got {max_depth}")
        if max_fanout < 1:
            raise DatasetError(f"max_fanout must be >= 1, got {max_fanout}")
        self.seed = seed
        self.max_depth = max_depth
        self.max_fanout = max_fanout

    def build(self, node_count: int, tag: str = "node") -> XmlElement:
        """Grow a tree with exactly ``node_count`` nodes.

        Each new node attaches to a uniformly random eligible parent (one
        below both the depth and fan-out caps), which yields the irregular,
        bushy shapes real documents show.
        """
        if node_count < 1:
            raise DatasetError(f"node_count must be >= 1, got {node_count}")
        rng = random.Random(self.seed)
        root = XmlElement(tag)
        eligible: List[XmlElement] = [root] if self.max_depth > 0 else []
        depths = {id(root): 0}
        for _ in range(node_count - 1):
            if not eligible:
                raise DatasetError(
                    f"cannot fit {node_count} nodes under depth {self.max_depth} "
                    f"and fan-out {self.max_fanout}"
                )
            parent = rng.choice(eligible)
            child = parent.append(XmlElement(tag))
            child_depth = depths[id(parent)] + 1
            depths[id(child)] = child_depth
            if child_depth < self.max_depth:
                eligible.append(child)
            if len(parent.children) >= self.max_fanout:
                eligible.remove(parent)
        return root
