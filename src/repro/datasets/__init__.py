"""Synthetic dataset substrate.

The paper evaluates on 6224 real XML files from the Niagara repository
(datasets D1–D9, Table 1) and on the Shakespeare plays.  Neither corpus is
available offline, so this package generates deterministic synthetic
stand-ins that match the *reported structural characteristics* — node
counts, depth/fan-out profiles, and tag hierarchies — which is what every
experiment in the paper actually depends on (see DESIGN.md, Substitutions).

* :mod:`repro.datasets.dtd` — a tiny DTD-like schema language plus a
  budgeted expander that grows documents to an exact node count;
* :mod:`repro.datasets.random_tree` — shape-controlled random/perfect/chain
  trees for unit tests and the update experiments;
* :mod:`repro.datasets.niagara` — the nine Table 1 datasets;
* :mod:`repro.datasets.shakespeare` — play documents with the genuine
  PLAY/ACT/SCENE/SPEECH/LINE hierarchy, including a Hamlet-sized play for
  the Figure 18 experiment.
"""

from repro.datasets.dtd import SchemaElement, expand_schema
from repro.datasets.niagara import (
    DATASET_NAMES,
    DatasetSpec,
    build_dataset,
    dataset_spec,
    table1_rows,
)
from repro.datasets.random_tree import RandomTreeBuilder, chain_tree, perfect_tree
from repro.datasets.shakespeare import hamlet, play, shakespeare_corpus

__all__ = [
    "SchemaElement",
    "expand_schema",
    "DATASET_NAMES",
    "DatasetSpec",
    "build_dataset",
    "dataset_spec",
    "table1_rows",
    "RandomTreeBuilder",
    "chain_tree",
    "perfect_tree",
    "hamlet",
    "play",
    "shakespeare_corpus",
]
