"""Planner exhibit: fixed strategies vs the cost-based pick, per query.

Times every Table 2 query under each fixed engine strategy (scan, merge,
window, twig) and under ``auto`` on the same prime-scheme store, all at
the response benchmark's corpus scale.  Two claims are on trial:

* the window strategy's range evaluation should beat the paper's
  relational scans by an order of magnitude on the heavy queries, and
* ``auto`` should track the best fixed choice per query — the cost model
  is only useful if its picks don't lose to a strategy a user could have
  pinned by hand.

The rendered table reports seconds per (query, strategy), the winner, the
``auto``/best ratio, and the strategies ``auto`` actually picked (from
the engine's recorded plan).  ``repro bench planner --json`` emits the
same rows for the CI artifact.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import ResultTable
from repro.bench.response import PAPER_QUERIES, build_query_corpus
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore
from repro.xmlkit.tree import XmlElement

__all__ = ["PLANNER_STRATEGIES", "planner_table"]

#: Every fixed strategy plus the cost-based pick, in display order.
PLANNER_STRATEGIES: Tuple[str, ...] = ("scan", "merge", "window", "twig", "auto")


def planner_table(
    corpus: Sequence[XmlElement] | None = None, repeats: int = 3
) -> ResultTable:
    """Per-query response time under each strategy, plus auto's verdict.

    One prime store serves every engine so the comparison isolates the
    evaluation strategy; each (query, strategy) cell keeps the best of
    ``repeats`` runs.
    """
    documents = list(corpus) if corpus is not None else build_query_corpus()
    store = LabelStore.build(documents, scheme="prime")
    engines: Dict[str, QueryEngine] = {
        strategy: QueryEngine(store, strategy=strategy)
        for strategy in PLANNER_STRATEGIES
    }
    table = ResultTable(
        title="Planner: response time per strategy (seconds)",
        columns=(
            "query",
            *PLANNER_STRATEGIES,
            "best",
            "auto/best",
            "auto picks",
        ),
    )
    for name, text in PAPER_QUERIES:
        timings: Dict[str, float] = {}
        for strategy in PLANNER_STRATEGIES:
            engine = engines[strategy]
            timings[strategy] = min(
                _time_once(engine, text) for _ in range(max(repeats, 1))
            )
        fixed = {s: t for s, t in timings.items() if s != "auto"}
        best = min(fixed, key=lambda s: fixed[s])
        ratio = timings["auto"] / max(fixed[best], 1e-9)
        table.add_row(
            name,
            *(timings[strategy] for strategy in PLANNER_STRATEGIES),
            best,
            round(ratio, 2),
            _picks_of(engines["auto"]),
        )
    return table


def _picks_of(engine: QueryEngine) -> str:
    """Compact rendering of the strategies auto chose on its last run."""
    plan = engine.last_plan
    if plan is None:
        return "-"
    if plan.twig is not None:
        return "twig"
    picks = [choice.strategy for choice in plan.steps]
    return "+".join(picks) if picks else "seed-only"


def _time_once(engine: QueryEngine, text: str) -> float:
    started = time.perf_counter()
    engine.evaluate(text)
    return time.perf_counter() - started
