"""Throughput exhibit: sequential vs batched order-sensitive updates.

Not a paper figure — the paper measures per-update *relabeling cost*
(Figure 18), not sustained update throughput — but the natural systems
question once the store is durable: what does the batched update pipeline
(:meth:`repro.durable.collection.DurableCollection.apply_batch`) buy over
one-at-a-time mutations?

The workload is Figure 18's order-sensitive insertion, pinned at its
hardest point: new ``ACT`` elements inserted in front of the first ACT of
a Hamlet-sized play, so *every* insertion shifts the order of essentially
every node behind it and touches nearly every SC record.  Both paths run
through a :class:`~repro.durable.collection.DurableCollection` with
``fsync="always"``; the batched path amortizes

* the WAL append + fsync (one group-commit record per batch),
* the CRT re-solves (one per touched SC record per batch), and
* the order shifts themselves (coalesced to O(records) aggregate work per
  op, folded once per record per batch),

while the sequential path pays all three per operation.  Per row the table
reports ops/sec, the speedup over the sequential baseline, whether the
end state is byte-identical to the sequential run's
(:func:`~repro.durable.snapshot.collection_fingerprint`), and whether the
deep invariant audit is clean — a throughput number for a wrong answer is
not a data point.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.harness import ResultTable

__all__ = ["throughput_table"]

#: Group-commit sizes reported by the exhibit (1 shows the fixed per-batch
#: overhead; 64 is the acceptance point; 256 the amortization plateau).
BATCH_SIZES = (1, 8, 64, 256)


def throughput_table(
    operations: int = 256,
    batch_sizes: Sequence[int] = BATCH_SIZES,
    node_budget: Optional[int] = None,
    seed: int = 11,
    group_size: int = 5,
) -> ResultTable:
    """Measure sequential vs batched ops/sec on the Figure 18 workload.

    ``node_budget=None`` runs against the full Hamlet-sized play the paper
    uses for Figure 18; a smaller budget substitutes a synthetic play of
    that size for quick smoke runs.  Every batched run replays the exact
    operation sequence of the sequential baseline and is fingerprinted
    against it.
    """
    # Lazy imports: repro.durable reaches back into repro.obs.audit, the
    # same init-order concern as the durability/resilience exhibits.
    from repro.datasets.shakespeare import hamlet, play
    from repro.durable import DurableCollection, collection_fingerprint
    from repro.obs.audit import audit_ordered_document

    def build_document():
        if node_budget is None:
            return hamlet()
        return play(seed=seed, acts=5, node_budget=node_budget)

    def act_position(collection) -> int:
        root = collection.documents[0]
        for node in root.children:
            if node.tag == "ACT":
                return node.child_index
        raise ValueError("play has no ACT children")

    def run(batch: Optional[int]):
        """One full run; returns (elapsed_s, fingerprint, audit_ok)."""
        workdir = Path(tempfile.mkdtemp(prefix="repro-throughput-"))
        try:
            collection = DurableCollection.create(
                workdir / "col",
                [build_document()],
                group_size=group_size,
                fsync="always",
            )
            position = act_position(collection)
            started = time.perf_counter()
            if batch is None:
                root = collection.documents[0]
                for _ in range(operations):
                    collection.insert_child(root, position, tag="ACT")
            else:
                done = 0
                while done < operations:
                    chunk = min(batch, operations - done)
                    collection.bulk_insert(
                        [(collection.documents[0], position, "ACT")] * chunk
                    )
                    done += chunk
            elapsed = time.perf_counter() - started
            fingerprint = collection_fingerprint(collection.live)
            audit_ok = all(
                audit_ordered_document(document).ok
                for document in collection.live.ordered_documents
            )
            collection.close()
            return elapsed, fingerprint, audit_ok
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    document_nodes = sum(1 for _ in build_document().iter_preorder())
    table = ResultTable(
        title=(
            f"Update throughput: {operations} front-ACT insertions into a "
            f"{document_nodes}-node play (WAL fsync=always)"
        ),
        columns=["mode", "ops", "time ms", "ops/sec", "speedup", "identical", "audit"],
        note=(
            "Figure 18's order-sensitive workload at maximal shift span; "
            "'identical' fingerprints each batched end state against the "
            "sequential run's."
        ),
    )
    seq_elapsed, seq_fingerprint, seq_audit = run(None)
    table.add_row(
        "sequential",
        operations,
        round(seq_elapsed * 1000.0, 1),
        round(operations / seq_elapsed, 1),
        "1.00x",
        "yes",
        "clean" if seq_audit else "VIOLATED",
    )
    for batch in batch_sizes:
        elapsed, fingerprint, audit_ok = run(batch)
        table.add_row(
            f"batched({batch})",
            operations,
            round(elapsed * 1000.0, 1),
            round(operations / elapsed, 1),
            f"{seq_elapsed / elapsed:.2f}x",
            "yes" if fingerprint == seq_fingerprint else "NO",
            "clean" if audit_ok else "VIOLATED",
        )
    return table
