"""Resilience exhibit: serving under increasing transient-fault pressure.

Not a paper figure — the paper's dynamics end in memory — but the natural
follow-up to the durability exhibit: once the store retries, breaks, and
degrades instead of crashing, *what does fault pressure cost, and is the
result still exactly right?*  The exhibit runs an identical randomized
update workload through a
:class:`~repro.resilient.collection.ResilientCollection` at several chaos
rates, reporting per rate:

* operations acknowledged and wall time (retry/backoff tax),
* transient faults injected vs. retries spent,
* breaker trips and operations served degraded (zero until the rate is
  high enough to exhaust a retry budget),
* whether post-workload recovery is byte-identical to a fault-free twin
  of the same workload (``NO`` is a resilience bug, not a data point).

Backoff sleeps are stubbed to keep the exhibit fast; the costs shown are
bookkeeping and I/O, not artificial waiting.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from pathlib import Path

from repro.bench.harness import ResultTable

__all__ = ["resilience_table"]

_RATES = (0.0, 0.02, 0.05, 0.10, 0.40)


def _run_workload(collection, seed: int, operations: int) -> None:
    # Mirrors the durability exhibit's workload so the two tables are
    # comparable; determinism (same seed -> same ops) is what makes the
    # fault-free twin a valid byte-identical oracle.
    rng = random.Random(seed)
    root = collection.documents[0]
    for _ in range(operations):
        nodes = list(root.iter_preorder())
        roll = rng.random()
        target = rng.choice(nodes)
        if roll < 0.70:
            collection.insert_child(target, rng.randint(0, len(target.children)))
        elif roll < 0.85 and target is not root:
            collection.insert_after(target)
        elif target is not root:
            collection.delete(target)


def resilience_table(
    node_budget: int = 400, operations: int = 100, seed: int = 11
) -> ResultTable:
    """Measure retry/breaker behaviour across transient-fault rates."""
    # Lazy imports for the same init-order reason as the durability
    # exhibit: repro.durable reaches back into repro.obs.audit.
    from repro.datasets.shakespeare import play
    from repro.durable import collection_fingerprint
    from repro.resilient import (
        BreakerPolicy,
        ChaosInjector,
        ResilientCollection,
        RetryPolicy,
    )

    table = ResultTable(
        title=f"Resilience under transient faults ({operations} updates on "
        f"a {node_budget}-node play per chaos rate)",
        columns=[
            "fault rate",
            "ops",
            "time ms",
            "injected",
            "retries",
            "trips",
            "degraded ops",
            "identical",
        ],
        note="'identical' compares recovery after the faulty run to a "
        "fault-free twin of the same workload.",
    )
    twin_fingerprint = None
    for rate in _RATES:
        workdir = Path(tempfile.mkdtemp(prefix="repro-resilience-"))
        try:
            chaos = ChaosInjector(rate=rate, seed=seed, sleep=lambda _s: None)
            collection = ResilientCollection.create(
                workdir / "col",
                [play(seed=seed, acts=1, node_budget=node_budget)],
                faults=chaos,
                retry=RetryPolicy(max_attempts=10, seed=seed),
                breaker=BreakerPolicy(failure_threshold=8),
                sleep=lambda _s: None,
            )
            started = time.perf_counter()
            _run_workload(collection, seed=seed, operations=operations)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            fingerprint = collection_fingerprint(collection.live)
            if rate == 0.0:
                twin_fingerprint = fingerprint
            identical = fingerprint == twin_fingerprint
            table.add_row(
                f"{rate:.2f}",
                operations,
                round(elapsed_ms, 2),
                chaos.total_injected,
                collection.retries,
                collection.breaker.times_opened,
                collection.buffered_total,
                "yes" if identical else "NO",
            )
            collection.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return table
