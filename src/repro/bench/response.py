"""Table 2 and Figure 15: query workload and response times (§5.2).

The workload is the paper's nine queries over the (synthetic) Shakespeare
corpus replicated five times.  Table 2 reports the number of nodes each
query retrieves; Figure 15 times the evaluation under the three label
stores (Interval, Prime, Prefix-2).

Paper-vs-measured caveats recorded in EXPERIMENTS.md: retrieved-node counts
depend on the corpus' exact composition, so ours differ numerically from
Table 2 while the workload structure (same query text, same ordering from
cheap to expensive) is preserved.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import ResultTable
from repro.datasets.shakespeare import shakespeare_corpus
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore
from repro.xmlkit.tree import XmlElement

__all__ = ["PAPER_QUERIES", "build_query_corpus", "table2_table", "figure15_table"]

#: The nine test queries of Table 2, verbatim (tag names lower-cased to
#: match the synthetic corpus serialization).
PAPER_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("Q1", "/PLAY//ACT[4]"),
    ("Q2", "/PLAY//ACT[3]//Following::ACT"),
    ("Q3", "/PLAY//ACT//PERSONA"),
    ("Q4", "/ACT[5]//Following::SPEECH"),
    ("Q5", "/SPEECH[4]//Preceding::LINE"),
    ("Q6", "/PLAY//ACT[3]//LINE"),
    ("Q7", "/ACT//Following-Sibling::SPEECH[3]"),
    ("Q8", "/PLAY//SPEECH"),
    ("Q9", "/PLAY//LINE"),
)

_SCHEMES: Tuple[str, ...] = ("interval", "prime", "prefix-2")


def build_query_corpus(
    plays: int = 12, replicate: int = 5, seed: int = 100
) -> List[XmlElement]:
    """The query corpus: a multi-play collection replicated ``replicate``
    times ("we replicate the Shakespeare's Play dataset 5 times").

    The default play count is scaled down from the full 37 so the whole
    three-store benchmark stays laptop-sized; pass ``plays=37`` for the
    paper-scale corpus.
    """
    return shakespeare_corpus(plays=plays, seed=seed, replicate=replicate)


def table2_table(corpus: Sequence[XmlElement] | None = None) -> ResultTable:
    """Table 2: the nine queries and how many nodes each retrieves."""
    documents = list(corpus) if corpus is not None else build_query_corpus()
    # Counts are strategy-independent; scan is pinned because this exhibit
    # documents the paper's own relational evaluation.
    engine = QueryEngine(LabelStore.build(documents, scheme="interval"), strategy="scan")
    table = ResultTable(
        title="Table 2: test queries",
        columns=("query", "text", "# of nodes retrieved"),
    )
    for name, text in PAPER_QUERIES:
        table.add_row(name, text, engine.count(text))
    return table


def figure15_table(
    corpus: Sequence[XmlElement] | None = None, repeats: int = 3
) -> ResultTable:
    """Figure 15: response time (seconds) per query and labeling scheme.

    Each store is built once; every query runs ``repeats`` times and the
    best time is kept (the usual noise-suppression for micro timings).
    """
    documents = list(corpus) if corpus is not None else build_query_corpus()
    # Figure 15 measures the *paper's* relational label-comparison scans;
    # the accelerator comparison lives in `planner_table` instead.
    engines: Dict[str, QueryEngine] = {
        scheme: QueryEngine(LabelStore.build(documents, scheme=scheme), strategy="scan")
        for scheme in _SCHEMES
    }
    table = ResultTable(
        title="Figure 15: response time for queries (seconds)",
        columns=("query", "Interval", "Prime", "Prefix-2"),
    )
    for name, text in PAPER_QUERIES:
        timings = []
        for scheme in _SCHEMES:
            best = min(
                _time_once(engines[scheme], text) for _ in range(max(repeats, 1))
            )
            timings.append(best)
        table.add_row(name, *timings)
    return table


def _time_once(engine: QueryEngine, text: str) -> float:
    started = time.perf_counter()
    engine.evaluate(text)
    return time.perf_counter() - started
