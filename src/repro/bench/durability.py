"""Durability overhead exhibit: fsync policy vs. update and recovery cost.

Not a paper figure — the paper stops at in-memory dynamics — but the
obvious systems question its scheme raises: what does making the updates
*durable* cost?  The exhibit runs an identical randomized update workload
against a :class:`~repro.durable.collection.DurableCollection` under each
fsync policy, then kills the collection (without closing) and times
recovery, reporting:

* update wall time (the WAL tax, dominated by fsync under ``always``),
* fsync count and WAL bytes written,
* recovery wall time and the number of replayed records,
* whether the recovered state matches the survivor byte-for-byte
  (it must — a ``no`` here is a durability bug, not a data point).
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from pathlib import Path

# NOTE: repro.durable and the dataset builders are imported lazily inside
# durability_table — see the comment there.

from repro.bench.harness import ResultTable
from repro.obs import metrics

__all__ = ["durability_table"]

_POLICIES = ("always", "batch:8", "never")


def _run_workload(collection, seed: int, operations: int) -> None:
    rng = random.Random(seed)
    root = collection.documents[0]
    for _ in range(operations):
        nodes = list(root.iter_preorder())
        roll = rng.random()
        target = rng.choice(nodes)
        if roll < 0.70:
            collection.insert_child(target, rng.randint(0, len(target.children)))
        elif roll < 0.85 and target is not root:
            collection.insert_after(target)
        elif target is not root:
            collection.delete(target)


def durability_table(
    node_budget: int = 600, operations: int = 120, seed: int = 11
) -> ResultTable:
    """Measure WAL + recovery overhead for each fsync policy."""
    # Imported here, not at module scope: repro.durable reaches back into
    # repro.obs.audit, which is still initializing when repro.labeling
    # pulls this package in for ResultTable.
    from repro.datasets.shakespeare import play
    from repro.durable import DurableCollection, collection_fingerprint, recover

    table = ResultTable(
        title=f"Durability overhead ({operations} updates on a "
        f"{node_budget}-node play, crash + recover per policy)",
        columns=[
            "fsync",
            "update ms",
            "fsyncs",
            "wal KiB",
            "recover ms",
            "replayed",
            "identical",
        ],
        note="'identical' compares recovered state to the pre-crash "
        "fingerprint; 'never' may legally replay fewer records.",
    )
    for policy in _POLICIES:
        workdir = Path(tempfile.mkdtemp(prefix="repro-durability-"))
        try:
            with metrics.collecting() as registry:
                collection = DurableCollection.create(
                    workdir / "col",
                    [play(seed=seed, acts=1, node_budget=node_budget)],
                    fsync=policy,
                )
                started = time.perf_counter()
                _run_workload(collection, seed=seed, operations=operations)
                update_ms = (time.perf_counter() - started) * 1000.0
                fingerprint = collection_fingerprint(collection.live)
                # Simulate the crash: sync (so 'never' is comparable) and
                # abandon the object without closing.
                collection.wal.sync()
                counters = registry.snapshot()["counters"]
            started = time.perf_counter()
            recovered = recover(workdir / "col")
            recover_ms = (time.perf_counter() - started) * 1000.0
            identical = collection_fingerprint(recovered.collection) == fingerprint
            table.add_row(
                policy,
                round(update_ms, 2),
                counters.get("wal.fsyncs", 0),
                round(counters.get("wal.append_bytes", 0) / 1024.0, 1),
                round(recover_ms, 2),
                recovered.info.replayed_records,
                "yes" if identical else "NO",
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return table
