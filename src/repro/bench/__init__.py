"""Experiment harness: the code behind every table and figure.

Each ``figure_*``/``table_*`` function regenerates one exhibit of the
paper's evaluation (Section 5) or size analysis (Section 3.1) and returns a
:class:`repro.bench.harness.ResultTable` that renders as the same rows or
series the paper reports.  The ``benchmarks/`` directory wraps these in
pytest-benchmark targets; examples and EXPERIMENTS.md print them directly.
"""

from repro.bench.compaction import compaction_table
from repro.bench.durability import durability_table
from repro.bench.harness import ResultTable
from repro.bench.models import figure3_table, figure4_table, figure5_table
from repro.bench.planner import planner_table
from repro.bench.replication import replication_table
from repro.bench.resilience import resilience_table
from repro.bench.response import figure15_table, table2_table
from repro.bench.shard import shard_table
from repro.bench.spaces import figure13_table, figure14_table, table1_table
from repro.bench.throughput import throughput_table
from repro.bench.updates import figure16_table, figure17_table, figure18_table

__all__ = [
    "ResultTable",
    "compaction_table",
    "durability_table",
    "planner_table",
    "replication_table",
    "resilience_table",
    "shard_table",
    "throughput_table",
    "figure3_table",
    "figure4_table",
    "figure5_table",
    "figure13_table",
    "figure14_table",
    "figure15_table",
    "figure16_table",
    "figure17_table",
    "figure18_table",
    "table1_table",
    "table2_table",
]
