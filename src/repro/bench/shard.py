"""Sharding exhibit: throughput, tail latency, and availability under fire.

Not a paper figure — the paper's scheme is single-process — but the
claim that motivates :mod:`repro.shard` is measurable: per-document
prime-label state makes document sharding coordination-free, so routed
mutation throughput should hold (or improve) as worker processes are
added, while scatter-gather keeps query tail latency bounded.  The
second half measures what sharding actually buys in robustness: during
a kill-and-recover window (one worker SIGKILLed, the supervisor
restarting it through recovery) the service should keep answering —
*degraded*, with the missing shard named — rather than failing.

Each row is an independent run at one shard count:

* routed single-op mutation throughput (ops/sec through the router,
  WAL fsync ``always`` — a serving system's ack discipline),
* query p99 over repeated scatter-gathers on the healthy fleet,
* the availability split over the kill-and-recover window: complete,
  degraded (partial answer, missing shards reported), and failed
  (raised) query fractions,
* whether the fleet settled (all UP, buffers drained) and converged
  byte-identical to an unsharded twin with every shard audit clean —
  a throughput number for a wrong answer is not a data point.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Sequence

from repro.bench.harness import ResultTable
from repro.errors import ReproError

__all__ = ["shard_table"]

#: Worker-fleet sizes reported by the exhibit.
SHARD_COUNTS = (1, 2, 4, 8)

#: A small mixed-shape document set; every run shards the same eight.
DOCUMENTS = [
    "<r><a><b/></a><c/></r>",
    "<r><x/><y><z/></y></r>",
    "<r><m/><n/></r>",
    "<r><p><q/></p></r>",
    "<r><u/><v><w/></v></r>",
    "<r><g><h/><i/></g></r>",
    "<r><j/><k><l/></k></r>",
    "<r><s><t/></s><e/></r>",
]


def shard_table(
    shard_counts: Sequence[int] = SHARD_COUNTS,
    operations: int = 120,
    query_reps: int = 25,
    window_budget: float = 0.25,
    seed: int = 8,
) -> ResultTable:
    """Measure routed throughput, query p99, and kill-window availability.

    Each row spawns a fresh worker fleet over the same eight documents,
    drives ``operations`` routed insertions, times ``query_reps``
    scatter-gathers, then SIGKILLs one worker and queries continuously
    (budget ``window_budget`` each) until the supervisor has restarted
    it and the redo journal has drained.
    """
    # Lazy imports, matching the other systems exhibits' init-order care.
    from repro.durable.recovery import apply_operation
    from repro.query.live import LiveCollection
    from repro.resilient.policy import RetryPolicy
    from repro.shard import HealthPolicy, ShardedCollection
    from repro.xmlkit.parser import parse_document
    from repro.xmlkit.serialize import serialize

    policy = HealthPolicy(
        heartbeat_interval=60.0,
        restart_budget=5,
        restart=RetryPolicy(
            max_attempts=4, base_delay=0.2, max_delay=0.4, jitter=0.0, seed=0
        ),
    )

    def run(shards: int) -> dict:
        twin = LiveCollection([parse_document(xml) for xml in DOCUMENTS])
        workdir = Path(tempfile.mkdtemp(prefix="repro-shard-bench-"))
        try:
            with ShardedCollection.create(
                workdir / "col",
                [parse_document(xml) for xml in DOCUMENTS],
                shards=shards,
                policy=policy,
                mutation_policy="buffer",
            ) as service:
                started = time.perf_counter()
                for step in range(operations):
                    op = {
                        "op": "insert_child",
                        "doc": step % len(DOCUMENTS),
                        "parent": 0,
                        "index": 0,
                        "tag": f"n{step}",
                    }
                    service.insert_child(
                        op["doc"], op["parent"], op["index"], op["tag"]
                    )
                    apply_operation(twin, op)
                mutate_elapsed = time.perf_counter() - started

                latencies = []
                for _ in range(query_reps):
                    before = time.perf_counter()
                    result = service.query("//n3")
                    latencies.append(time.perf_counter() - before)
                    assert result.complete
                latencies.sort()
                p99 = latencies[min(len(latencies) - 1,
                                    int(0.99 * len(latencies)))]

                # The kill-and-recover window: query continuously while
                # the supervisor brings the victim back.
                service.kill_worker(seed % shards)
                complete = degraded = failed = 0
                while True:
                    try:
                        result = service.query("//n3", budget=window_budget)
                    except ReproError:
                        # The failed fraction is the measurement; every
                        # typed error counts the same and the loop keeps
                        # sampling until the fleet settles.
                        failed += 1
                    else:
                        if result.complete:
                            complete += 1
                        else:
                            degraded += 1
                    if service.settle(timeout=0.05):
                        break

                identical = [
                    service.serialize_document(doc)
                    for doc in range(service.doc_count)
                ] == [serialize(document) for document in twin.documents]
                audit_ok = all(v == [] for v in service.audit().values())
                return {
                    "ops_per_sec": operations / mutate_elapsed,
                    "p99_ms": p99 * 1000.0,
                    "complete": complete,
                    "degraded": degraded,
                    "failed": failed,
                    "settled": True,
                    "identical": identical,
                    "audit_ok": audit_ok,
                }
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    table = ResultTable(
        title=(
            f"Sharded serving: {operations} routed insertions + "
            f"{query_reps} scatter-gathers vs shard count, then a "
            "kill-and-recover availability window"
        ),
        columns=[
            "shards", "ops/sec", "query p99 ms", "window queries",
            "degraded", "failed", "identical", "audit",
        ],
        note=(
            "window queries = scatter-gathers issued between SIGKILL and "
            "settled recovery; degraded = answered partially with the "
            "missing shard set named; failed = raised; 'identical' "
            "compares every document's bytes against an unsharded twin."
        ),
    )
    for shards in shard_counts:
        outcome = run(shards)
        window = outcome["complete"] + outcome["degraded"] + outcome["failed"]
        table.add_row(
            shards,
            round(outcome["ops_per_sec"], 1),
            round(outcome["p99_ms"], 2),
            window,
            outcome["degraded"],
            outcome["failed"],
            "yes" if outcome["identical"] else "NO",
            "clean" if outcome["audit_ok"] else "VIOLATED",
        )
    return table
