"""Figures 16–18: the update-cost experiments (§5.3, §5.4).

* Figure 16 — unordered **leaf** insertion: add a sibling of a deepest-level
  node and count relabeled nodes, on documents of 1,000–10,000 nodes.
* Figure 17 — unordered **non-leaf** insertion: interpose a new parent over
  the first level-4 node (SAX parse order) and count relabeled nodes.
* Figure 18 — **order-sensitive** insertion: insert a new ACT between each
  pair of consecutive ACTs of a Hamlet-sized play; prefix/interval must
  relabel every order-shifted node, while the prime scheme charges one
  relabel per *SC record* rewrite (group size 5, as in the paper).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ResultTable
from repro.obs import metrics
from repro.datasets.random_tree import RandomTreeBuilder
from repro.datasets.shakespeare import hamlet
from repro.labeling.base import LabelingScheme
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme
from repro.order.document import OrderedDocument
from repro.xmlkit.tree import XmlElement

__all__ = [
    "DOCUMENT_SIZES",
    "figure16_table",
    "figure17_table",
    "figure18_table",
]

#: "We select 10 XML files whose size ranges from 1000 to 10,000 nodes."
DOCUMENT_SIZES: Tuple[int, ...] = tuple(range(1_000, 10_001, 1_000))

_SCHEME_FACTORIES: Tuple[Tuple[str, Callable[[], LabelingScheme]], ...] = (
    ("interval", XissIntervalScheme),
    ("prime", lambda: PrimeScheme(reserved_primes=64, power2_leaves=True)),
    ("prefix-2", Prefix2Scheme),
)


def _build_document(node_count: int) -> XmlElement:
    return RandomTreeBuilder(seed=node_count, max_depth=8, max_fanout=40).build(
        node_count
    )


def _deepest_leaf(root: XmlElement) -> XmlElement:
    depth = root.stats().depth
    return next(iter(root.iter_level(depth)))


def _first_node_at_level(root: XmlElement, level: int) -> XmlElement:
    """The first level-``level`` node in SAX parse (preorder) order."""
    for node in root.iter_preorder():
        if node.depth == level:
            return node
    raise ValueError(f"document has no node at level {level}")


def figure16_table(sizes: Sequence[int] = DOCUMENT_SIZES) -> ResultTable:
    """Figure 16: relabels caused by inserting a leaf at the deepest level."""
    table = ResultTable(
        title="Figure 16: update on leaf nodes (# nodes to relabel)",
        columns=("# nodes", "interval", "prime", "prefix-2"),
    )
    for size in sizes:
        counts = []
        for _name, factory in _SCHEME_FACTORIES:
            root = _build_document(size)
            scheme = factory()
            scheme.label_tree(root)
            # The new node goes *under* a deepest-level leaf: the paper's
            # result discussion says the optimized prime scheme relabels two
            # nodes "because the parent node is previously a leaf node".
            target = _deepest_leaf(root)
            report = scheme.insert_leaf(target, tag="new-leaf")
            counts.append(report.count)
        table.add_row(size, *counts)
    return table


def figure17_table(
    sizes: Sequence[int] = DOCUMENT_SIZES, level: int = 4
) -> ResultTable:
    """Figure 17: relabels caused by wrapping the first level-4 node."""
    table = ResultTable(
        title="Figure 17: update on non-leaf nodes (# nodes to relabel)",
        columns=("# nodes", "interval", "prime", "prefix-2"),
    )
    for size in sizes:
        counts = []
        for _name, factory in _SCHEME_FACTORIES:
            root = _build_document(size)
            scheme = factory()
            scheme.label_tree(root)
            target = _first_node_at_level(root, level)
            parent = target.parent
            assert parent is not None
            index = target.child_index
            report = scheme.insert_internal(parent, index, index + 1, tag="wrapper")
            counts.append(report.count)
        table.add_row(size, *counts)
    return table


def _ordered_cost_static(scheme: LabelingScheme, root: XmlElement) -> List[int]:
    """Per-insertion relabel counts for a static/prefix scheme on the
    Figure 18 workload: a new ACT between each pair of consecutive ACTs."""
    scheme.label_tree(root)
    costs: List[int] = []
    acts = [node for node in root.children if node.tag == "ACT"]
    # One insertion in front of each of the five ACTs (Figure 18's x-axis).
    insert_positions = [node.child_index for node in acts]
    offset = 0
    for position in insert_positions:
        if hasattr(scheme, "insert_leaf_ordered"):
            report = scheme.insert_leaf_ordered(root, position + offset, tag="ACT")
        else:
            report = scheme.insert_leaf(root, tag="ACT", index=position + offset)
        costs.append(report.count)
        offset += 1
    return costs


def _ordered_cost_prime(
    root: XmlElement,
    group_size: int = 5,
    trajectory: Optional[List[Dict[str, int]]] = None,
) -> List[int]:
    """Per-insertion total costs (node relabels + SC record updates) for the
    prime scheme with the paper's SC group size of 5.

    When ``trajectory`` is a list and metrics collection is enabled, a
    counter snapshot is appended after every insertion, giving the
    exported exhibit a per-update cost trajectory instead of only the
    final totals.
    """
    document = OrderedDocument(root, group_size=group_size)
    costs: List[int] = []
    acts = [node for node in root.children if node.tag == "ACT"]
    insert_positions = [node.child_index for node in acts]
    offset = 0
    for position in insert_positions:
        report = document.insert_child(root, position + offset, tag="ACT")
        costs.append(report.total_cost)
        if trajectory is not None:
            trajectory.append(dict(metrics.snapshot()["counters"]))
        offset += 1
    return costs


def figure18_table(group_size: int = 5) -> ResultTable:
    """Figure 18: order-sensitive ACT insertions into a Hamlet-sized play.

    Interval and Prefix-2 relabel order-encoding labels; Prime rewrites SC
    records ("we use one SC value to maintain the order of 5 nodes. We
    consider a record update in the SC table as a node that requires
    re-labeling").
    """
    interval_costs = _ordered_cost_static(XissIntervalScheme(), hamlet())
    prefix_costs = _ordered_cost_static(Prefix2Scheme(), hamlet())
    per_insert: List[Dict[str, int]] = []
    with metrics.collecting() as registry:
        prime_costs = _ordered_cost_prime(
            hamlet(), group_size=group_size, trajectory=per_insert
        )
        snapshot = registry.snapshot()
    table = ResultTable(
        title="Figure 18: order-sensitive updates (# nodes to relabel)",
        columns=("updated ACT", "interval", "prefix-2", "prime"),
        note=f"SC group size = {group_size}; prime cost = node relabels + SC record updates",
    )
    table.metrics = {"per_insert_counters": per_insert, "prime_run": snapshot}
    for index in range(len(prime_costs)):
        table.add_row(index + 1, interval_costs[index], prefix_costs[index], prime_costs[index])
    return table
