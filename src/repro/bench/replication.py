"""Replication exhibit: lag, follower-read staleness, read throughput.

Not a paper figure — the paper stops at single-process labeling — but the
natural systems question once the store ships its WAL: what do follower
reads cost, and how stale are they?  The workload runs a primary
:class:`~repro.durable.collection.DurableCollection` through a randomized
mutation stream (Figure 18-style order-sensitive insertions, deletions,
and group-commit batches) while a :class:`~repro.replica.ReplicaCollection`
tails the log on a :class:`~repro.replica.TailerThread` and a
:class:`~repro.replica.ReaderPool` of N threads hammers the replica's
published MVCC views with the paper's nine Table 2 queries.

Per reader count the table reports:

* aggregate follower reads and reads/sec (the MVCC payoff: readers never
  block the tail, so throughput should scale with the pool),
* follower-read staleness (primary seq minus the view's applied seq) at
  its max and mean, sampled per read,
* replication lag in records, sampled primary-side during the stream,
* whether the replica converged byte-identical to the primary
  (:func:`~repro.durable.snapshot.collection_fingerprint`) with a clean
  view audit — a throughput number for a wrong answer is not a data point.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from random import Random
from typing import Optional, Sequence

from repro.bench.harness import ResultTable
from repro.bench.response import PAPER_QUERIES

__all__ = ["replication_table"]

#: Reader-pool sizes reported by the exhibit.
READER_COUNTS = (1, 2, 4)


def replication_table(
    operations: int = 200,
    reader_counts: Sequence[int] = READER_COUNTS,
    node_budget: int = 700,
    batch_every: int = 10,
    seed: int = 23,
    fsync: str = "never",
) -> ResultTable:
    """Measure replication lag and follower-read throughput.

    Each row is an independent run: a fresh primary, a replica tailing it
    from bootstrap, and ``readers`` threads reading published views while
    ``operations`` randomized mutations (every ``batch_every``-th op a
    group-commit batch) land on the primary.  ``fsync`` defaults to
    ``"never"`` so the exhibit measures replication, not the disk.
    """
    # Lazy imports: repro.durable reaches back into repro.obs.audit, the
    # same init-order concern as the durability/resilience exhibits.
    from repro.datasets.shakespeare import play
    from repro.durable import DurableCollection, collection_fingerprint
    from repro.query.live import BatchOp
    from repro.replica import ReaderPool, ReplicaCollection, TailerThread

    queries = [text for _, text in PAPER_QUERIES]

    def mutate(collection: DurableCollection, rng: Random, step: int) -> None:
        """One randomized primary mutation (single op or a small batch)."""
        root = collection.documents[0]
        position = rng.randrange(max(1, len(root.children)))
        if batch_every and step % batch_every == batch_every - 1:
            collection.bulk_insert(
                [(root, position, "SPEECH")] * rng.randint(2, 5)
            )
            return
        roll = rng.random()
        if roll < 0.15 and len(root.children) > 3:
            victim = root.children[rng.randrange(len(root.children))]
            if victim.tag in ("SPEECH", "churn"):
                collection.delete(victim)
                return
        collection.insert_child(root, position, tag="SPEECH")

    def run(readers: int):
        """One full primary/replica/readers run for one pool size."""
        workdir = Path(tempfile.mkdtemp(prefix="repro-replication-"))
        try:
            primary = DurableCollection.create(
                workdir / "col",
                [play(seed=seed, acts=3, node_budget=node_budget)],
                fsync=fsync,
            )
            replica = ReplicaCollection(workdir / "col")
            tailer = TailerThread(replica).start()
            pool = ReaderPool(
                replica.live.latest_view,
                queries,
                threads=readers,
                current_seq=lambda: primary.last_seq,
            ).start()
            rng = Random(seed)
            lag_samples = []
            started = time.perf_counter()
            for step in range(operations):
                mutate(primary, rng, step)
                lag_samples.append(max(0, primary.last_seq - replica.applied_seq))
            stream_elapsed = time.perf_counter() - started
            # Let the replica drain, then stop the harnesses (stop() re-raises
            # any error a thread captured).
            deadline = time.monotonic() + 30.0
            while (
                replica.applied_seq < primary.last_seq
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            report = pool.stop()
            tailer.stop()
            view = replica.read_view()
            identical = collection_fingerprint(
                replica.live
            ) == collection_fingerprint(primary.live)
            audit_ok = view.audit() == []
            converged = replica.applied_seq == primary.last_seq
            primary.close()
            replica.close()
            return {
                "report": report,
                "lag_samples": lag_samples,
                "stream_elapsed": stream_elapsed,
                "identical": identical,
                "audit_ok": audit_ok,
                "converged": converged,
                "resyncs": replica.resyncs,
            }
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    table = ResultTable(
        title=(
            f"Replication: {operations} mixed mutations (batch every "
            f"{batch_every}th) vs follower reads of the Table 2 queries"
        ),
        columns=[
            "readers", "reads", "reads/sec", "stale max", "stale mean",
            "lag max", "lag mean", "converged", "identical", "audit",
        ],
        note=(
            "staleness = primary seq minus the read view's applied seq, "
            "sampled per read; lag sampled primary-side per mutation; "
            "'identical' fingerprints the converged replica against the "
            "primary."
        ),
    )
    for readers in reader_counts:
        outcome = run(readers)
        report = outcome["report"]
        lag_samples = outcome["lag_samples"]
        lag_mean = (
            sum(lag_samples) / len(lag_samples) if lag_samples else 0.0
        )
        table.add_row(
            readers,
            report.reads,
            round(report.reads_per_second, 1),
            report.max_staleness,
            round(report.mean_staleness, 2),
            max(lag_samples, default=0),
            round(lag_mean, 2),
            "yes" if outcome["converged"] else "NO",
            "yes" if outcome["identical"] else "NO",
            "clean" if outcome["audit_ok"] and not report.errors else "VIOLATED",
        )
    return table
