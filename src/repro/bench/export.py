"""Export experiment tables to CSV/JSON and regenerate all exhibits.

``python -m repro bench fig18 --csv out.csv`` and
:func:`export_all_exhibits` (used by ``examples/regenerate_all.py``) write
the paper's tables and figures as machine-readable artifacts, so plots can
be rebuilt outside this library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Dict, List

from repro.bench.harness import ResultTable, capture_metrics

__all__ = ["table_to_csv", "table_to_json", "exhibit_builders", "export_all_exhibits"]


def table_to_csv(table: ResultTable, path: str | Path) -> None:
    """Write one table as CSV (header row = column names)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows)


def table_to_json(table: ResultTable, path: str | Path) -> None:
    """Write one table as JSON: title, note, row dicts, and — when the
    exhibit was built under metrics collection — the counter/timer
    snapshot (``metrics``) so artifacts carry per-run cost trajectories."""
    payload = {
        "title": table.title,
        "note": table.note,
        "columns": list(table.columns),
        "rows": table.as_dicts(),
    }
    if table.metrics is not None:
        payload["metrics"] = table.metrics
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def exhibit_builders(include_slow: bool = True) -> Dict[str, Callable[[], ResultTable]]:
    """Name -> builder for every exhibit; slow ones (query corpus, update
    sweeps) can be excluded for quick smoke runs."""
    from repro import bench
    from repro.bench.response import figure15_table, table2_table

    builders: Dict[str, Callable[[], ResultTable]] = {
        "fig3": bench.figure3_table,
        "fig4": bench.figure4_table,
        "fig5": bench.figure5_table,
        "table1": bench.table1_table,
        "fig13": bench.figure13_table,
        "fig14": bench.figure14_table,
    }
    if include_slow:
        builders.update(
            {
                "table2": table2_table,
                "fig15": figure15_table,
                "fig16": bench.figure16_table,
                "fig17": bench.figure17_table,
                "fig18": bench.figure18_table,
                "throughput": bench.throughput_table,
                "shard": bench.shard_table,
            }
        )
    return builders


def export_all_exhibits(
    directory: str | Path, include_slow: bool = True
) -> List[Path]:
    """Regenerate every exhibit into ``directory`` as CSV + JSON pairs.

    Returns the written paths, sorted.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name, builder in exhibit_builders(include_slow).items():
        table = capture_metrics(builder)
        csv_path = target / f"{name}.csv"
        json_path = target / f"{name}.json"
        table_to_csv(table, csv_path)
        table_to_json(table, json_path)
        written.extend([csv_path, json_path])
    return sorted(written)
