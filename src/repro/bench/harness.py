"""Experiment-harness glue: result tables plus metrics capture.

:class:`~repro.tables.ResultTable` itself lives in :mod:`repro.tables`
(a dependency-free leaf any layer may import); this module re-exports it
for the benchmark suite and adds the one helper that genuinely belongs
to the harness layer: :func:`capture_metrics`, which builds an exhibit
inside a fresh :func:`repro.obs.metrics.collecting` scope and attaches
the counter/gauge/timer snapshot to the table, so exported ``*.json``
artifacts gain per-run counter trajectories alongside the paper's
headline numbers.
"""

from __future__ import annotations

from typing import Callable

from repro.obs import metrics
from repro.tables import ResultTable

__all__ = ["ResultTable", "capture_metrics"]


def capture_metrics(builder: Callable[[], "ResultTable"]) -> "ResultTable":
    """Build an exhibit with metrics collection on; attach the snapshot.

    The builder runs inside a fresh :func:`repro.obs.metrics.collecting`
    scope, so counters reflect exactly this exhibit's work.  A builder
    that already attached its own (richer) ``metrics`` payload — e.g. a
    per-insertion trajectory — keeps it; the scope snapshot is then added
    under its ``"final"`` key only if absent.
    """
    with metrics.collecting() as registry:
        table = builder()
        snapshot = registry.snapshot()
    if table.metrics is None:
        table.metrics = {"final": snapshot}
    elif "final" not in table.metrics:
        table.metrics["final"] = snapshot
    return table
