"""Format-v3 compaction exhibit: legacy vs varint on-disk encodings.

Not a paper figure — the paper's size analysis (§3.1, Figure 14) charges
labels at a fixed column width in a DBMS; this exhibit measures what the
repo's own durable files pay for the same labels before and after the
format-v3 generation:

* snapshot bytes (RPSN v2's 2-byte-length integers vs v3's varints),
* WAL bytes per operation (v1's canonical-JSON payloads vs v3's binary
  opcode + varint payloads),
* recovery wall time over the identical workload, and
* whether both formats recover to the same fingerprint (they must — the
  encodings differ, the state must not).

Both rows run the exact same seeded workload, so every delta is the
encoding's and nothing else's.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from pathlib import Path

# NOTE: repro.durable and the dataset builders are imported lazily inside
# compaction_table — see the comment there.

from repro.bench.harness import ResultTable
from repro.obs import metrics

__all__ = ["compaction_table"]

#: (row label, DurableCollection format_version) per exhibit row.
_FORMATS = (("v2 (legacy)", 2), ("v3 (varint)", 3))


def _run_workload(collection, seed: int, operations: int) -> None:
    rng = random.Random(seed)
    root = collection.documents[0]
    for _ in range(operations):
        nodes = list(root.iter_preorder())
        roll = rng.random()
        target = rng.choice(nodes)
        if roll < 0.70:
            collection.insert_child(target, rng.randint(0, len(target.children)))
        elif roll < 0.85 and target is not root:
            collection.insert_after(target)
        elif target is not root:
            collection.delete(target)


def compaction_table(
    node_budget: int = 600, operations: int = 120, seed: int = 11
) -> ResultTable:
    """Measure snapshot size, WAL bytes/op, and recovery time per format."""
    # Imported here, not at module scope: repro.durable reaches back into
    # repro.obs.audit, which is still initializing when repro.labeling
    # pulls this package in for ResultTable.
    from repro.datasets.shakespeare import play
    from repro.durable import DurableCollection, collection_fingerprint, recover
    from repro.durable.snapshot import snapshot_bytes

    table = ResultTable(
        title=f"Format-v3 compaction ({operations} updates on a "
        f"{node_budget}-node play, identical workload per format)",
        columns=[
            "format",
            "snapshot KiB",
            "wal KiB",
            "wal B/op",
            "recover ms",
            "replayed",
            "identical",
        ],
        note="'identical' compares each recovery to its own pre-crash "
        "fingerprint; both rows must also recover to the same state.",
    )
    fingerprints = []
    for label, format_version in _FORMATS:
        workdir = Path(tempfile.mkdtemp(prefix="repro-compaction-"))
        try:
            with metrics.collecting() as registry:
                collection = DurableCollection.create(
                    workdir / "col",
                    [play(seed=seed, acts=1, node_budget=node_budget)],
                    fsync="never",
                    format_version=format_version,
                )
                _run_workload(collection, seed=seed, operations=operations)
                fingerprint = collection_fingerprint(collection.live)
                snapshot_kib = len(
                    snapshot_bytes(
                        collection.live,
                        version=collection.snapshot_version,
                    )
                ) / 1024.0
                # Simulate the crash: sync, then abandon without closing.
                collection.wal.sync()
                counters = registry.snapshot()["counters"]
            started = time.perf_counter()
            recovered = recover(workdir / "col")
            recover_ms = (time.perf_counter() - started) * 1000.0
            identical = collection_fingerprint(recovered.collection) == fingerprint
            fingerprints.append(fingerprint)
            wal_bytes = counters.get("wal.append_bytes", 0)
            appends = counters.get("wal.appends", 0) or 1
            table.add_row(
                label,
                round(snapshot_kib, 1),
                round(wal_bytes / 1024.0, 1),
                round(wal_bytes / appends, 1),
                round(recover_ms, 2),
                recovered.info.replayed_records,
                "yes" if identical else "NO",
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    if len(set(fingerprints)) != 1:
        table.note += "  WARNING: formats diverged — same workload, different state!"
    return table
