"""Table 1 and Figures 13–14: the space-requirement experiments (§5.1).

Figure 13 measures the effect of the prime scheme's optimizations on
maximum label size across the nine datasets:

* *Original* — top-down prime labeling, no optimizations;
* *Opt1* — reserved small primes for top-level nodes;
* *Opt2* — Opt1 plus power-of-two leaf labels (the configuration of the
  paper's comparative experiments);
* *Opt3* — Opt2 applied to the path-collapsed tree.

Figure 14 compares fixed-length label sizes (the maximum over the dataset)
for Interval, Prime (with Opt1+Opt2, as in the paper) and Prefix-2.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ResultTable
from repro.datasets.niagara import DATASET_NAMES, build_dataset, table1_rows
from repro.labeling.compact import DahlgaardScheme, FraigniaudKormanScheme
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.pathcollapse import collapse_tree
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme

__all__ = ["table1_table", "figure13_table", "figure14_table"]


def table1_table() -> ResultTable:
    """Table 1: dataset characteristics (plus measured depth/fan-out)."""
    table = ResultTable(
        title="Table 1: characteristics of datasets",
        columns=("dataset", "topic", "max # of nodes", "depth", "max fan-out"),
        note="node counts match the paper; depth/fan-out are the synthetic stand-ins'",
    )
    for name, topic, max_nodes in table1_rows():
        stats = build_dataset(name).stats()
        table.add_row(name, topic, max_nodes, stats.depth, stats.max_fanout)
    return table


#: Opt2's leaf threshold for the experiments: past 16 bits a power-of-two
#: leaf self-label would outgrow any prime this corpus needs, so remaining
#: leaf siblings fall back to primes — the refinement Section 3.2 describes
#: ("when the size of a label in a leaf node reaches some pre-determined
#: threshold, we can use other prime numbers instead of powers of 2").
LEAF_THRESHOLD_BITS = 16


def _prime_max_bits(root, reserved: int, power2: bool) -> int:
    scheme = PrimeScheme(
        reserved_primes=reserved,
        power2_leaves=power2,
        leaf_threshold_bits=LEAF_THRESHOLD_BITS if power2 else None,
    )
    scheme.label_tree(root)
    return scheme.max_label_bits()


def figure13_table(datasets: Sequence[str] = DATASET_NAMES) -> ResultTable:
    """Figure 13: effect of Opt1/Opt2/Opt3 on max label size (bits)."""
    table = ResultTable(
        title="Figure 13: effect of optimizations on space requirement",
        columns=("dataset", "Original", "Opt1", "Opt2", "Opt3"),
    )
    for name in datasets:
        root = build_dataset(name)
        original = _prime_max_bits(root, reserved=0, power2=False)
        opt1 = _prime_max_bits(root, reserved=64, power2=False)
        opt2 = _prime_max_bits(root, reserved=64, power2=True)
        collapsed = collapse_tree(root).to_element()
        opt3 = _prime_max_bits(collapsed, reserved=64, power2=True)
        table.add_row(name, original, opt1, opt2, opt3)
    return table


def figure14_table(datasets: Sequence[str] = DATASET_NAMES) -> ResultTable:
    """Figure 14: fixed-length label size (bits) per scheme and dataset.

    Extended beyond the paper's three bars with the two compact ancestry
    baselines of :mod:`repro.labeling.compact` — the Dahlgaard et al.
    ``lg n + 2 lg lg n``-bit optimum ("DKR") and the Fraigniaud–Korman
    small-depth tuning ("FK-depth") — charting how far every
    parent/child-capable scheme sits from the ancestry-only floor.
    """
    table = ResultTable(
        title="Figure 14: space requirements of the labeling schemes",
        columns=("dataset", "Interval", "Prime", "Prefix-2", "DKR", "FK-depth"),
        note="Prime runs with Opt1+Opt2, as in the paper's comparative "
        "study; DKR / FK-depth are ancestry-only compact baselines",
    )
    for name in datasets:
        root = build_dataset(name)
        interval = XissIntervalScheme().label_tree(root).max_label_bits()
        prime = _prime_max_bits(root, reserved=64, power2=True)
        prefix2 = Prefix2Scheme().label_tree(root).max_label_bits()
        dkr = DahlgaardScheme().label_tree(root).max_label_bits()
        fk = FraigniaudKormanScheme().label_tree(root).max_label_bits()
        table.add_row(name, interval, prime, prefix2, dkr, fk)
    return table
