"""Figures 3–5: the analytic size-model exhibits of Section 3.1."""

from __future__ import annotations

from typing import Iterable

from repro.bench.harness import ResultTable
from repro.labeling import sizemodel
from repro.primes.estimates import figure3_series

__all__ = ["figure3_table", "figure4_table", "figure5_table"]


def figure3_table(count: int = 10_000, sample_every: int = 500) -> ResultTable:
    """Figure 3: actual vs PNT-estimated bit length of the first ``count``
    primes, sampled every ``sample_every`` indices for readability."""
    table = ResultTable(
        title="Figure 3: actual vs. estimated prime bit length",
        columns=("n", "actual bits", "estimated bits"),
        note=f"first {count} primes, rows sampled every {sample_every}",
    )
    for n, actual_bits, estimated_bits in figure3_series(count):
        if n == 1 or n % sample_every == 0:
            table.add_row(n, actual_bits, estimated_bits)
    return table


def figure4_table(fanouts: Iterable[int] = range(5, 51, 5), depth: int = 2) -> ResultTable:
    """Figure 4: max self-label bits vs fan-out (depth fixed, default 2)."""
    table = ResultTable(
        title=f"Figure 4: self-label size vs fan-out (D={depth})",
        columns=("fan-out", "Prefix-1", "Prefix-2", "Prime"),
    )
    for fanout, series in sizemodel.figure4_series(fanouts, depth):
        table.add_row(fanout, series["prefix-1"], series["prefix-2"], series["prime"])
    return table


def figure5_table(depths: Iterable[int] = range(0, 11), fanout: int = 15) -> ResultTable:
    """Figure 5: max self-label bits vs depth (fan-out fixed, default 15)."""
    table = ResultTable(
        title=f"Figure 5: self-label size vs depth (F={fanout})",
        columns=("depth", "Prefix-1", "Prefix-2", "Prime"),
    )
    for depth, series in sizemodel.figure5_series(depths, fanout):
        table.add_row(depth, series["prefix-1"], series["prefix-2"], series["prime"])
    return table
