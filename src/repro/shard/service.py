""":class:`ShardedCollection` — the user-facing sharded service facade.

Construction mirrors :class:`~repro.durable.collection.DurableCollection`
(``create`` / ``open``), but the directory is a *root* holding one
self-contained durable subdirectory per shard plus the atomic
``SHARDS.json`` manifest::

    root/
      SHARDS.json        shard count + global doc count (placement inputs)
      shard-00/          a complete DurableCollection directory
        wal.log
        snap-*.rpsn
        CURRENT
      shard-01/
      ...

``create`` builds every shard's initial durable state *in the parent
process* (so creation errors surface synchronously, and workers only
ever take the recovery path), then starts the worker fleet.  ``open``
reads the manifest and starts workers, each of which recovers its own
subdirectory independently — shard recovery is single-collection
recovery, N times, in parallel failure domains.

The mutation surface speaks the addressed currency used everywhere else
in the durability stack: global ``(document index, preorder position)``
pairs.  Addresses rather than node references are what make the facade's
operations routable, retriable, and bufferable — a node object cannot
cross a process boundary, an address can.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.durable.collection import DurableCollection
from repro.durable.recovery import shard_directory
from repro.errors import ShardError
from repro.obs import metrics
from repro.shard.health import HealthPolicy, ShardHealth, ShardState
from repro.shard.partitioner import (
    MANIFEST_NAME,
    DocumentMap,
    ShardManifest,
    read_manifest,
    write_manifest,
)
from repro.shard.router import PartialResult, ShardRouter
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import WorkerConfig
from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import XmlElement

__all__ = ["ShardedCollection"]


class ShardedCollection:
    """N supervised shard workers behind one router, as one collection."""

    def __init__(
        self,
        root: Path,
        manifest: ShardManifest,
        doc_map: DocumentMap,
        supervisor: ShardSupervisor,
        router: ShardRouter,
    ):
        self.root = root
        self.manifest = manifest
        self.doc_map = doc_map
        self.supervisor = supervisor
        self.router = router
        self._closed = False

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def create(
        cls,
        root: str | Path,
        documents: Sequence[XmlElement],
        shards: int = 2,
        group_size: int = 5,
        strategy: str = "scan",
        fsync: str = "always",
        **serving: Any,
    ) -> "ShardedCollection":
        """Initialise a fresh sharded collection and start its workers.

        ``serving`` keywords pass through to :meth:`_start`:
        ``query_mode``, ``mutation_policy``, ``policy`` (a
        :class:`HealthPolicy`), ``fault_spec``, ``start_method``,
        ``query_budget``, ``mutation_timeout``, ``verify``.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if (root / MANIFEST_NAME).exists():
            raise ShardError(
                f"{root} already holds a sharded collection; open() it instead"
            )
        doc_map = DocumentMap(shards)
        placed: List[List[XmlElement]] = [[] for _ in range(shards)]
        for document in documents:
            _, shard_id, _ = doc_map.add()
            placed[shard_id].append(document)
        for shard_id in range(shards):
            DurableCollection.create(
                shard_directory(root, shard_id),
                placed[shard_id],
                group_size=group_size,
                strategy=strategy,
                fsync=fsync,
            ).close()
        manifest = ShardManifest(
            shards=shards,
            doc_count=doc_map.doc_count,
            group_size=group_size,
            strategy=strategy,
            fsync=fsync,
        )
        write_manifest(root, manifest)
        return cls._start(root, manifest, **serving)

    @classmethod
    def open(
        cls,
        root: str | Path,
        fsync: Optional[str] = None,
        **serving: Any,
    ) -> "ShardedCollection":
        """Start workers over an existing root; each recovers its shard."""
        root = Path(root)
        manifest = read_manifest(root)
        if fsync is not None:
            manifest = replace(manifest, fsync=fsync)
        return cls._start(root, manifest, **serving)

    @classmethod
    def _start(
        cls,
        root: Path,
        manifest: ShardManifest,
        query_mode: str = "partial",
        mutation_policy: str = "buffer",
        policy: Optional[HealthPolicy] = None,
        fault_spec: Optional[str] = None,
        start_method: Optional[str] = None,
        query_budget: float = 5.0,
        mutation_timeout: float = 30.0,
        verify: bool = True,
    ) -> "ShardedCollection":
        """Spawn the fleet, wire supervisor ⇄ router, prime watermarks."""
        doc_map = DocumentMap(manifest.shards, manifest.doc_count)
        configs = [
            WorkerConfig(
                shard_id=shard_id,
                root=str(root),
                fsync=manifest.fsync,
                verify=verify,
                fault_spec=fault_spec,
            )
            for shard_id in range(manifest.shards)
        ]
        supervisor = ShardSupervisor(
            configs, policy=policy, start_method=start_method
        )
        router = ShardRouter(
            supervisor,
            doc_map,
            query_mode=query_mode,
            mutation_policy=mutation_policy,
            query_budget=query_budget,
            mutation_timeout=mutation_timeout,
        )
        supervisor.start()
        router.prime()
        metrics.gauge("shard.workers", manifest.shards)
        return cls(root, manifest, doc_map, supervisor, router)

    # ------------------------------------------------------------------
    # Mutations (global addressed currency)

    def insert_child(
        self, doc: int, parent: int, index: int, tag: str = "new"
    ) -> Dict[str, Any]:
        """Insert under global ``doc``'s preorder-``parent`` at ``index``."""
        return self.router.apply(
            {"op": "insert_child", "doc": doc, "parent": parent,
             "index": index, "tag": tag}
        )

    def insert_before(self, doc: int, ref: int, tag: str = "new") -> Dict[str, Any]:
        """Insert a sibling before preorder position ``ref`` of ``doc``."""
        return self.router.apply(
            {"op": "insert_before", "doc": doc, "ref": ref, "tag": tag}
        )

    def insert_after(self, doc: int, ref: int, tag: str = "new") -> Dict[str, Any]:
        """Insert a sibling after preorder position ``ref`` of ``doc``."""
        return self.router.apply(
            {"op": "insert_after", "doc": doc, "ref": ref, "tag": tag}
        )

    def delete(self, doc: int, node: int) -> Dict[str, Any]:
        """Delete the subtree at preorder position ``node`` of ``doc``."""
        return self.router.apply({"op": "delete", "doc": doc, "node": node})

    def add_document(self, document: "XmlElement | str") -> Dict[str, Any]:
        """Add a document (tree or XML text); updates the manifest.

        The manifest's ``doc_count`` is republished immediately so a
        concurrent ``shard-status`` or a later ``open()`` derives the
        same placement this router is using.
        """
        xml = document if isinstance(document, str) else serialize(document)
        ack = self.router.add_document(xml)
        self.manifest = replace(self.manifest, doc_count=self.doc_map.doc_count)
        write_manifest(self.root, self.manifest)
        return ack

    def apply_batch(
        self, entries: Sequence[Dict[str, Any]]
    ) -> Dict[int, Dict[str, Any]]:
        """Apply an addressed batch; atomic per shard (see the router).

        Entries use the durable layer's ``encode_batch`` addressed form
        with a *global* ``doc``: ``{"kind": "insert_child", "doc": g,
        "pos": parent, "index": i, "tag": t}``, ``{"kind": "delete",
        "doc": g, "pos": node}``, or ``{"kind": "insert_before" |
        "insert_after", "doc": g, "pos": ref, "tag": t}``.
        """
        return self.router.apply_batch(entries)

    def compact(self) -> Dict[int, Dict[str, Any]]:
        """Run logged SC compaction on every shard (through the journal)."""
        return {
            shard_id: self.router.compact_shard(shard_id)
            for shard_id in self.supervisor.shard_ids
        }

    # ------------------------------------------------------------------
    # Reads

    def query(self, text: str, budget: Optional[float] = None) -> PartialResult:
        """Scatter-gather query; see :class:`PartialResult` for the contract."""
        return self.router.query(text, budget=budget)

    def count(self, text: str, budget: Optional[float] = None) -> Dict[str, Any]:
        """Scatter-gather count (a lower bound when shards are missing)."""
        return self.router.count(text, budget=budget)

    def serialize_document(self, doc: int) -> str:
        """The serialized XML of global document ``doc`` (authoritative).

        Routed to the owning worker; raises
        :class:`~repro.errors.ShardUnavailableError` while it is away —
        byte-identity checks must never silently read stale state.
        """
        shard_id, local = self.doc_map.to_local(doc)
        self.router.pump()
        response = self.supervisor.request(
            shard_id, "serialize", {"doc": local}, timeout=60.0
        )
        return response.value

    def audit(self) -> Dict[int, List[str]]:
        """Per-shard invariant-audit violations from every UP shard."""
        return self.router.broadcast("audit")

    def fingerprints(self) -> Dict[int, str]:
        """Per-shard collection fingerprints from every UP shard."""
        return self.router.broadcast("fingerprint")

    # ------------------------------------------------------------------
    # Supervision surface

    def tick(self) -> List[Any]:
        """One supervision round (restarts, heartbeats, quarantines)."""
        return self.router.pump()

    def status(self) -> List[ShardHealth]:
        """Every shard's health, including router-side buffered ops."""
        out: List[ShardHealth] = []
        for shard_id in self.supervisor.shard_ids:
            health = self.supervisor.health(shard_id)
            health.buffered_ops = self.router.buffered_ops(shard_id)
            out.append(health)
        return out

    def kill_worker(self, shard_id: int) -> None:
        """Chaos hook: SIGKILL one worker; the supervisor takes it from there."""
        self.supervisor.kill(shard_id)

    def attach_replica(self, shard_id: int, replica: Any) -> None:
        """Attach a PR 7 replica tailer as a read fallback for one shard."""
        self.router.attach_replica(shard_id, replica)

    def settle(
        self,
        timeout: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> bool:
        """Drive supervision until no shard is DOWN (or ``timeout`` passes).

        Returns True when every shard is UP with an empty router buffer —
        i.e. all restarts finished and every buffered mutation replayed.
        Quarantined shards never settle; the method then returns False
        once nothing remains restartable.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.router.pump()
            states = [self.supervisor.state_of(s) for s in self.supervisor.shard_ids]
            buffered = sum(
                self.router.buffered_ops(s) for s in self.supervisor.shard_ids
            )
            if ShardState.DOWN not in states:
                return (
                    all(state is ShardState.UP for state in states) and buffered == 0
                )
            sleep(0.01)
        return False

    def checkpoint(self) -> Dict[int, Any]:
        """Checkpoint every UP shard (new snapshot generation each)."""
        return self.router.broadcast("checkpoint")

    @property
    def doc_count(self) -> int:
        """Global documents across all shards."""
        return self.doc_map.doc_count

    def close(self) -> None:
        """Shut the fleet down cleanly (idempotent)."""
        if self._closed:
            return
        try:
            self.supervisor.stop()
        finally:
            self._closed = True

    def __enter__(self) -> "ShardedCollection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
