"""The shard router: scatter-gather queries, exactly-once mutations.

The router is the single client-facing endpoint of a sharded
collection.  It owns three correctness-critical disciplines:

**Deadline accounting.**  A scatter-gather query has one overall budget;
a slow shard must not consume all of it and starve the shards after it
in gather order.  The gather loop therefore gives each shard
``remaining budget / outstanding shards`` — the fair share that
guarantees the last shard polled still gets time whenever earlier
shards were fast (their unused share rolls forward into the remainder).

**Graceful degradation.**  Query modes mirror the PR 3 breaker contract:
``partial`` answers with whatever arrived, *tagged* with the missing
shard set (never silently incomplete — an empty ``missing_shards`` is
the completeness proof); ``fail_fast`` raises a typed
:class:`~repro.errors.ShardUnavailableError` instead.  A down shard
with an attached replica tailer (PR 7) is read through the replica and
tagged *stale* rather than missing.  Mutations follow the analogous
``buffer | reject`` policy.

**The redo journal.**  Mutations are acked with the shard's WAL
sequence number.  Per shard the router tracks the highest acked seq,
the single in-flight (sent, unacked) bundle, and a FIFO of bundles
buffered while the shard is away.  When the supervisor restarts a
worker, its recovered WAL seq resolves the in-flight ambiguity exactly:
``recovered > acked`` means the bundle's record reached the log before
death (drop it — replaying would double-apply); ``recovered == acked``
means it never landed (requeue it first).  Each bundle is one WAL
record (single op or group-committed batch), which is what makes this
single-comparison reconciliation sound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ShardError,
    ShardUnavailableError,
)
from repro.obs import metrics
from repro.shard.health import ShardState
from repro.shard.messages import rehydrate_error
from repro.shard.partitioner import DocumentMap
from repro.shard.supervisor import ShardSupervisor

__all__ = ["PartialResult", "RemoteRow", "ShardRouter"]

#: Query degradation modes, mirroring the resilient layer's contract.
QUERY_MODES = ("partial", "fail_fast")
#: What happens to a mutation routed to a shard that is DOWN.
MUTATION_POLICIES = ("buffer", "reject")

#: A mutation bundle: ``(request kind, payload)`` — exactly one WAL
#: record on the worker, the unit the redo journal reasons about.
Bundle = Tuple[str, Dict[str, Any]]


@dataclass(frozen=True)
class RemoteRow:
    """One query result row, re-addressed to global document ids."""

    doc: int
    tag: str
    depth: int
    text: str = ""


@dataclass(frozen=True)
class PartialResult:
    """A scatter-gather answer plus its completeness provenance.

    ``missing_shards`` names every shard whose documents are absent from
    ``rows``; ``stale_shards`` names shards answered from their replica
    tailer (present, possibly lagging).  ``complete`` is only True when
    both sets are empty — a partial answer can never masquerade as a
    full one.
    """

    rows: Tuple[RemoteRow, ...]
    missing_shards: frozenset = frozenset()
    stale_shards: frozenset = frozenset()
    elapsed: float = 0.0

    @property
    def complete(self) -> bool:
        """True only when every shard answered authoritatively."""
        return not self.missing_shards and not self.stale_shards


@dataclass
class _Journal:
    """Per-shard redo state: acked watermark, in-flight bundle, buffer."""

    acked_seq: int = 0
    inflight: Optional[Bundle] = None
    buffer: List[Bundle] = field(default_factory=list)


class ShardRouter:
    """Routes queries and mutations across supervised shard workers."""

    def __init__(
        self,
        supervisor: ShardSupervisor,
        doc_map: DocumentMap,
        query_mode: str = "partial",
        mutation_policy: str = "buffer",
        query_budget: float = 5.0,
        mutation_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        """Wire a router over ``supervisor``; wires itself as callbacks."""
        if query_mode not in QUERY_MODES:
            raise ShardError(
                f"query mode must be one of {QUERY_MODES}, got {query_mode!r}"
            )
        if mutation_policy not in MUTATION_POLICIES:
            raise ShardError(
                f"mutation policy must be one of {MUTATION_POLICIES}, "
                f"got {mutation_policy!r}"
            )
        self.supervisor = supervisor
        self.doc_map = doc_map
        self.query_mode = query_mode
        self.mutation_policy = mutation_policy
        self.query_budget = query_budget
        self.mutation_timeout = mutation_timeout
        self.clock = clock
        self._journals: Dict[int, _Journal] = {
            shard_id: _Journal() for shard_id in supervisor.shard_ids
        }
        self.replicas: Dict[int, Any] = {}
        #: ``(shard, recovered WAL seq)`` per supervisor restart — the
        #: observable record of every recovery the service lived through.
        self.restart_log: List[Tuple[int, int]] = []
        supervisor.on_restart = self._handle_restart
        supervisor.on_down = self._handle_down

    # ------------------------------------------------------------------
    # Lifecycle hooks

    def prime(self) -> None:
        """Adopt the supervisor's post-start watermarks (call once)."""
        for shard_id in self.supervisor.shard_ids:
            self._journals[shard_id].acked_seq = self.supervisor.health(
                shard_id
            ).last_seq

    def pump(self) -> List[Tuple[str, int, int]]:
        """One supervision round (restarts fire redo replay inside)."""
        return self.supervisor.tick()

    def attach_replica(self, shard_id: int, replica: Any) -> None:
        """Register a PR 7 replica tailer as ``shard_id``'s read fallback.

        ``replica`` is duck-typed to :class:`repro.replica.ReplicaCollection`
        (``catch_up()`` + ``read_view()``), so tests can attach doubles.
        """
        self._journal(shard_id)  # validates the shard id
        self.replicas[shard_id] = replica

    def _journal(self, shard_id: int) -> _Journal:
        try:
            return self._journals[shard_id]
        except KeyError:
            raise ShardError(
                f"no such shard {shard_id}; routing over "
                f"{self.supervisor.shard_ids}"
            ) from None

    def _handle_down(self, shard_id: int) -> None:
        metrics.incr("shard.router_down_events")

    def _handle_restart(self, shard_id: int, recovered_seq: int) -> None:
        """Reconcile the redo journal against a restarted worker.

        The in-flight ambiguity resolves by sequence comparison (see the
        module docstring); then the buffered backlog replays in original
        order before any new traffic reaches the shard.
        """
        journal = self._journal(shard_id)
        if journal.inflight is not None:
            if recovered_seq > journal.acked_seq:
                # The bundle's record hit the log before the crash;
                # recovery already replayed it.  Re-sending would apply
                # it twice.
                journal.inflight = None
                metrics.incr("shard.redo_resolved_applied")
            else:
                journal.buffer.insert(0, journal.inflight)
                journal.inflight = None
                metrics.incr("shard.redo_resolved_lost")
        journal.acked_seq = max(journal.acked_seq, recovered_seq)
        self.restart_log.append((shard_id, recovered_seq))
        self._flush(shard_id)

    def _flush(self, shard_id: int) -> None:
        """Drain the buffered backlog to a freshly-UP shard, in order."""
        journal = self._journal(shard_id)
        while journal.buffer and self.supervisor.is_up(shard_id):
            bundle = journal.buffer.pop(0)
            journal.inflight = bundle
            kind, payload = bundle
            try:
                response = self.supervisor.request(
                    shard_id, kind, payload, timeout=self.mutation_timeout
                )
            except ShardUnavailableError:
                # Died mid-replay; the next restart reconciles inflight.
                metrics.incr("shard.replay_interrupted")
                return
            except DeadlineExceededError:
                self.supervisor.fail(shard_id, "mutation replay deadline")
                metrics.incr("shard.replay_interrupted")
                return
            journal.acked_seq = max(
                journal.acked_seq, int(response.value["last_seq"])
            )
            journal.inflight = None
            metrics.incr("shard.replayed_ops")

    # ------------------------------------------------------------------
    # Mutations

    def apply(self, op: Dict[str, Any]) -> Dict[str, Any]:
        """Route one addressed mutation (``doc`` is a *global* index).

        Returns ``{"status": "applied", ...ack...}``, or a ``buffered`` /
        ``pending`` status under the ``buffer`` policy while the shard is
        away (``pending``: sent but unacked when the worker died; the
        restart reconciliation decides whether it must replay).
        """
        kind = op.get("op")
        if kind == "add_document":
            raise ShardError("route add_document through add_document()")
        shard_id, local = self.doc_map.to_local(int(op["doc"]))
        return self._mutate(shard_id, ("apply", {"op": {**op, "doc": local}}))

    def add_document(self, xml: str) -> Dict[str, Any]:
        """Place and ship a new document; returns the ack + global id.

        The global id is assigned here (placement must happen even when
        the owning shard is down, so later documents keep their ids);
        the shipped op carries only the XML — the worker's local index
        is implied by arrival order, which the buffer preserves.
        """
        doc_id, shard_id, _local = self.doc_map.add()
        ack = self._mutate(
            shard_id, ("apply", {"op": {"op": "add_document", "xml": xml}})
        )
        return {**ack, "doc": doc_id, "shard": shard_id}

    def apply_batch(
        self, entries: Sequence[Dict[str, Any]]
    ) -> Dict[int, Dict[str, Any]]:
        """Route an addressed batch, split by owning shard.

        Each shard's sub-batch group-commits as one WAL record — atomic
        *per shard*, the strongest unit a shared-nothing layout offers
        (there is no cross-shard transaction).  Returns each involved
        shard's ack, keyed by shard id.
        """
        by_shard: Dict[int, List[Dict[str, Any]]] = {}
        for entry in entries:
            shard_id, local = self.doc_map.to_local(int(entry["doc"]))
            by_shard.setdefault(shard_id, []).append({**entry, "doc": local})
        acks: Dict[int, Dict[str, Any]] = {}
        for shard_id in sorted(by_shard):
            acks[shard_id] = self._mutate(
                shard_id, ("apply_batch", {"entries": by_shard[shard_id]})
            )
        return acks

    def compact_shard(self, shard_id: int) -> Dict[str, Any]:
        """Route a logged SC compaction to one shard (journalled)."""
        return self._mutate(shard_id, ("apply", {"op": {"op": "compact"}}))

    def _mutate(self, shard_id: int, bundle: Bundle) -> Dict[str, Any]:
        """The single mutation path: journal, send, ack — or degrade."""
        self.pump()
        journal = self._journal(shard_id)
        state = self.supervisor.state_of(shard_id)
        if state in (ShardState.QUARANTINED, ShardState.STOPPED):
            metrics.incr("shard.rejected_mutations")
            raise self.supervisor.unavailable(shard_id, f"apply {bundle[0]}")
        if state is not ShardState.UP or journal.buffer:
            # Away, or an un-drained backlog this op must queue behind to
            # preserve per-shard order.
            if self.mutation_policy == "reject":
                metrics.incr("shard.rejected_mutations")
                raise self.supervisor.unavailable(shard_id, f"apply {bundle[0]}")
            journal.buffer.append(bundle)
            metrics.incr("shard.buffered_ops")
            return {"status": "buffered", "shard": shard_id}
        journal.inflight = bundle
        kind, payload = bundle
        try:
            response = self.supervisor.request(
                shard_id, kind, payload, timeout=self.mutation_timeout
            )
        except ShardUnavailableError:
            return self._mutation_interrupted(shard_id, journal)
        except DeadlineExceededError:
            # Slow is dead: ack accounting cannot survive an abandoned
            # in-flight response followed by more traffic, so the worker
            # is killed and the restart reconciliation takes over.
            self.supervisor.fail(shard_id, "mutation deadline exceeded")
            return self._mutation_interrupted(shard_id, journal)
        journal.acked_seq = max(journal.acked_seq, int(response.value["last_seq"]))
        journal.inflight = None
        return {"status": "applied", "shard": shard_id, **response.value}

    def _mutation_interrupted(
        self, shard_id: int, journal: _Journal
    ) -> Dict[str, Any]:
        """The worker died holding our bundle; degrade per policy."""
        if self.mutation_policy == "buffer":
            # Leave ``inflight`` set: the restart reconciliation decides
            # replay-vs-drop from the recovered sequence number.
            metrics.incr("shard.pending_mutations")
            return {"status": "pending", "shard": shard_id}
        # Reject policy is at-most-once with an ambiguous failure window:
        # the caller is told the op failed, so it must never be replayed.
        journal.inflight = None
        metrics.incr("shard.rejected_mutations")
        raise self.supervisor.unavailable(shard_id, "apply (worker died mid-op)")

    # ------------------------------------------------------------------
    # Queries

    def query(self, text: str, budget: Optional[float] = None) -> PartialResult:
        """Scatter ``text`` to every shard; gather within ``budget`` s."""
        return self._scatter_gather("query", {"text": text}, budget)

    def count(self, text: str, budget: Optional[float] = None) -> Dict[str, Any]:
        """Scatter-gather a count; same degradation contract as query.

        Returns ``{"count", "missing_shards", "stale_shards"}`` — the
        count is a lower bound whenever ``missing_shards`` is non-empty.
        """
        result = self._scatter_gather("count", {"text": text}, budget)
        return {
            "count": sum(row.depth for row in result.rows),
            "missing_shards": set(result.missing_shards),
            "stale_shards": set(result.stale_shards),
        }

    def _scatter_gather(
        self, kind: str, payload: Dict[str, Any], budget: Optional[float]
    ) -> PartialResult:
        self.pump()
        budget = self.query_budget if budget is None else budget
        start = self.clock()
        sent: List[Tuple[int, int]] = []  # (shard, request id), send order
        away: List[int] = []
        for shard_id in self.supervisor.shard_ids:
            if not self.supervisor.is_up(shard_id):
                away.append(shard_id)
                continue
            try:
                sent.append((shard_id, self.supervisor.send(shard_id, kind, payload)))
            except ShardUnavailableError:
                away.append(shard_id)
        rows: List[RemoteRow] = []
        missing: Set[int] = set()
        stale: Set[int] = set()
        with metrics.timed("shard.scatter_gather"):
            for position, (shard_id, request_id) in enumerate(sent):
                # Satellite-2 deadline accounting: this shard's wait is
                # its fair share of what is left, so one stalled shard
                # can burn only 1/outstanding of the remaining budget.
                outstanding = len(sent) - position
                remaining = max(0.0, budget - (self.clock() - start))
                share = remaining / outstanding
                try:
                    response = self.supervisor.receive(shard_id, request_id, share)
                except DeadlineExceededError:
                    metrics.incr("shard.query_timeouts")
                    missing.add(shard_id)
                    continue
                except ShardUnavailableError:
                    missing.add(shard_id)
                    continue
                if not response.ok:
                    # A typed worker-side error (bad query text, capacity)
                    # is the caller's answer, not a degraded shard.
                    raise rehydrate_error(response.error or {}, shard=shard_id)
                self.supervisor.note_served(shard_id)
                rows.extend(self._remap(kind, shard_id, response.value))
        for shard_id in away:
            if not self._read_from_replica(kind, shard_id, payload, rows, stale):
                missing.add(shard_id)
        if missing:
            metrics.incr("shard.partial_responses")
            if self.query_mode == "fail_fast":
                raise ShardUnavailableError(
                    f"fail_fast {kind}: shards {sorted(missing)} did not "
                    f"answer within the {budget:.3f}s budget",
                    shard=min(missing),
                    state=self.supervisor.state_of(min(missing)).value,
                )
        rows.sort(key=lambda row: row.doc)  # stable: in-doc order survives
        return PartialResult(
            rows=tuple(rows),
            missing_shards=frozenset(missing),
            stale_shards=frozenset(stale),
            elapsed=self.clock() - start,
        )

    def _remap(self, kind: str, shard_id: int, value: Any) -> List[RemoteRow]:
        """Worker-local result → globally-addressed rows.

        Counts ride the same row channel (``depth`` carries the count)
        so both verbs share one gather loop.
        """
        if kind == "count":
            return [RemoteRow(doc=-1, tag="#count", depth=int(value))]
        return [
            RemoteRow(
                doc=self.doc_map.to_global(shard_id, local),
                tag=tag,
                depth=depth,
                text=text,
            )
            for local, tag, depth, text in value
        ]

    def _read_from_replica(
        self,
        kind: str,
        shard_id: int,
        payload: Dict[str, Any],
        rows: List[RemoteRow],
        stale: Set[int],
    ) -> bool:
        """Serve a down shard from its replica tailer, if one is attached."""
        replica = self.replicas.get(shard_id)
        if replica is None:
            return False
        try:
            replica.catch_up()
            view = replica.read_view()
            if kind == "count":
                rows.append(
                    RemoteRow(doc=-1, tag="#count", depth=view.count(payload["text"]))
                )
            else:
                rows.extend(
                    self._remap(
                        "query",
                        shard_id,
                        [
                            (row.doc_id, row.tag, row.depth, row.text)
                            for row in view.query(payload["text"])
                        ],
                    )
                )
        except ReproError:
            metrics.incr("shard.replica_fallback_failures")
            return False
        stale.add(shard_id)
        metrics.incr("shard.replica_fallbacks")
        return True

    # ------------------------------------------------------------------
    # Maintenance fan-out

    def broadcast(
        self, kind: str, payload: Optional[Dict[str, Any]] = None, timeout: float = 60.0
    ) -> Dict[int, Any]:
        """Run a maintenance verb on every UP shard; skip the rest.

        Returns per-shard values for the shards that answered; callers
        compare the key set against ``supervisor.shard_ids`` when they
        need to know who was skipped.
        """
        out: Dict[int, Any] = {}
        self.pump()
        for shard_id in self.supervisor.shard_ids:
            if not self.supervisor.is_up(shard_id):
                continue
            try:
                out[shard_id] = self.supervisor.request(
                    shard_id, kind, payload or {}, timeout=timeout
                ).value
            except ReproError:
                metrics.incr("shard.broadcast_failures")
        return out

    def buffered_ops(self, shard_id: int) -> int:
        """Bundles parked for ``shard_id`` (including any in-flight one)."""
        journal = self._journal(shard_id)
        return len(journal.buffer) + (1 if journal.inflight else 0)
