"""Request/response framing for the router ⇄ worker control pipe.

The RPC layer is deliberately thin: plain picklable dataclasses sent
over a :class:`multiprocessing.connection.Connection`.  Three rules give
it its timeout and crash semantics:

* every request carries a per-shard monotonically increasing ``id``; a
  response echoes the id of the request it answers,
* the router may *abandon* a request (deadline expired) and move on; a
  late response then sits in the pipe until the next receive, which
  discards any response with ``id`` lower than the one it waits for,
* a failed request travels back as data, not as a raised exception: the
  worker catches its own errors, classifies them with the resilient
  layer's fault domains, and ships ``(kind, message, domain)`` so the
  router can rehydrate a *typed* error in its own process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Type

from repro import errors as _errors
from repro.errors import ReproError, ShardError
from repro.resilient.policy import classify_fault

__all__ = ["Request", "Response", "encode_error", "rehydrate_error"]


@dataclass(frozen=True)
class Request:
    """One routed operation: ``kind`` selects the worker handler."""

    id: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Response:
    """The worker's answer to the request with the same ``id``."""

    id: int
    ok: bool
    value: Any = None
    error: Optional[Dict[str, str]] = None


def encode_error(error: BaseException) -> Dict[str, str]:
    """Flatten an exception into a picklable ``(kind, message, domain)``.

    The concrete class name (not the instance) crosses the pipe, so a
    worker-side failure can never smuggle unpicklable state — or code —
    into the router process.
    """
    return {
        "kind": type(error).__name__,
        "message": str(error),
        "domain": classify_fault(error).name,
    }


def rehydrate_error(encoded: Dict[str, str], shard: int) -> ReproError:
    """Rebuild a typed exception from a worker's encoded error.

    Error kinds named in :mod:`repro.errors` come back as that type (so
    ``except CapacityError`` works identically against a sharded or a
    local collection); anything else — a worker-side ``KeyError``, say —
    surfaces as a :class:`ShardError` carrying the original kind.
    """
    kind = encoded.get("kind", "ShardError")
    message = encoded.get("message", "shard worker error")
    candidate = getattr(_errors, kind, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        exc_type: Type[ReproError] = candidate
        return exc_type(f"shard {shard}: {message}")
    return ShardError(f"shard {shard} failed with {kind}: {message}")
