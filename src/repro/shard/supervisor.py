"""The shard supervisor: spawn, health-check, restart, quarantine.

The supervisor owns every process-lifecycle concern so the router can
treat shards as logical endpoints that are merely sometimes away:

* **spawn** — each shard runs :func:`repro.shard.worker.worker_main` in
  its own process (``fork`` start method where available, ``spawn``
  otherwise) with one end of a private control pipe; a handshake ping
  confirms the worker recovered its durable state and reports the
  recovered WAL sequence number,
* **health** — event-driven, no supervisor thread: :meth:`tick` (called
  by the router before every operation, and by soak loops directly)
  reaps dead processes, runs throttled heartbeat rounds, and counts
  missed heartbeats; a worker that misses too many in a row is declared
  hung and killed — a wedged process is treated exactly like a dead one,
* **restart** — a dead shard is respawned through the standard per-shard
  WAL/snapshot recovery path after a backoff delay from the resilient
  layer's :class:`~repro.resilient.policy.RetryPolicy` (capped
  exponential, seeded jitter),
* **quarantine** — a shard that dies more than ``restart_budget`` times
  without serving a single successful request in between is assumed
  deterministically poisoned and parked in ``QUARANTINED`` until an
  operator intervenes; the budget state travels in every
  :class:`~repro.errors.ShardUnavailableError` raised on its behalf.

Request plumbing lives here too (:meth:`send` / :meth:`receive` /
:meth:`request`) because failure detection and request failure are the
same event: a dead pipe discovered mid-request marks the shard DOWN.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ShardError,
    ShardUnavailableError,
)
from repro.obs import metrics
from repro.shard.health import HealthPolicy, ShardHealth, ShardState
from repro.shard.messages import Request, Response, rehydrate_error
from repro.shard.worker import WorkerConfig, worker_main

__all__ = ["ShardSupervisor"]


def _start_method(preferred: Optional[str]) -> str:
    """Pick a start method: ``fork`` where the platform offers it.

    ``fork`` keeps worker start (and therefore restart-after-crash) in
    the low milliseconds; ``spawn`` works everywhere and exercises the
    picklability of :class:`WorkerConfig` that the bootstrap contract
    guarantees anyway.
    """
    available = multiprocessing.get_all_start_methods()
    if preferred:
        if preferred not in available:
            raise ShardError(
                f"start method {preferred!r} unavailable; have {available}"
            )
        return preferred
    return "fork" if "fork" in available else "spawn"


@dataclass
class _Slot:
    """Supervisor-internal bookkeeping for one shard."""

    config: WorkerConfig
    state: ShardState = ShardState.DOWN
    proc: Optional[Any] = None  # multiprocessing.Process
    conn: Optional[Any] = None  # multiprocessing.connection.Connection
    restarts: int = 0
    consecutive_failures: int = 0
    missed_heartbeats: int = 0
    next_request_id: int = 0
    #: Monotonic instant before which a restart must not be attempted.
    next_restart_at: float = 0.0
    #: Recovered/acked WAL sequence, as last observed by the supervisor.
    last_seq: int = 0
    quarantine_reason: Optional[str] = None
    #: Events appended by state transitions, drained by :meth:`tick`.
    events: List[Tuple[str, int, int]] = field(default_factory=list)


class ShardSupervisor:
    """Lifecycle manager for a fleet of shard worker processes."""

    def __init__(
        self,
        configs: Sequence[WorkerConfig],
        policy: Optional[HealthPolicy] = None,
        start_method: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        on_restart: Optional[Callable[[int, int], None]] = None,
        on_down: Optional[Callable[[int], None]] = None,
    ):
        """Supervise one worker per config; callbacks notify the router.

        ``on_restart(shard_id, recovered_seq)`` fires after a successful
        respawn + handshake; ``on_down(shard_id)`` fires when a shard
        leaves ``UP``.  ``clock`` must be monotonic (injectable for
        tests).
        """
        self.policy = policy or HealthPolicy()
        self.clock = clock
        self.on_restart = on_restart
        self.on_down = on_down
        self._ctx = multiprocessing.get_context(_start_method(start_method))
        self._rng = self.policy.restart.rng()
        self._slots: Dict[int, _Slot] = {
            config.shard_id: _Slot(config=config) for config in configs
        }
        self._last_heartbeat_at = float("-inf")

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def shard_ids(self) -> List[int]:
        """All supervised shard ids, ascending."""
        return sorted(self._slots)

    def start(self) -> None:
        """Spawn every worker and wait for its recovery handshake."""
        for shard_id in self.shard_ids:
            self._spawn(shard_id)
        # Every worker just answered its handshake ping, so the fleet's
        # health is proven as of now: the first *proactive* heartbeat
        # round is owed one interval later, not on the first tick.
        self._last_heartbeat_at = self.clock()

    def _spawn(self, shard_id: int) -> bool:
        """(Re)start one worker; returns whether it came up healthy."""
        slot = self._slots[shard_id]
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(slot.config, child_conn),
            name=f"repro-shard-{shard_id:02d}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot.proc, slot.conn = proc, parent_conn
        slot.state = ShardState.UP  # provisionally, for the handshake ping
        slot.missed_heartbeats = 0
        try:
            pong = self.request(
                shard_id, "ping", timeout=self.policy.handshake_timeout
            )
        except ShardUnavailableError:
            # The worker died during bootstrap; the request path has
            # already recorded the death (and charged the budget).
            metrics.incr("shard.handshake_failures")
            return False
        except ReproError as error:
            # A wedged handshake or a worker-side bootstrap error (e.g.
            # unrecoverable shard state) is a persistent failure: kill
            # the process and charge the restart budget so a shard that
            # can never bootstrap quarantines instead of flapping.
            metrics.incr("shard.handshake_failures")
            self.kill(shard_id)
            self._note_death(shard_id, f"handshake failed: {error}")
            return False
        slot.last_seq = int(pong.value["last_seq"])
        return True

    def stop(self) -> None:
        """Shut every worker down cleanly; quarantined ones are killed."""
        for shard_id, slot in self._slots.items():
            if slot.conn is not None and slot.state is ShardState.UP:
                try:
                    self.request(shard_id, "shutdown", timeout=10.0)
                except ReproError:
                    metrics.incr("shard.unclean_shutdowns")
            self._reap(slot)
            slot.state = ShardState.STOPPED

    def _reap(self, slot: _Slot) -> None:
        """Kill/join/close whatever remains of a slot's process."""
        if slot.proc is not None:
            if slot.proc.is_alive():
                slot.proc.kill()
            slot.proc.join(timeout=10.0)
            slot.proc = None
        if slot.conn is not None:
            slot.conn.close()
            slot.conn = None

    def kill(self, shard_id: int) -> None:
        """SIGKILL one worker (chaos/test hook); tick() will notice."""
        slot = self._slot(shard_id)
        if slot.proc is not None and slot.proc.is_alive():
            slot.proc.kill()
            slot.proc.join(timeout=10.0)
        metrics.incr("shard.kills")

    def fail(self, shard_id: int, reason: str) -> None:
        """Declare a live worker failed: kill it and charge the budget.

        The router calls this when ack accounting can no longer be
        trusted (a mutation overran its deadline): a worker whose next
        response would be ambiguous is worth less than a restart through
        recovery, which re-establishes an exact watermark.
        """
        self.kill(shard_id)
        if self._slot(shard_id).state is ShardState.UP:
            self._note_death(shard_id, reason)

    def note_served(self, shard_id: int) -> None:
        """Record a successfully served request (resets the crash loop).

        The scatter-gather path uses raw :meth:`send`/:meth:`receive`
        and so bypasses :meth:`request`'s bookkeeping; it reports
        successes here to keep the restart-budget semantics identical.
        """
        self._slot(shard_id).consecutive_failures = 0

    # ------------------------------------------------------------------
    # Supervision loop

    def tick(self) -> List[Tuple[str, int, int]]:
        """One supervision round; returns ``(event, shard, seq)`` triples.

        Reaps silently-died workers, runs a heartbeat round when one is
        due, restarts DOWN shards whose backoff has elapsed, and
        quarantines over-budget crash-loopers.  Events: ``"restarted"``
        (seq = recovered WAL sequence), ``"quarantined"``, ``"hung"``.
        """
        now = self.clock()
        heartbeat_due = now - self._last_heartbeat_at >= self.policy.heartbeat_interval
        if heartbeat_due:
            self._last_heartbeat_at = now
        for shard_id in self.shard_ids:
            slot = self._slots[shard_id]
            if slot.state is ShardState.UP:
                if slot.proc is None or not slot.proc.is_alive():
                    self._note_death(shard_id, "worker process died")
                elif heartbeat_due:
                    self._heartbeat(shard_id)
            if slot.state is ShardState.DOWN and self.clock() >= slot.next_restart_at:
                self._restart(shard_id)
        events: List[Tuple[str, int, int]] = []
        for slot in self._slots.values():
            events.extend(slot.events)
            slot.events.clear()
        return events

    def _heartbeat(self, shard_id: int) -> None:
        """Ping one UP worker; escalate repeated misses to a hang-kill."""
        slot = self._slots[shard_id]
        try:
            pong = self.request(
                shard_id, "ping", timeout=self.policy.heartbeat_timeout
            )
        except DeadlineExceededError:
            slot.missed_heartbeats += 1
            metrics.incr("shard.heartbeat_misses")
            if slot.missed_heartbeats >= self.policy.max_missed_heartbeats:
                # Hung is dead: a worker that cannot answer a ping is not
                # going to answer a query either.  Kill it and let the
                # normal death path restart it through recovery.
                slot.events.append(("hung", shard_id, slot.last_seq))
                metrics.incr("shard.hang_kills")
                self.kill(shard_id)
                self._note_death(shard_id, "hung: missed heartbeats")
        except ReproError:
            # Death discovered mid-ping; _note_death already ran inside
            # the request path.
            metrics.incr("shard.heartbeat_deaths")
        else:
            slot.missed_heartbeats = 0
            slot.last_seq = max(slot.last_seq, int(pong.value["last_seq"]))

    def _note_death(self, shard_id: int, reason: str) -> None:
        """Transition UP → DOWN (or → QUARANTINED past the budget)."""
        slot = self._slots[shard_id]
        self._reap(slot)
        slot.consecutive_failures += 1
        metrics.incr("shard.worker_deaths")
        if slot.consecutive_failures > self.policy.restart_budget:
            slot.state = ShardState.QUARANTINED
            slot.quarantine_reason = (
                f"{reason}; crash-looped through its restart budget "
                f"({self.policy.restart_budget} restarts)"
            )
            slot.events.append(("quarantined", shard_id, slot.last_seq))
            metrics.incr("shard.quarantines")
        else:
            slot.state = ShardState.DOWN
            delay = self.policy.restart.delay(slot.consecutive_failures, self._rng)
            slot.next_restart_at = self.clock() + delay
        if self.on_down is not None:
            self.on_down(shard_id)

    def _restart(self, shard_id: int) -> None:
        """Respawn a DOWN shard through recovery and announce the result."""
        slot = self._slots[shard_id]
        slot.restarts += 1
        metrics.incr("shard.restarts")
        if self._spawn(shard_id):
            slot.events.append(("restarted", shard_id, slot.last_seq))
            if self.on_restart is not None:
                self.on_restart(shard_id, slot.last_seq)

    # ------------------------------------------------------------------
    # Requests

    def _slot(self, shard_id: int) -> _Slot:
        try:
            return self._slots[shard_id]
        except KeyError:
            raise ShardUnavailableError(
                f"no such shard {shard_id}; supervising {self.shard_ids}"
            ) from None

    def unavailable(self, shard_id: int, verb: str) -> ShardUnavailableError:
        """A fully-annotated unavailability error for ``shard_id``."""
        slot = self._slot(shard_id)
        quarantined = slot.state is ShardState.QUARANTINED
        return ShardUnavailableError(
            f"cannot {verb}: shard worker is not serving"
            + (f" ({slot.quarantine_reason})" if slot.quarantine_reason else ""),
            shard=shard_id,
            state=slot.state.value,
            restarts=min(slot.consecutive_failures, self.policy.restart_budget),
            budget=self.policy.restart_budget,
            hint=(
                "inspect the shard directory with `repro shard-status` and "
                "clear the quarantine by reopening the service"
                if quarantined
                else "retry after the supervisor's restart backoff"
            ),
        )

    def is_up(self, shard_id: int) -> bool:
        """Whether ``shard_id`` is currently serving."""
        return self._slot(shard_id).state is ShardState.UP

    def state_of(self, shard_id: int) -> ShardState:
        """The supervision state of ``shard_id``."""
        return self._slot(shard_id).state

    def send(self, shard_id: int, kind: str, payload: Optional[dict] = None) -> int:
        """Ship a request without waiting; returns its request id."""
        slot = self._slot(shard_id)
        if slot.state is not ShardState.UP or slot.conn is None:
            raise self.unavailable(shard_id, f"send {kind!r}")
        slot.next_request_id += 1
        request = Request(id=slot.next_request_id, kind=kind, payload=payload or {})
        try:
            slot.conn.send(request)
        except (OSError, ValueError) as error:
            self._note_death(shard_id, f"send failed: {error}")
            raise self.unavailable(shard_id, f"send {kind!r}") from error
        return request.id

    def receive(self, shard_id: int, request_id: int, timeout: float) -> Response:
        """Await the response to ``request_id``, within ``timeout`` seconds.

        Responses to abandoned earlier requests (their deadline expired)
        are drained and discarded.  A deadline miss raises
        :class:`DeadlineExceededError` and leaves the shard UP — hang
        escalation is the heartbeat path's job; a dead pipe marks the
        shard DOWN and raises :class:`ShardUnavailableError`.
        """
        slot = self._slot(shard_id)
        if slot.conn is None:
            raise self.unavailable(shard_id, "receive")
        deadline = self.clock() + timeout
        while True:
            remaining = deadline - self.clock()
            if remaining <= 0:
                metrics.incr("shard.deadline_misses")
                raise DeadlineExceededError(
                    f"shard {shard_id} missed its {timeout:.3f}s deadline "
                    f"for request {request_id}"
                )
            try:
                if not slot.conn.poll(remaining):
                    continue
                response: Response = slot.conn.recv()
            except (EOFError, OSError) as error:
                self._note_death(shard_id, f"pipe broke: {error}")
                raise self.unavailable(shard_id, "receive") from error
            if response.id < request_id:
                metrics.incr("shard.stale_responses")
                continue  # answer to an abandoned request
            if response.id > request_id:
                # Protocol violation — ids are per-shard monotonic.
                self._note_death(shard_id, "response id from the future")
                raise self.unavailable(shard_id, "receive")
            return response

    def request(
        self,
        shard_id: int,
        kind: str,
        payload: Optional[dict] = None,
        timeout: float = 30.0,
    ) -> Response:
        """Round trip: send, await, rehydrate errors, track last_seq.

        A successful *serving* request (anything but ping/shutdown)
        resets the shard's consecutive-failure count — the restart budget
        meters crash *loops*, not lifetime crashes.
        """
        request_id = self.send(shard_id, kind, payload)
        response = self.receive(shard_id, request_id, timeout)
        slot = self._slot(shard_id)
        if kind not in ("ping", "shutdown"):
            # Any response at all — even a typed error — proves the
            # worker is alive and serving; the budget meters crash loops.
            slot.consecutive_failures = 0
        if not response.ok:
            raise rehydrate_error(response.error or {}, shard=shard_id)
        if isinstance(response.value, dict) and "last_seq" in response.value:
            slot.last_seq = max(slot.last_seq, int(response.value["last_seq"]))
        return response

    # ------------------------------------------------------------------
    # Introspection

    def health(self, shard_id: int) -> ShardHealth:
        """The supervision-side health record for one shard."""
        slot = self._slot(shard_id)
        return ShardHealth(
            shard_id=shard_id,
            state=slot.state,
            pid=slot.proc.pid if slot.proc is not None else None,
            restarts=slot.restarts,
            consecutive_failures=slot.consecutive_failures,
            missed_heartbeats=slot.missed_heartbeats,
            last_seq=slot.last_seq,
            quarantine_reason=slot.quarantine_reason,
        )
