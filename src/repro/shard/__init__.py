"""Sharded serving: fault-isolated worker processes behind a router.

The scale-out layer the ROADMAP names as the natural next step for the
paper's scheme: because the prime generator and SC congruence groups are
*per-document* state, hash-partitioning documents across N worker
processes needs no cross-shard coordination — each worker owns a fully
self-contained :class:`~repro.durable.collection.DurableCollection`
(private WAL, snapshots, and recovery), and the composite is
byte-identical to one unsharded collection holding the same documents.

The robustness core is the failure-domain boundary at the process line:

* :mod:`repro.shard.partitioner` — deterministic BLAKE2b placement, the
  atomic ``SHARDS.json`` manifest, global ⇄ local index mapping,
* :mod:`repro.shard.worker` — one process, one collection, recovery on
  every start; crashes are honoured literally (no ack, hard exit),
* :mod:`repro.shard.supervisor` — heartbeat health checks, hang kills,
  restart-through-recovery with resilient-layer backoff, quarantine of
  crash-loopers after a capped restart budget,
* :mod:`repro.shard.router` — scatter-gather with fair-share deadline
  accounting, ``partial | fail_fast`` degraded queries that always name
  the missing shard set, ``buffer | reject`` mutation degradation, and
  an exactly-once redo journal reconciled against recovered WAL
  sequence numbers,
* :mod:`repro.shard.service` — :class:`ShardedCollection`, the facade
  that wires all of the above and mirrors the durable-collection API.

See ``docs/SHARDING.md`` for the supervision state machine, the
partial-result contract, and the on-disk layout.
"""

from repro.shard.health import HealthPolicy, ShardHealth, ShardState
from repro.shard.messages import Request, Response, encode_error, rehydrate_error
from repro.shard.partitioner import (
    MANIFEST_NAME,
    DocumentMap,
    HashPartitioner,
    ShardManifest,
    read_manifest,
    write_manifest,
)
from repro.shard.router import PartialResult, RemoteRow, ShardRouter
from repro.shard.service import ShardedCollection
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import (
    WorkerConfig,
    WorkerServer,
    build_fault_injector,
    worker_main,
)

__all__ = [
    "MANIFEST_NAME",
    "DocumentMap",
    "HashPartitioner",
    "HealthPolicy",
    "PartialResult",
    "RemoteRow",
    "Request",
    "Response",
    "ShardHealth",
    "ShardManifest",
    "ShardRouter",
    "ShardState",
    "ShardSupervisor",
    "ShardedCollection",
    "WorkerConfig",
    "WorkerServer",
    "build_fault_injector",
    "encode_error",
    "read_manifest",
    "rehydrate_error",
    "worker_main",
    "write_manifest",
]
