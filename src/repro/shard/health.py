"""Shard supervision states, health policy, and per-shard health records.

The supervision state machine (documented with its transitions in
``docs/SHARDING.md``)::

    UP ──(death / hang)──▶ DOWN ──(backoff elapsed)──▶ UP  (restart)
    DOWN ──(restart budget exhausted)──▶ QUARANTINED
    any ──(service close)──▶ STOPPED

``UP`` is the only state that serves requests.  ``DOWN`` is transient:
the supervisor owes the shard a restart once its backoff delay expires.
``QUARANTINED`` is terminal until an operator intervenes — a shard that
kept dying straight through its restart budget is assumed to have a
deterministic poison (corrupt state, a fault spec, a bad op) that
another restart will not fix, and re-spawning it forever would burn the
host while flapping the router's routing table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.resilient.policy import RetryPolicy

__all__ = ["HealthPolicy", "ShardHealth", "ShardState"]


class ShardState(enum.Enum):
    """Where one shard sits in the supervision state machine."""

    UP = "up"
    DOWN = "down"
    QUARANTINED = "quarantined"
    STOPPED = "stopped"


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for heartbeat, hang detection, restart, and quarantine.

    Restart pacing reuses the resilient layer's :class:`RetryPolicy`
    verbatim — a worker restart *is* a retry of the shard, so it gets the
    same capped exponential backoff with seeded jitter, just across a
    process boundary instead of around a WAL append.
    """

    #: Seconds between proactive heartbeat rounds in :meth:`tick`.
    heartbeat_interval: float = 0.5
    #: Per-ping deadline; a miss counts toward hang detection.
    heartbeat_timeout: float = 1.0
    #: Consecutive missed heartbeats before a worker is declared hung
    #: (and killed: a wedged process is treated exactly like a dead one).
    max_missed_heartbeats: int = 2
    #: Consecutive crashes tolerated; the next one quarantines the shard.
    restart_budget: int = 3
    #: Backoff/jitter source for restart pacing.
    restart: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4, base_delay=0.05, max_delay=1.0, seed=0
        )
    )
    #: Deadline for the post-(re)start handshake ping, which must wait
    #: out interpreter start plus per-shard recovery.
    handshake_timeout: float = 30.0


@dataclass
class ShardHealth:
    """One shard's supervision status, as reported by ``status()``."""

    shard_id: int
    state: ShardState
    pid: Optional[int] = None
    #: Total restarts over the supervisor's lifetime.
    restarts: int = 0
    #: Crashes since the last successfully served request (the counter
    #: the restart budget is charged against).
    consecutive_failures: int = 0
    missed_heartbeats: int = 0
    #: Highest WAL sequence number the router has seen acked/recovered.
    last_seq: int = 0
    #: Mutations parked router-side while the shard is away.
    buffered_ops: int = 0
    quarantine_reason: Optional[str] = None

    def summary(self) -> str:
        """One status line, ``shard-status``-style."""
        line = (
            f"shard {self.shard_id}: {self.state.value} "
            f"pid={self.pid or '-'} seq={self.last_seq} "
            f"restarts={self.restarts}"
        )
        if self.buffered_ops:
            line += f" buffered={self.buffered_ops}"
        if self.quarantine_reason:
            line += f" reason={self.quarantine_reason!r}"
        return line
