"""The shard worker: one process, one :class:`DurableCollection`.

A worker is intentionally boring — that is the fault-isolation design.
It owns exactly one durable directory (``shard-NN/`` under the sharded
root), opens it through the standard recovery path on every start (a
restart after a crash *is* just recovery), and serves a small
request/response protocol over the control pipe it was born with:
queries, addressed mutations (the same ``(document, preorder position)``
currency the WAL uses), checkpoints, and health pings.

Crash semantics: an :class:`~repro.durable.faults.InjectedCrash` from
the fault injector simulates process death and is honoured literally —
the worker ``os._exit``\\ s without acking, exactly like a SIGKILL.  Any
other failure is *data*: it is classified into a resilient-layer fault
domain, encoded, and shipped back so the router can rehydrate a typed
error without this process dying.  One request's failure must never
poison the next request — the per-shard durable rollback guarantees
already provide that (single ops validate before logging; batches roll
back to the last durable state).

:class:`WorkerServer` is the protocol engine, separable from the process
loop so unit tests can drive it in-process; :func:`worker_main` is the
``multiprocessing`` entry point (module-level, so it is picklable under
the ``spawn`` start method too).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.durable.collection import DurableCollection
from repro.durable.faults import CrashAfterAppends, FaultInjector, InjectedCrash
from repro.durable.recovery import list_generations, shard_directory
from repro.durable.snapshot import collection_fingerprint
from repro.errors import DurabilityError, ShardError
from repro.obs import metrics
from repro.obs.audit import audit_ordered_document
from repro.resilient.chaos import ChaosInjector
from repro.shard.messages import Request, Response, encode_error
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import XmlElement

__all__ = ["WorkerConfig", "WorkerServer", "build_fault_injector", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to bootstrap, as picklable primitives.

    This dataclass crosses the process boundary (as a ``Process`` arg
    under ``fork``, pickled under ``spawn``), so it holds only strings
    and numbers — never live handles, trees, or generator objects.  The
    heavyweight bootstrap state (documents, labels, generator position,
    SC groups) stays on disk and is reloaded through recovery.
    """

    shard_id: int
    root: str
    fsync: str = "always"
    verify: bool = True
    #: Scripted fault injection armed inside the worker, for chaos and
    #: crash-loop tests: ``"crash_after_appends:N"`` or ``"chaos:<spec>"``
    #: (a :meth:`repro.resilient.chaos.ChaosInjector.from_spec` string).
    fault_spec: Optional[str] = None


def build_fault_injector(spec: Optional[str]) -> Optional[FaultInjector]:
    """Materialise a :class:`WorkerConfig.fault_spec` inside the worker.

    The spec is a string (picklable) rather than an injector instance so
    every (re)started process arms a *fresh* injector — a crash-loop
    fault keeps crash-looping across restarts instead of being disarmed
    by its own spent counter travelling along.
    """
    if not spec:
        return None
    name, _, arg = spec.partition(":")
    if name == "crash_after_appends":
        try:
            return CrashAfterAppends(int(arg))
        except ValueError:
            raise ShardError(
                f"fault spec {spec!r}: crash_after_appends needs an integer"
            ) from None
    if name == "chaos":
        return ChaosInjector.from_spec(arg)
    raise ShardError(f"unknown worker fault spec {spec!r}")


class WorkerServer:
    """Protocol engine mapping requests onto one durable collection."""

    def __init__(self, config: WorkerConfig):
        """Open (recover) the shard's collection per ``config``."""
        self.config = config
        self.collection = DurableCollection.open(
            shard_directory(config.root, config.shard_id),
            fsync=config.fsync,
            faults=build_fault_injector(config.fault_spec),
            verify=config.verify,
        )

    # ------------------------------------------------------------------
    # Request dispatch

    def handle(self, request: Request) -> Response:
        """Answer one request; failures become error responses.

        :class:`InjectedCrash` is re-raised — simulated process death
        must kill the loop, not turn into a polite error reply.
        """
        try:
            value = self._dispatch(request.kind, request.payload)
        except InjectedCrash:
            raise
        except Exception as error:
            # Worker errors are data: classify, encode, ship back.  The
            # metric keeps worker-side failure visible even when the
            # router that receives the encoding is long gone.
            metrics.incr("shard.worker_errors")
            return Response(id=request.id, ok=False, error=encode_error(error))
        return Response(id=request.id, ok=True, value=value)

    def _dispatch(self, kind: str, payload: Dict[str, Any]) -> Any:
        if kind == "ping":
            return {
                "pid": os.getpid(),
                "last_seq": self.collection.last_seq,
                "docs": len(self.collection.documents),
            }
        if kind == "query":
            return self._rows(self.collection.query(payload["text"]))
        if kind == "count":
            return self.collection.count(payload["text"])
        if kind == "serialize":
            return serialize(self._document(payload["doc"]))
        if kind == "fingerprint":
            return collection_fingerprint(self.collection.live)
        if kind == "audit":
            return self._audit()
        if kind == "apply":
            return self._apply_single(payload["op"])
        if kind == "apply_batch":
            report = self.collection.apply_batch_addressed(payload["entries"])
            return {
                "last_seq": self.collection.last_seq,
                "ops": len(report),
                "relabels": report.node_relabels,
            }
        if kind == "checkpoint":
            generation = self.collection.checkpoint()
            return {"generation": generation, "last_seq": self.collection.last_seq}
        if kind == "stats":
            return {
                "last_seq": self.collection.last_seq,
                "docs": len(self.collection.documents),
                "generations": list_generations(self.collection.directory),
            }
        if kind == "stall":
            # Test/chaos hook: a hung worker, from the router's point of
            # view.  Sleeps inside the handler so the control pipe backs
            # up exactly like a wedged process.
            time.sleep(float(payload.get("seconds", 1.0)))
            return {"stalled": payload.get("seconds", 1.0)}
        raise ShardError(f"unknown shard request kind {kind!r}")

    # ------------------------------------------------------------------
    # Handlers

    def _document(self, local_doc: int) -> XmlElement:
        roots = self.collection.documents
        if not 0 <= local_doc < len(roots):
            raise ShardError(
                f"shard {self.config.shard_id} has {len(roots)} documents, "
                f"no local index {local_doc}"
            )
        return roots[local_doc]

    def _node_at(self, local_doc: int, position: int) -> XmlElement:
        for index, node in enumerate(self._document(local_doc).iter_preorder()):
            if index == position:
                return node
        raise DurabilityError(
            f"operation references preorder position {position} of local "
            f"document {local_doc}, which does not exist"
        )

    def _rows(self, rows: List[Any]) -> List[Tuple[int, str, int, str]]:
        """Flatten query rows to picklable ``(local doc, tag, depth, text)``.

        Full :class:`~repro.query.store.ElementRow` objects drag their
        ``node`` back-reference — the whole document tree — through the
        pipe; the flattened form keeps result shipping O(result size).
        """
        return [(row.doc_id, row.tag, row.depth, row.text) for row in rows]

    def _audit(self) -> List[str]:
        violations: List[str] = []
        for index, document in enumerate(self.collection.live.ordered_documents):
            report = audit_ordered_document(document)
            violations.extend(
                f"local doc {index}: {violation}" for violation in report.violations
            )
        return violations

    def _apply_single(self, op: Dict[str, Any]) -> Dict[str, Any]:
        """One logged mutation, addressed in WAL-record form."""
        collection = self.collection
        kind = op.get("op")
        extra: Dict[str, Any] = {}
        if kind == "insert_child":
            collection.insert_child(
                self._node_at(op["doc"], op["parent"]), op["index"], tag=op["tag"]
            )
        elif kind == "insert_before":
            collection.insert_before(self._node_at(op["doc"], op["ref"]), tag=op["tag"])
        elif kind == "insert_after":
            collection.insert_after(self._node_at(op["doc"], op["ref"]), tag=op["tag"])
        elif kind == "delete":
            collection.delete(self._node_at(op["doc"], op["node"]))
        elif kind == "add_document":
            extra["local_doc"] = collection.add_document(parse_document(op["xml"]))
        elif kind == "compact":
            extra["record_counts"] = collection.compact()
        else:
            raise ShardError(f"unknown shard mutation kind {kind!r}")
        return {"last_seq": collection.last_seq, **extra}

    def close(self) -> None:
        """Sync and close the shard's collection (idempotent)."""
        self.collection.close()


def worker_main(config: WorkerConfig, conn: Any) -> None:
    """Process entry point: serve requests from ``conn`` until shutdown.

    The server is built lazily on the first request so a bootstrap
    failure (corrupt shard directory, bad fault spec) reaches the router
    as an error *response* to its handshake ping rather than as a silent
    early exit.  ``InjectedCrash`` exits the process without an ack —
    the supervisor learns of the death from the dead pipe, exactly as
    with a real SIGKILL.
    """
    server: Optional[WorkerServer] = None
    try:
        while True:
            try:
                request: Request = conn.recv()
            except (EOFError, OSError):
                break  # router went away; die quietly
            if request.kind == "shutdown":
                if server is not None:
                    server.close()
                conn.send(Response(id=request.id, ok=True, value={"bye": True}))
                break
            try:
                if server is None:
                    server = WorkerServer(config)
                response = server.handle(request)
            except InjectedCrash:
                # Simulated process death: no ack, no cleanup, no exit
                # handlers — indistinguishable from SIGKILL to the router.
                os._exit(70)
            except Exception as error:
                metrics.incr("shard.worker_errors")
                response = Response(id=request.id, ok=False, error=encode_error(error))
            try:
                conn.send(response)
            except (OSError, BrokenPipeError):
                break  # router went away mid-reply
    finally:
        conn.close()
