"""Document placement: hash partitioning, the shard manifest, the map.

The paper's labeling scheme keeps all order-sensitive state (the prime
generator and SC congruence groups) *per document*, so a document is the
natural unit of placement: no label, residue, or order number ever spans
two documents, and a shard holding a subset of the documents is a fully
self-contained collection.  Placement is a pure function of the global
document id — a keyed BLAKE2b digest of the id's decimal form modulo
the shard count — so the router, a restarted worker, and an offline
inspector all agree on where every document lives without coordination.

Three pieces live here:

* :class:`HashPartitioner` — the pure placement function,
* :class:`ShardManifest` — the atomically-replaced ``SHARDS.json`` at
  the root of a sharded directory tree, recording shard count and global
  document count (the two inputs placement depends on),
* :class:`DocumentMap` — the deterministic global ⇄ (shard, local)
  index translation both the router and the tests derive from the
  manifest alone.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import ShardError

__all__ = [
    "MANIFEST_NAME",
    "DocumentMap",
    "HashPartitioner",
    "ShardManifest",
    "read_manifest",
    "write_manifest",
]

#: Atomic manifest at the root of a sharded collection directory.
MANIFEST_NAME = "SHARDS.json"


class HashPartitioner:
    """Deterministic document → shard placement by BLAKE2b hash.

    A real digest rather than :func:`hash` because Python string hashing
    is salted per process (``PYTHONHASHSEED``) — a restarted router must
    compute the *same* placement the dead one did.  BLAKE2b rather than
    CRC32 because placement keys are tiny consecutive integers and CRC's
    weak avalanche visibly clusters them (ids 0–3 all landing on one of
    two shards); a cryptographic digest spreads any key shape evenly.
    """

    def __init__(self, shards: int):
        """A partitioner over ``shards`` workers (must be ≥ 1)."""
        if shards < 1:
            raise ShardError(f"shard count must be at least 1, got {shards}")
        self.shards = shards

    def shard_of(self, doc_id: int) -> int:
        """The shard that owns global document ``doc_id``."""
        digest = hashlib.blake2b(
            f"doc:{doc_id}".encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % self.shards


@dataclass(frozen=True)
class ShardManifest:
    """The durable facts every shard participant must agree on.

    Everything else (which shard holds which document, local indexes) is
    derived deterministically from ``shards`` and ``doc_count`` via
    :class:`DocumentMap`; keeping only the inputs in the manifest means
    there is no derived table on disk to drift out of sync.
    """

    shards: int
    doc_count: int
    group_size: int
    strategy: str
    fsync: str
    version: int = 1


def write_manifest(root: str | Path, manifest: ShardManifest) -> None:
    """Atomically publish ``manifest`` as ``root/SHARDS.json``.

    Same tmp-write / fsync / ``os.replace`` protocol as the durable
    ``CURRENT`` pointer: a crashed writer leaves either the old complete
    manifest or the new complete manifest, never a torn one.
    """
    root = Path(root)
    blob = json.dumps(asdict(manifest), sort_keys=True).encode("utf-8")
    tmp = root / (MANIFEST_NAME + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        # repro: ignore[R10] -- atomic-rename protocol: the manifest must
        # be durable before os.replace, or a crash could publish a name
        # with no bytes behind it; WAL fsync policy does not apply here
        handle.flush()
        # repro: ignore[R10] -- second half of the atomic-rename fsync
        os.fsync(handle.fileno())
    os.replace(tmp, root / MANIFEST_NAME)


def read_manifest(root: str | Path) -> ShardManifest:
    """Decode ``root/SHARDS.json``; raises :class:`ShardError` if unusable.

    Unlike the durable ``CURRENT`` pointer there is no scan fallback: the
    manifest is the only record of the shard count, and guessing it
    wrong would silently route documents to the wrong workers.
    """
    path = Path(root) / MANIFEST_NAME
    try:
        decoded = json.loads(path.read_text("utf-8"))
    except FileNotFoundError:
        raise ShardError(
            f"{path} not found: not a sharded collection root "
            "(create one with ShardedCollection.create)"
        ) from None
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ShardError(f"shard manifest {path} is unreadable: {error}") from error
    try:
        return ShardManifest(
            shards=int(decoded["shards"]),
            doc_count=int(decoded["doc_count"]),
            group_size=int(decoded["group_size"]),
            strategy=str(decoded["strategy"]),
            fsync=str(decoded["fsync"]),
            version=int(decoded.get("version", 1)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ShardError(
            f"shard manifest {path} is missing or mistypes a field: {error}"
        ) from error


class DocumentMap:
    """Global ⇄ (shard, local) document index translation.

    Local indexes are assignment-ordered: the k-th global document routed
    to a shard is that shard's local document k.  Because global ids are
    assigned monotonically and placement is deterministic, replaying ids
    ``0..doc_count-1`` through the partitioner reconstructs the exact map
    any other participant holds.
    """

    def __init__(self, shards: int, doc_count: int = 0):
        """Derive the map for ``doc_count`` documents over ``shards``."""
        self.partitioner = HashPartitioner(shards)
        self.by_shard: List[List[int]] = [[] for _ in range(shards)]
        self._location: Dict[int, Tuple[int, int]] = {}
        for doc_id in range(doc_count):
            self.add()

    @property
    def doc_count(self) -> int:
        """Number of global documents currently mapped."""
        return len(self._location)

    def add(self) -> Tuple[int, int, int]:
        """Assign the next global id; returns (global, shard, local)."""
        doc_id = len(self._location)
        shard = self.partitioner.shard_of(doc_id)
        local = len(self.by_shard[shard])
        self.by_shard[shard].append(doc_id)
        self._location[doc_id] = (shard, local)
        return doc_id, shard, local

    def to_local(self, doc_id: int) -> Tuple[int, int]:
        """``(shard, local index)`` for global ``doc_id``."""
        try:
            return self._location[doc_id]
        except KeyError:
            raise ShardError(
                f"global document {doc_id} does not exist "
                f"(collection holds {len(self._location)})"
            ) from None

    def to_global(self, shard: int, local: int) -> int:
        """The global id of ``shard``'s ``local``-th document."""
        if not 0 <= shard < len(self.by_shard):
            raise ShardError(
                f"shard {shard} does not exist (have {len(self.by_shard)})"
            )
        docs = self.by_shard[shard]
        if not 0 <= local < len(docs):
            raise ShardError(
                f"shard {shard} has {len(docs)} documents, no local index {local}"
            )
        return docs[local]

    def shard_of(self, doc_id: int) -> int:
        """The shard owning global ``doc_id``."""
        return self.to_local(doc_id)[0]
