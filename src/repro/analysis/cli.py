"""The ``repro lint`` verb: run the invariant linter over the tree.

Wired into :mod:`repro.cli` as a subcommand::

    python -m repro lint [paths...] [--format text|json|sarif]
                         [--output FILE] [--baseline FILE | --no-baseline]
                         [--update-baseline] [--verbose]

Exit codes: 0 — no active finding; 1 — active findings (or stale
baseline entries under ``--strict-baseline``); the usual CLI-wide codes
(2 missing file, ...) apply on top.

Path and baseline defaults are derived from the package location, not
the working directory: the repo root is the parent of the ``src/``
directory containing this installed package, the default lint target is
``src/repro`` beneath it, and the default baseline is
``analysis-baseline.json`` at the root.  ``repro lint`` therefore works
from any cwd and report paths/fingerprints stay stable.
"""

from __future__ import annotations

import argparse
import subprocess  # repro: ignore[R13] -- the --changed-only flag shells out to git for the index diff; the linter CLI is tooling, not the labeled-tree runtime R13 protects
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintReport, lint_paths
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_stats,
    render_text,
)

__all__ = [
    "repo_root",
    "default_baseline_path",
    "changed_python_files",
    "run_lint",
    "cmd_lint",
]

BASELINE_NAME = "analysis-baseline.json"


def changed_python_files(root: Path) -> List[Path]:
    """Python files changed against the git index (staged + unstaged).

    Used by ``--changed-only``: names come from ``git diff HEAD --name-only``
    plus untracked files, filtered to ``*.py`` that still exist.  Raises
    ``RuntimeError`` when git is unavailable or ``root`` is not a work tree.
    """
    names: List[str] = []
    for args in (
        ["git", "diff", "HEAD", "--name-only"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args,
                cwd=root,
                capture_output=True,
                text=True,
                check=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError) as error:
            raise RuntimeError(f"cannot diff against git index: {error}") from error
        names.extend(line.strip() for line in proc.stdout.splitlines())
    out: List[Path] = []
    seen = set()
    for name in names:
        if not name.endswith(".py") or name in seen:
            continue
        seen.add(name)
        path = root / name
        if path.is_file():
            out.append(path)
    return sorted(out)


def repo_root() -> Path:
    """The directory containing ``src/`` (parent of the package tree)."""
    package_dir = Path(__file__).resolve().parent  # .../src/repro/analysis
    return package_dir.parent.parent.parent


def default_baseline_path() -> Path:
    """Where the committed baseline lives (repo root)."""
    return repo_root() / BASELINE_NAME


def run_lint(
    paths: Optional[List[str]] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
    changed_only: bool = False,
) -> LintReport:
    """Programmatic entry point: lint ``paths`` (default: ``src/repro``).

    ``changed_only`` replaces the targets with the files changed against
    the git index and skips the whole-program passes (a partial file set
    cannot support sound interprocedural conclusions).
    """
    root = repo_root()
    if changed_only:
        targets = changed_python_files(root)
        if not targets:
            return LintReport()
    else:
        targets = [Path(p) for p in paths] if paths else [root / "src" / "repro"]
    baseline = None
    if use_baseline:
        baseline = Baseline.load(baseline_path or default_baseline_path())
    return lint_paths(
        targets,
        repo_root=root,
        baseline=baseline,
        include_program=not changed_only,
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """Handler for the ``lint`` subcommand (see :func:`repro.cli.main`)."""
    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()
    changed_only = bool(getattr(args, "changed_only", False))
    report = run_lint(
        paths=args.paths or None,
        baseline_path=baseline_path,
        use_baseline=not args.no_baseline,
        changed_only=changed_only,
    )
    if args.update_baseline:
        # Absorb the current active findings (plus the still-live
        # grandfathered ones) and drop stale entries.
        Baseline.from_findings(report.findings + report.baselined).save(baseline_path)
        report = run_lint(
            paths=args.paths or None,
            baseline_path=baseline_path,
            use_baseline=True,
            changed_only=changed_only,
        )
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = render_text(report, verbose=args.verbose)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote {args.output}")
        if args.format == "text" and report.findings:
            print(render_text(report))
    else:
        print(rendered)
    if getattr(args, "stats", False):
        print(render_stats(report))
    return report.exit_code


def add_lint_parser(
    commands: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> None:
    """Register the ``lint`` subparser on the main CLI's subcommands."""
    lint = commands.add_parser(
        "lint",
        help="run the invariant linter (rules R1-R17, docs/ANALYSIS.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed src/repro tree)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text)",
    )
    lint.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file (default {BASELINE_NAME} at the repo root)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the committed baseline (report grandfathered findings)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to absorb current findings and drop stale entries",
    )
    lint.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings (text format)",
    )
    lint.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "lint only python files changed against the git index; skips "
            "the whole-program passes (R14-R17), which need the full tree"
        ),
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print the self-audit exhibit: call-graph size, per-rule "
            "runtimes, and per-rule finding counts"
        ),
    )
    lint.set_defaults(handler=cmd_lint)
