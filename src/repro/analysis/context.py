"""Per-file analysis context: parsed AST, package facts, suppressions.

Rules never touch the filesystem; they receive a :class:`FileContext`
that carries the parsed tree plus everything location-dependent a rule
needs to decide whether it even applies:

* ``rel`` — repo-relative posix path (``src/repro/order/sc_table.py``),
* ``module`` — the dotted module name (``repro.order.sc_table``),
* ``package`` — the first package segment under ``repro`` (``"order"``,
  or ``""`` for top-level modules like ``repro.cli``),
* parsed inline suppression directives.

Suppression syntax (checked by the engine, documented in
``docs/ANALYSIS.md``)::

    x = 1  # repro: ignore[R4] -- exhibit timing is wall-clock on purpose
    # repro: ignore[R8, R9] -- free-standing: covers the next code line

A directive with no ``-- justification`` text is *invalid*: the finding
stays active and the engine raises an extra ``SUP`` finding pointing at
the naked directive, so "silently waved through" is not a state the
codebase can be in.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, List, Optional, Tuple

__all__ = ["Suppression", "FileContext", "context_from_source", "context_from_file"]

#: ``# repro: ignore[R1,R2] -- reason`` (reason optional at parse time,
#: required for the directive to be honoured).
_DIRECTIVE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: ignore[...]`` directive."""

    line: int  # line the directive appears on (1-based)
    rules: Tuple[str, ...]
    justification: Optional[str]
    own_line: bool  # True when the line holds only the comment
    #: The code line the directive covers: its own line for a trailing
    #: directive, else the next non-blank non-comment line (so wrapped
    #: justification comments don't break the association).
    target: int = 0

    @property
    def valid(self) -> bool:
        """Directives must carry a ``-- justification`` to be honoured."""
        return bool(self.justification)

    def covers(self, rule: str, line: int) -> bool:
        """Whether this directive applies to ``rule`` at ``line``."""
        if rule not in self.rules:
            return False
        return line == self.line or line == self.target


@dataclass
class FileContext:
    """Everything a rule may ask about one source file."""

    rel: str  # repo-relative posix path, e.g. "src/repro/durable/wal.py"
    module: str  # dotted module name, e.g. "repro.durable.wal"
    source: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)

    @property
    def package(self) -> str:
        """First package segment under ``repro`` (``""`` for top level)."""
        parts = self.module.split(".")
        return parts[1] if len(parts) > 2 else ""

    @property
    def basename(self) -> str:
        """File name only, e.g. ``wal.py``."""
        return PurePosixPath(self.rel).name

    def in_package(self, *names: str) -> bool:
        """Whether the file lives directly under one of the packages."""
        return self.package in names

    def is_module(self, *dotted: str) -> bool:
        """Whether the file is exactly one of the dotted module names."""
        return self.module in dotted

    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        """The first directive covering ``rule`` at ``line``, if any."""
        for directive in self.suppressions:
            if directive.covers(rule, line):
                return directive
        return None


def _next_code_line(lines: List[str], after: int) -> int:
    """1-based number of the first code line after index ``after`` (0-based)."""
    for offset in range(after, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return 0


def _parse_suppressions(source: str) -> List[Suppression]:
    lines = source.splitlines()
    directives: List[Suppression] = []
    for lineno, text in enumerate(lines, start=1):
        match = _DIRECTIVE.search(text)
        if not match:
            continue
        rules = tuple(
            token.strip() for token in match.group("rules").split(",") if token.strip()
        )
        reason = match.group("reason")
        own_line = text[: match.start()].strip() == ""
        directives.append(
            Suppression(
                line=lineno,
                rules=rules,
                justification=reason.strip() if reason else None,
                own_line=own_line,
                target=_next_code_line(lines, lineno) if own_line else lineno,
            )
        )
    return directives


def _module_name(rel: str) -> str:
    """Dotted module name for a repo-relative path (best effort)."""
    pure = PurePosixPath(rel)
    parts = list(pure.parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def context_from_source(source: str, rel: str) -> FileContext:
    """Build a :class:`FileContext` from source text and a virtual path.

    This is how both the real file walker and the rule-fixture tests
    construct contexts — rules behave identically on synthetic snippets
    given a path like ``src/repro/durable/example.py``.
    """
    rel = str(PurePosixPath(rel))
    return FileContext(
        rel=rel,
        module=_module_name(rel),
        source=source,
        tree=ast.parse(source, filename=rel),
        suppressions=_parse_suppressions(source),
    )


def context_from_file(path: Path, root: Path) -> FileContext:
    """Read and parse ``path``, with ``rel`` computed against ``root``.

    A path outside ``root`` (linting a scratch file) is anchored at its
    last ``src`` component when present, so package-scoped rules still
    see the intended virtual location; otherwise the bare name is used.
    """
    source = path.read_text(encoding="utf-8")
    resolved = path.resolve()
    try:
        rel = resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        parts = resolved.parts
        if "src" in parts:
            anchor = len(parts) - 1 - tuple(reversed(parts)).index("src")
            rel = "/".join(parts[anchor:])
        else:
            rel = resolved.name
    return context_from_source(source, rel)
