"""Committed baselines: grandfathered findings that must not grow.

A baseline is a JSON file of finding fingerprints (rule + path +
message, deliberately line-free) committed alongside the code.  The
linter subtracts baselined findings from the active set, so a rule can
be introduced before the tree is fully clean without drowning CI — but
any *new* finding still fails, and entries whose finding has been fixed
are reported as *stale* so the file shrinks monotonically.

Format (version 1)::

    {"version": 1,
     "findings": [{"rule": "R8", "path": "src/repro/...", "message": "..."},
                  ...]}

Duplicate fingerprints are legal and counted: a baseline entry absorbs
exactly one live finding, so two identical violations need two entries.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.errors import ReproError

__all__ = ["Baseline", "BaselineError"]

_VERSION = 1


class BaselineError(ReproError):
    """Raised for an unreadable or structurally invalid baseline file."""


def _fingerprint(entry: Dict[str, str]) -> str:
    return f"{entry['rule']}::{entry['path']}::{entry['message']}"


@dataclass
class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    entries: "Counter[str]" = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise BaselineError(f"cannot read baseline {path}: {error}") from error
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise BaselineError(
                f"baseline {path} is not a version-{_VERSION} baseline file"
            )
        findings = payload.get("findings")
        if not isinstance(findings, list):
            raise BaselineError(f"baseline {path} has no 'findings' list")
        baseline = cls()
        for entry in findings:
            try:
                baseline.entries[_fingerprint(entry)] += 1
            except (TypeError, KeyError) as error:
                raise BaselineError(
                    f"baseline {path}: malformed entry {entry!r}"
                ) from error
        return baseline

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """A baseline absorbing exactly the given findings."""
        baseline = cls()
        for finding in findings:
            baseline.entries[finding.fingerprint] += 1
        return baseline

    def save(self, path: Path) -> None:
        """Write the baseline file (sorted, one entry per occurrence)."""
        findings = []
        for fingerprint in sorted(self.entries.elements()):
            rule, file_path, message = fingerprint.split("::", 2)
            findings.append({"rule": rule, "path": file_path, "message": message})
        payload = {"version": _VERSION, "findings": findings}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def __len__(self) -> int:
        return sum(self.entries.values())

    def split(
        self,
        findings: Sequence[Finding],
        warnings: Optional[List[str]] = None,
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Partition findings against the baseline.

        Returns ``(active, baselined, stale)``: findings not covered,
        findings absorbed by an entry, and fingerprints of entries whose
        finding no longer exists (fixed — remove them from the file).

        Fingerprints are path-keyed, so a plain rename would silently
        expire an entry and re-raise its finding.  A second pass matches
        leftover findings against leftover entries on
        ``rule::basename::message``; each fallback match is absorbed and,
        when ``warnings`` is given, reported so the baseline gets
        refreshed with the new path.
        """
        budget: "Counter[str]" = Counter(self.entries)
        active: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            if budget[finding.fingerprint] > 0:
                budget[finding.fingerprint] -= 1
                grandfathered.append(finding.into_baseline())
            else:
                active.append(finding)
        if active and +budget:
            # Index surviving budget by the path-insensitive key.
            by_basename: "Counter[str]" = Counter()
            key_to_fingerprints: Dict[str, List[str]] = {}
            for fingerprint, count in budget.items():
                if count <= 0:
                    continue
                rule, file_path, message = fingerprint.split("::", 2)
                key = f"{rule}::{Path(file_path).name}::{message}"
                by_basename[key] += count
                key_to_fingerprints.setdefault(key, []).extend([fingerprint] * count)
            still_active: List[Finding] = []
            for finding in active:
                key = (
                    f"{finding.rule}::{Path(finding.path).name}::{finding.message}"
                )
                if by_basename[key] > 0:
                    by_basename[key] -= 1
                    fingerprint = key_to_fingerprints[key].pop(0)
                    budget[fingerprint] -= 1
                    grandfathered.append(finding.into_baseline())
                    if warnings is not None:
                        warnings.append(
                            f"baseline entry {fingerprint!r} matched "
                            f"{finding.path} by basename only (file renamed?); "
                            "run --update-baseline to refresh the path"
                        )
                else:
                    still_active.append(finding)
            active = still_active
        stale = sorted(budget.elements())
        return active, grandfathered, stale
