"""Finding and severity model for the static-analysis framework.

A :class:`Finding` is one rule violation pinned to a file and line.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line number so
that committed baselines (see :mod:`repro.analysis.baseline`) survive
unrelated edits that merely shift code up or down — the same philosophy
as ``ruff``'s and ``bandit``'s baseline formats.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["Severity", "Finding"]


class Severity(str, Enum):
    """How bad a finding is; maps onto SARIF's ``level`` vocabulary."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def sarif_level(self) -> str:
        """The SARIF ``level`` string for this severity."""
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative with forward slashes (``src/repro/...``) so
    fingerprints and reports are stable across machines and platforms.
    ``suppressed``/``justification`` are populated when an inline
    ``# repro: ignore[RULE] -- reason`` directive covers the finding;
    ``baselined`` when a committed baseline entry grandfathers it.
    """

    rule: str
    message: str
    path: str
    line: int
    column: int = 0
    severity: Severity = Severity.ERROR
    suppressed: bool = False
    justification: Optional[str] = None
    baselined: bool = False

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.message}"

    @property
    def active(self) -> bool:
        """Whether the finding still counts against the exit code."""
        return not (self.suppressed or self.baselined)

    def suppress(self, justification: Optional[str]) -> "Finding":
        """A copy marked as inline-suppressed with its justification."""
        return replace(self, suppressed=True, justification=justification)

    def into_baseline(self) -> "Finding":
        """A copy marked as grandfathered by the committed baseline."""
        return replace(self, baselined=True)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by the JSON reporter)."""
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }
        if self.suppressed:
            payload["suppressed"] = True
            payload["justification"] = self.justification
        if self.baselined:
            payload["baselined"] = True
        return payload

    def render(self) -> str:
        """The canonical one-line ``path:line:col: RULE severity: msg`` form."""
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.rule} {self.severity.value}: {self.message}"
        )
