"""Approximate call-graph construction (pass 0, part 2).

Nodes are qualified names: ``module:func`` for top-level functions and
``module:Class.method`` for methods.  Edges are resolved from four call
shapes:

* ``f(...)`` — a local function, or a from-imported function (re-export
  chains followed through the symbol table),
* ``Class(...)`` — resolves to ``Class.__init__`` when the class is known,
* ``self.m(...)`` — method on the enclosing class (or a base class defined
  in the project),
* ``self.attr.m(...)`` / ``alias.m(...)`` — resolved via declared ``self``
  attribute types and module import aliases respectively.

Calls that cannot be resolved are recorded by raw name in
``CallGraph.unresolved`` so passes can stay conservative about them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .symbols import ClassInfo, FunctionInfo, ModuleInfo, SymbolTable


def qualified_name(module: str, cls: Optional[str], func: str) -> str:
    if cls:
        return f"{module}:{cls}.{func}"
    return f"{module}:{func}"


@dataclass
class CallSite:
    """One resolved call edge origin, with its source position."""

    caller: str
    callee: str
    lineno: int
    col: int


@dataclass
class CallGraph:
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)
    #: raw dotted names of calls we could not resolve, per caller.
    unresolved: Dict[str, Set[str]] = field(default_factory=dict)
    #: every node we saw a definition for.
    nodes: Set[str] = field(default_factory=set)

    def add_edge(self, caller: str, callee: str, lineno: int, col: int) -> None:
        """Record a resolved ``caller -> callee`` edge at a source position."""
        self.edges.setdefault(caller, set()).add(callee)
        self.sites.append(CallSite(caller, callee, lineno, col))

    def add_unresolved(self, caller: str, raw: str) -> None:
        """Record a call in ``caller`` whose target could not be resolved."""
        self.unresolved.setdefault(caller, set()).add(raw)

    def callees(self, caller: str) -> Set[str]:
        """Every resolved target called (directly) from ``caller``."""
        return self.edges.get(caller, set())

    def callers(self, callee: str) -> Set[str]:
        """Every node with a direct edge into ``callee``."""
        return {c for c, outs in self.edges.items() if callee in outs}

    def reachable_from(self, start: str) -> Set[str]:
        """Transitive closure of callees from ``start`` (inclusive)."""
        seen: Set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return seen

    def stats(self) -> Dict[str, int]:
        """Node/edge/unresolved-call counts for the stats exhibit."""
        return {
            "nodes": len(self.nodes),
            "edges": sum(len(outs) for outs in self.edges.values()),
            "unresolved": sum(len(raw) for raw in self.unresolved.values()),
        }


def _iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Yield calls inside ``node`` without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(child, ast.Call):
            yield child
        stack.extend(ast.iter_child_nodes(child))


class _Resolver:
    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph

    def resolve_call(
        self,
        call: ast.Call,
        module: str,
        cls: Optional[ClassInfo],
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, module)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, module, cls)
        return None

    def _resolve_name(self, name: str, module: str) -> Optional[str]:
        resolved = self.table.resolve_function(module, name)
        if resolved is not None:
            def_module, info = resolved
            return qualified_name(def_module, None, info.name)
        cls_resolved = self.table.resolve_class(module, name)
        if cls_resolved is not None:
            def_module, cls_info = cls_resolved
            if "__init__" in cls_info.methods:
                return qualified_name(def_module, cls_info.name, "__init__")
            return qualified_name(def_module, cls_info.name, name)
        return None

    def _resolve_method(
        self, def_module: str, cls_info: ClassInfo, method: str, _depth: int = 0
    ) -> Optional[str]:
        if method in cls_info.methods:
            return qualified_name(def_module, cls_info.name, method)
        if _depth > 4:
            return None
        for base in cls_info.bases:
            resolved = self.table.resolve_class(def_module, base)
            if resolved is None:
                resolved = self.table.find_class(base)
            if resolved is None:
                continue
            base_module, base_info = resolved
            found = self._resolve_method(base_module, base_info, method, _depth + 1)
            if found is not None:
                return found
        return None

    def _resolve_attribute(
        self, func: ast.Attribute, module: str, cls: Optional[ClassInfo]
    ) -> Optional[str]:
        receiver = func.value
        method = func.attr
        # self.m(...)
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and cls is not None:
                return self._resolve_method(module, cls, method)
            # alias.f(...) where alias is a module import
            info = self.table.module(module)
            if info is not None and receiver.id in info.imports:
                target_module = info.imports[receiver.id]
                resolved = self.table.resolve_function(target_module, method)
                if resolved is not None:
                    def_module, fn = resolved
                    return qualified_name(def_module, None, fn.name)
                cls_resolved = self.table.resolve_class(target_module, method)
                if cls_resolved is not None:
                    def_module, cls_info = cls_resolved
                    if "__init__" in cls_info.methods:
                        return qualified_name(def_module, cls_info.name, "__init__")
                return None
            # ClassName.method(...) via from-import or local class
            if info is not None:
                cls_resolved = self.table.resolve_class(module, receiver.id)
                if cls_resolved is not None:
                    def_module, cls_info = cls_resolved
                    return self._resolve_method(def_module, cls_info, method)
        # self.attr.m(...) via declared attribute types
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and cls is not None
        ):
            attr_type = cls.attr_types.get(receiver.attr)
            if attr_type:
                resolved = self.table.resolve_class(module, attr_type)
                if resolved is None:
                    resolved = self.table.find_class(attr_type)
                if resolved is not None:
                    def_module, cls_info = resolved
                    return self._resolve_method(def_module, cls_info, method)
        return None


def _raw_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return f"{_raw_name(func.value)}.{func.attr}"
    if isinstance(func, ast.Call):
        return f"{_raw_name(func.func)}()"
    return "<expr>"


def build_callgraph(table: SymbolTable) -> CallGraph:
    graph = CallGraph()
    resolver = _Resolver(table, graph)
    for module_name in sorted(table.modules):
        info: ModuleInfo = table.modules[module_name]
        units: List[Tuple[Optional[ClassInfo], FunctionInfo]] = []
        for fn in info.functions.values():
            units.append((None, fn))
        for cls in info.classes.values():
            for method in cls.methods.values():
                units.append((cls, method))
        for cls, fn in units:
            caller = qualified_name(module_name, cls.name if cls else None, fn.name)
            graph.nodes.add(caller)
            for call in _iter_calls(fn.node):
                callee = resolver.resolve_call(call, module_name, cls)
                if callee is not None:
                    graph.add_edge(caller, callee, call.lineno, call.col_offset)
                else:
                    graph.add_unresolved(caller, _raw_name(call.func))
    return graph
