"""R14 — lock discipline for ``# repro: guarded-by`` declared fields.

A class declares its locking protocol with a comment inside the class body::

    class LiveCollection:
        # repro: guarded-by(_publish_lock): _latest_view, _version

Every ``self.<field>`` access of a declared field must then happen while the
declared lock is held.  "Held" means one of:

* the access is lexically inside ``with self.<lock>:`` (tracked by
  :mod:`repro.analysis.program.flow`), or
* the enclosing method is *protected*: it has at least one in-class
  ``self.m()`` call site, and every call site is either under the lock or
  inside another protected method (computed as a fixpoint).

``__init__``/``__new__`` and classmethods are exempt: the object is not yet
shared (or ``self`` is not bound), so no lock can be required.  Only
``self.<field>`` expressions are tracked — aliasing through locals or other
objects is out of scope (documented in docs/ANALYSIS.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Set, Tuple

from ...context import FileContext
from ...engine import ProgramRule, register
from ...findings import Finding
from ..flow import FlowResult, analyze_method
from ..symbols import ClassInfo

if TYPE_CHECKING:
    from .. import Program

_EXEMPT_METHODS = {"__init__", "__new__"}


def _protected_methods(
    flows: Dict[str, FlowResult], lock: str
) -> Set[str]:
    """Methods whose every in-class call site holds ``lock`` (fixpoint)."""
    callsites: Dict[str, List[Tuple[str, bool]]] = {name: [] for name in flows}
    for caller, flow in flows.items():
        for call in flow.self_calls:
            if call.method in callsites:
                callsites[call.method].append((caller, lock in call.held))
    protected: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for method, sites in callsites.items():
            if method in protected or not sites:
                continue
            if all(
                under_lock or caller in protected for caller, under_lock in sites
            ):
                protected.add(method)
                changed = True
    return protected


@register
class GuardedByRule(ProgramRule):
    id = "R14"
    title = "guarded-by fields must be accessed under their declared lock"
    rationale = (
        "Fields declared '# repro: guarded-by(<lock>): ...' form the class's "
        "locking protocol; an access outside 'with self.<lock>:' (and outside "
        "methods only ever called under it) is a data race waiting for a "
        "second thread."
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for module_name in sorted(program.symbols.modules):
            info = program.symbols.modules[module_name]
            ctx = program.context_for_module(module_name)
            if ctx is None:
                continue
            for cls in info.classes.values():
                if not cls.guards:
                    continue
                yield from self._check_class(ctx, cls)

    def _check_class(self, ctx: FileContext, cls: ClassInfo) -> Iterator[Finding]:
        guarded = cls.guarded_fields
        flows: Dict[str, FlowResult] = {}
        for name, method in cls.methods.items():
            if name in _EXEMPT_METHODS or method.is_classmethod:
                continue
            if method.is_staticmethod:
                continue
            flows[name] = analyze_method(method.node)
        protected_by_lock: Dict[str, Set[str]] = {}
        for lock in set(guarded.values()):
            protected_by_lock[lock] = _protected_methods(flows, lock)
        seen: Set[Tuple[int, int, str]] = set()
        for name, flow in flows.items():
            for access in flow.accesses:
                lock = guarded.get(access.attr)
                if lock is None:
                    continue
                if lock in access.held:
                    continue
                if name in protected_by_lock.get(lock, set()):
                    continue
                site = (access.lineno, access.col, access.attr)
                if site in seen:
                    # An AugAssign is both a read and a write of the same
                    # attribute; one finding per site is enough.
                    continue
                seen.add(site)
                verb = "write" if access.is_store else "read"
                yield Finding(
                    rule=self.id,
                    message=(
                        f"{verb} of {cls.name}.{access.attr} outside "
                        f"'with self.{lock}:' (declared guarded-by {lock})"
                    ),
                    path=ctx.rel,
                    line=access.lineno,
                    column=access.col,
                    severity=self.severity,
                )
