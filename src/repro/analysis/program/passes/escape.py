"""R15 — publication escape analysis for published read views.

Published values are the return values of ``publish_view``/``latest_view``/
``read_view``.  The pass enforces two properties:

1. every ``def publish_view`` must freeze what it publishes — its body must
   call one of ``frozen_copy``/``deepcopy``/``freeze`` somewhere before the
   value escapes;
2. no caller may mutate a published value: locals assigned from a
   ``.publish_view()``/``.latest_view()``/``.read_view()`` call must never
   have a known mutator (``_set_label``, ``insert_row``, ``delete_subtree``,
   ``refresh_labels``) invoked on them, be assigned to through an attribute,
   or be written through a subscript (the ``dict.__setitem__`` shape);
3. classes constructed inside ``publish_view`` (the view wrappers) must not
   have methods whose call-graph closure reaches a known mutator.

The tracking is local-variable only (no interprocedural alias analysis);
docs/ANALYSIS.md lists the resulting false-negative space.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Set

from ...context import FileContext
from ...engine import ProgramRule, register
from ...findings import Finding
from ..callgraph import qualified_name

if TYPE_CHECKING:
    from .. import Program

_PUBLISHERS = {"publish_view", "latest_view", "read_view"}
_FREEZERS = {"frozen_copy", "deepcopy", "freeze"}
_MUTATORS = {"_set_label", "insert_row", "delete_subtree", "refresh_labels"}


def _call_attr_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _root_name(expr: ast.expr) -> str:
    """The leftmost Name of an attribute/subscript chain, or ''."""
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _iter_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Pre-order, source-ordered walk that skips nested def/class bodies."""
    stack: List[ast.AST] = list(reversed(list(ast.iter_child_nodes(node))))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(child))))


@register
class PublicationEscapeRule(ProgramRule):
    id = "R15"
    title = "published views must be frozen and never mutated by consumers"
    rationale = (
        "publish_view/latest_view hand snapshots to readers on other "
        "threads; a published value that is not deep-copied/frozen, or that "
        "a consumer mutates, silently corrupts every concurrent reader."
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for ctx in program.contexts:
            yield from self._check_publishers_freeze(ctx)
            yield from self._check_consumers(ctx)
        yield from self._check_view_classes(program)

    def _check_publishers_freeze(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name != "publish_view":
                continue
            calls = [
                child
                for child in _iter_nodes(node)
                if isinstance(child, ast.Call)
            ]
            if any(_call_attr_name(call) in _FREEZERS for call in calls):
                continue
            yield Finding(
                rule=self.id,
                message=(
                    "publish_view does not freeze its payload: call "
                    "frozen_copy()/deepcopy() before publishing"
                ),
                path=ctx.rel,
                line=node.lineno,
                column=node.col_offset,
                severity=self.severity,
            )

    def _check_consumers(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            published: Set[str] = set()
            for child in _iter_nodes(node):
                # var = something.publish_view(...) marks var as published.
                if isinstance(child, ast.Assign) and isinstance(
                    child.value, ast.Call
                ):
                    if (
                        isinstance(child.value.func, ast.Attribute)
                        and child.value.func.attr in _PUBLISHERS
                    ):
                        for target in child.targets:
                            if isinstance(target, ast.Name):
                                published.add(target.id)
                        continue
                if not published:
                    continue
                if isinstance(child, ast.Call):
                    name = _call_attr_name(child)
                    if (
                        name in _MUTATORS
                        and isinstance(child.func, ast.Attribute)
                        and _root_name(child.func.value) in published
                    ):
                        yield Finding(
                            rule=self.id,
                            message=(
                                f"mutator .{name}() called on published view "
                                f"'{_root_name(child.func.value)}'"
                            ),
                            path=ctx.rel,
                            line=child.lineno,
                            column=child.col_offset,
                            severity=self.severity,
                        )
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if (
                            isinstance(target, (ast.Attribute, ast.Subscript))
                            and _root_name(target) in published
                        ):
                            yield Finding(
                                rule=self.id,
                                message=(
                                    "assignment through published view "
                                    f"'{_root_name(target)}' mutates shared "
                                    "state"
                                ),
                                path=ctx.rel,
                                line=target.lineno,
                                column=target.col_offset,
                                severity=self.severity,
                            )

    def _check_view_classes(self, program: "Program") -> Iterator[Finding]:
        """Methods of classes constructed inside publish_view must not
        transitively reach a known mutator through the call graph."""
        for module_name in sorted(program.symbols.modules):
            info = program.symbols.modules[module_name]
            ctx = program.context_for_module(module_name)
            if ctx is None:
                continue
            publishers = [
                fn.node
                for cls in info.classes.values()
                for fn in cls.methods.values()
                if fn.name == "publish_view"
            ]
            publishers.extend(
                fn.node for fn in info.functions.values() if fn.name == "publish_view"
            )
            constructed: Set[str] = set()
            for node in publishers:
                for child in _iter_nodes(node):
                    if isinstance(child, ast.Call) and isinstance(
                        child.func, ast.Name
                    ):
                        if program.symbols.resolve_class(
                            module_name, child.func.id
                        ):
                            constructed.add(child.func.id)
            for cls_name in sorted(constructed):
                resolved = program.symbols.resolve_class(module_name, cls_name)
                if resolved is None:
                    continue
                def_module, cls_info = resolved
                def_ctx = program.context_for_module(def_module)
                if def_ctx is None:
                    continue
                for method in cls_info.methods.values():
                    if method.name.startswith("__"):
                        continue
                    start = qualified_name(def_module, cls_info.name, method.name)
                    reached = program.callgraph.reachable_from(start)
                    hits = sorted(
                        node
                        for node in reached
                        if node.rsplit(".", 1)[-1].split(":")[-1] in _MUTATORS
                    )
                    if hits:
                        yield Finding(
                            rule=self.id,
                            message=(
                                f"published view class {cls_info.name}."
                                f"{method.name} can reach mutator "
                                f"{hits[0].split(':', 1)[1]}"
                            ),
                            path=def_ctx.rel,
                            line=method.lineno,
                            column=0,
                            severity=self.severity,
                        )
