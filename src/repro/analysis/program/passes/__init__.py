"""Interprocedural passes R14-R17 (imported for registration side effects)."""

from __future__ import annotations

from . import escape, locks, walorder, wire  # noqa: F401

__all__ = ["locks", "escape", "wire", "walorder"]
