"""R17 — WAL/journal write must dominate the in-memory apply.

On every mutation entry point of ``DurableCollection`` and ``ShardRouter``,
the durability write (WAL append, journal buffer/inflight record) must come
before the in-memory or remote apply — otherwise a crash between the two
leaves an applied-but-unlogged mutation that recovery cannot replay.

Mutation entry points are verb-named methods: prefixes ``insert_``,
``bulk_``, ``apply``, ``compact`` and the exact names ``delete``/
``add_document``.  Per class the pass knows what counts as a *journal* call
and what counts as an *apply*:

* ``DurableCollection``: journal = ``.append``/``.write`` on a receiver
  chain containing a ``wal`` segment, or a ``self.<m>()`` call whose method
  transitively performs one (closure over the class's own methods); apply =
  a verb-named attribute call on a receiver chain containing ``live``.
* ``ShardRouter``: journal = ``.append``/``.insert`` on a chain containing
  ``journal``, or an assignment to ``.inflight`` on such a chain; apply =
  ``.request``/``.send`` on a chain containing ``supervisor``.

A verb-named method that delegates to another verb-named ``self`` method is
considered satisfied — responsibility transfers to the callee (this keeps
``bulk_insert -> apply_batch -> apply_batch_addressed`` to a single
decision point).  Comparison is by line number, which is sound for the
straight-line mutation bodies this codebase uses; docs/ANALYSIS.md notes
the limits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from ...context import FileContext
from ...engine import ProgramRule, register
from ...findings import Finding
from ..symbols import ClassInfo

if TYPE_CHECKING:
    from .. import Program

_VERB_PREFIXES = ("insert_", "bulk_", "apply", "compact")
_VERB_EXACT = {"delete", "add_document"}


def _is_mutation_entry(name: str) -> bool:
    return name in _VERB_EXACT or any(name.startswith(p) for p in _VERB_PREFIXES)


def _chain_segments(expr: ast.expr) -> List[str]:
    """Name/attribute segments of a receiver chain, left to right."""
    parts: List[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _segment_matches(segments: List[str], token: str) -> bool:
    return any(token in segment for segment in segments)


@dataclass
class _ClassSpec:
    journal_attrs: Set[str]
    journal_chain: str
    apply_chain: str
    apply_attrs: Optional[Set[str]] = None  # None -> any verb-named attr
    inflight_chain: Optional[str] = None


_SPECS: Dict[str, _ClassSpec] = {
    "DurableCollection": _ClassSpec(
        journal_attrs={"append", "write"},
        journal_chain="wal",
        apply_chain="live",
    ),
    "ShardRouter": _ClassSpec(
        journal_attrs={"append", "insert"},
        journal_chain="journal",
        apply_chain="supervisor",
        apply_attrs={"request", "send"},
        inflight_chain="journal",
    ),
}


def _iter_stmts(node: ast.AST) -> Iterator[ast.AST]:
    """Source-ordered walk that skips nested def/class bodies."""
    stack: List[ast.AST] = list(reversed(list(ast.iter_child_nodes(node))))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(child))))


def _first_journal_line(
    method: ast.FunctionDef,
    spec: _ClassSpec,
    journaling_methods: Set[str],
) -> Optional[int]:
    for node in _iter_stmts(method):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            segments = _chain_segments(node.func.value)
            if node.func.attr in spec.journal_attrs and _segment_matches(
                segments, spec.journal_chain
            ):
                return node.lineno
            if (
                segments == ["self"]
                and node.func.attr in journaling_methods
            ):
                return node.lineno
        if (
            spec.inflight_chain is not None
            and isinstance(node, ast.Assign)
        ):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and target.attr == "inflight":
                    if _segment_matches(
                        _chain_segments(target.value), spec.inflight_chain
                    ):
                        return target.lineno
    return None


def _first_apply(
    method: ast.FunctionDef, spec: _ClassSpec
) -> Optional[ast.Call]:
    for node in _iter_stmts(method):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        segments = _chain_segments(node.func.value)
        if not _segment_matches(segments, spec.apply_chain):
            continue
        attr = node.func.attr
        if spec.apply_attrs is not None:
            if attr in spec.apply_attrs:
                return node
        elif _is_mutation_entry(attr):
            return node
    return None


def _delegates(method: ast.FunctionDef, own_methods: Set[str]) -> bool:
    """True if the method calls another verb-named method on self."""
    for node in _iter_stmts(method):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr != method.name
            and node.func.attr in own_methods
            and _is_mutation_entry(node.func.attr)
        ):
            return True
    return False


def _journaling_methods(cls: ClassInfo, spec: _ClassSpec) -> Set[str]:
    """Methods that (transitively) perform a journal write themselves."""
    direct: Set[str] = set()
    calls: Dict[str, Set[str]] = {}
    for name, method in cls.methods.items():
        calls[name] = set()
        for node in _iter_stmts(method.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            segments = _chain_segments(node.func.value)
            if node.func.attr in spec.journal_attrs and _segment_matches(
                segments, spec.journal_chain
            ):
                direct.add(name)
            elif segments == ["self"]:
                calls[name].add(node.func.attr)
    closure = set(direct)
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            if name not in closure and callees & closure:
                closure.add(name)
                changed = True
    return closure


@register
class WalBeforeApplyRule(ProgramRule):
    id = "R17"
    title = "WAL/journal write must precede the in-memory apply"
    rationale = (
        "A mutation applied to live state before its WAL/journal record is "
        "durable cannot be replayed after a crash: recovery restores the "
        "snapshot plus the log, and the unlogged apply is silently lost."
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for module_name in sorted(program.symbols.modules):
            info = program.symbols.modules[module_name]
            ctx = program.context_for_module(module_name)
            if ctx is None:
                continue
            for cls_name, spec in _SPECS.items():
                cls = info.classes.get(cls_name)
                if cls is not None:
                    yield from self._check_class(ctx, cls, spec)

    def _check_class(
        self, ctx: FileContext, cls: ClassInfo, spec: _ClassSpec
    ) -> Iterator[Finding]:
        journaling = _journaling_methods(cls, spec)
        own = set(cls.methods)
        # Verb-named entry points plus every own method they (transitively)
        # call: delegation moves the journal/apply pair into helpers like
        # ShardRouter._mutate, and the ordering must hold wherever it lands.
        candidates: Set[str] = {
            name for name in cls.methods if _is_mutation_entry(name)
        }
        changed = True
        while changed:
            changed = False
            for name in list(candidates):
                for node in _iter_stmts(cls.methods[name].node):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and node.func.attr in own
                        and node.func.attr not in candidates
                    ):
                        candidates.add(node.func.attr)
                        changed = True
        for name in sorted(candidates):
            method = cls.methods[name]
            apply_call = _first_apply(method.node, spec)
            journal_line = _first_journal_line(method.node, spec, journaling)
            if apply_call is None:
                # No apply in this body: the method either journals only
                # (fine) or delegates the whole pair to a helper that is
                # itself a candidate.
                continue
            if journal_line is None:
                if _delegates(method.node, own):
                    continue
                yield Finding(
                    rule=self.id,
                    message=(
                        f"{cls.name}.{name} applies a mutation with no "
                        "WAL/journal write anywhere in the method"
                    ),
                    path=ctx.rel,
                    line=method.lineno,
                    column=method.node.col_offset,
                    severity=self.severity,
                )
                continue
            if apply_call.lineno < journal_line:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"{cls.name}.{name} applies at line "
                        f"{apply_call.lineno} before the WAL/journal write "
                        f"at line {journal_line}"
                    ),
                    path=ctx.rel,
                    line=apply_call.lineno,
                    column=apply_call.col_offset,
                    severity=self.severity,
                )
