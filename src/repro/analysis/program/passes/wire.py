"""R16 — wire-protocol exhaustiveness: encoder/decoder parity per version.

The on-disk formats (RPSN snapshots, RPLS label stores, RPWL WAL segments,
varint label codec) each have a hand-written encoder and decoder.  This pass
extracts a *token stream* from both sides and proves they agree, per format
version:

* writer tokens come from ``out.append(struct.pack(fmt, ...))`` / list
  initialisers (``fmt``), ``write_int``/``_write_int``/``_write_varint``
  calls (``INT``), ``_write_string(out, x, W)`` (``STR:W``), ``_write_tree``
  (``TREE``) and ``codec.encode`` (``LABEL``);
* reader tokens come from ``reader.unpack(fmt)``, ``read_int``/
  ``_read_int``/``_read_varint``, ``reader.string(W)``, ``_read_tree`` and
  ``codec.decode``.  ``reader.take`` and direct ``struct.unpack`` (the CRC
  pre-checks) are checksum plumbing, not fields, and are skipped — as are
  ``struct.pack`` calls outside an append/list-init (the CRC footers).

Version dispatch (``if version >= 3: ...``) is resolved symbolically: the
extractor evaluates comparisons of ``version`` against integer constants
(module constants like ``_SUPPORTED_VERSIONS`` resolve through the symbol
table) and walks only the live branch for each candidate version; any other
condition descends both branches.

On top of stream parity the pass checks the WAL v3 opcode tables (every
emitted opcode decodable and vice versa, values unique and non-zero, both
codecs driven by the shared ``_OP_FIELDS`` table), per-module version
tables (default version supported, newest version is the default), the
``DurableCollection._FORMAT_VERSIONS`` cross-module map, and the label-kind
vocabulary shared by ``_kind_of``/``ints_to_label``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ...context import FileContext
from ...engine import ProgramRule, register
from ...findings import Finding

if TYPE_CHECKING:
    from .. import Program

_INT_WRITERS = {"write_int", "_write_int", "_write_varint"}
_INT_READERS = {"read_int", "_read_int", "_read_varint"}


class _Unresolvable(Exception):
    """A condition the extractor cannot evaluate for a fixed version."""


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _receiver_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute) and isinstance(
        call.func.value, ast.Name
    ):
        return call.func.value.id
    return ""


def _const_str(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


class _Evaluator:
    """Evaluate version-dispatch conditions for one candidate version."""

    def __init__(
        self, version: Optional[int], constants: Dict[str, object]
    ) -> None:
        self.version = version
        self.constants = constants

    def value(self, expr: ast.expr) -> object:
        if isinstance(expr, ast.Constant):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.id == "version":
                if self.version is None:
                    raise _Unresolvable(expr.id)
                return self.version
            if expr.id in self.constants:
                return self.constants[expr.id]
            raise _Unresolvable(expr.id)
        if isinstance(expr, ast.Tuple):
            return tuple(self.value(elt) for elt in expr.elts)
        raise _Unresolvable(ast.dump(expr))

    def test(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            return not self.test(expr.operand)
        if isinstance(expr, ast.BoolOp):
            results = [self.test(v) for v in expr.values]
            return all(results) if isinstance(expr.op, ast.And) else any(results)
        if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
            left = self.value(expr.left)
            right = self.value(expr.comparators[0])
            op = expr.ops[0]
            try:
                if isinstance(op, ast.Lt):
                    return bool(left < right)  # type: ignore[operator]
                if isinstance(op, ast.LtE):
                    return bool(left <= right)  # type: ignore[operator]
                if isinstance(op, ast.Gt):
                    return bool(left > right)  # type: ignore[operator]
                if isinstance(op, ast.GtE):
                    return bool(left >= right)  # type: ignore[operator]
                if isinstance(op, ast.Eq):
                    return bool(left == right)
                if isinstance(op, ast.NotEq):
                    return bool(left != right)
                if isinstance(op, ast.In):
                    return left in right  # type: ignore[operator]
                if isinstance(op, ast.NotIn):
                    return left not in right  # type: ignore[operator]
            except TypeError as error:
                raise _Unresolvable(str(error)) from error
        raise _Unresolvable(ast.dump(expr))


class _StreamExtractor:
    """Extract the field-token stream of one encoder or decoder body."""

    def __init__(self, mode: str, evaluator: _Evaluator) -> None:
        self.mode = mode  # "writer" | "reader"
        self.evaluator = evaluator
        self.tokens: List[str] = []

    def run(self, node: ast.FunctionDef) -> List[str]:
        self._walk_body(node.body)
        return self.tokens

    def _walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.If):
            try:
                live = self.evaluator.test(stmt.test)
            except _Unresolvable:
                self._walk_body(stmt.body)
                self._walk_body(stmt.orelse)
                return
            self._walk_body(stmt.body if live else stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self._walk_expr(stmt.iter, packing=False)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._walk_expr(item.context_expr, packing=False)
            self._walk_body(stmt.body)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is None:
                return
            # List initialisers count as emit sites: out = [MAGIC, pack(...)]
            packing = self.mode == "writer" and isinstance(value, ast.List)
            self._walk_expr(value, packing=packing)
            return
        if isinstance(stmt, ast.AugAssign):
            # CRC footers (blob += struct.pack(...)) are not fields.
            return
        if isinstance(stmt, (ast.Expr, ast.Return, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._walk_expr(child, packing=False)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._walk_expr(child, packing=False)
            elif isinstance(child, ast.stmt):
                self._walk_stmt(child)

    def _walk_expr(self, expr: ast.expr, packing: bool) -> None:
        if isinstance(expr, ast.IfExp):
            try:
                live = self.evaluator.test(expr.test)
            except _Unresolvable:
                self._walk_expr(expr.body, packing)
                self._walk_expr(expr.orelse, packing)
                return
            self._walk_expr(expr.body if live else expr.orelse, packing)
            return
        if isinstance(expr, ast.Call):
            if self._handle_call(expr, packing):
                return
            self._walk_expr(expr.func, packing=False)
            for arg in expr.args:
                self._walk_expr(arg, packing)
            for kw in expr.keywords:
                self._walk_expr(kw.value, packing)
            return
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._walk_expr(expr.elt, packing=False)
            for gen in expr.generators:
                self._walk_expr(gen.iter, packing=False)
            return
        if isinstance(expr, ast.DictComp):
            self._walk_expr(expr.key, packing=False)
            self._walk_expr(expr.value, packing=False)
            for gen in expr.generators:
                self._walk_expr(gen.iter, packing=False)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._walk_expr(child, packing)

    def _handle_call(self, call: ast.Call, packing: bool) -> bool:
        """Emit a token for ``call`` if it is a field operation; True if done."""
        name = _call_name(call)
        receiver = _receiver_name(call)
        if self.mode == "writer":
            if name == "append" and isinstance(call.func, ast.Attribute):
                for arg in call.args:
                    self._walk_expr(arg, packing=True)
                return True
            if name == "pack" and receiver == "struct":
                if packing:
                    fmt = _const_str(call.args[0]) if call.args else None
                    self.tokens.append(fmt if fmt is not None else "PACK:?")
                return True
            if name in _INT_WRITERS:
                self.tokens.append("INT")
                return True
            if name == "_write_string":
                width = (
                    _const_str(call.args[2]) if len(call.args) >= 3 else None
                )
                self.tokens.append(f"STR:{width or '?'}")
                return True
            if name == "_write_tree":
                self.tokens.append("TREE")
                return True
            if name == "encode" and receiver == "codec":
                self.tokens.append("LABEL")
                return True
        else:
            if name == "unpack" and receiver != "struct":
                fmt = _const_str(call.args[0]) if call.args else None
                self.tokens.append(fmt if fmt is not None else "UNPACK:?")
                return True
            if name == "unpack" and receiver == "struct":
                return True  # CRC pre-checks, not fields
            if name == "string":
                width = _const_str(call.args[0]) if call.args else None
                self.tokens.append(f"STR:{width or '?'}")
                return True
            if name in _INT_READERS:
                self.tokens.append("INT")
                return True
            if name == "_read_tree":
                self.tokens.append("TREE")
                return True
            if name == "decode" and receiver == "codec":
                self.tokens.append("LABEL")
                return True
            if name == "take":
                return True  # raw byte plumbing (magic, CRC slices)
        return False


@dataclass
class _PairSpec:
    writer: str
    reader: str


@dataclass
class _ModuleSpec:
    pairs: List[_PairSpec] = field(default_factory=list)
    supported_const: Optional[str] = None
    default_const: Optional[str] = None


_MODULE_SPECS: Dict[str, _ModuleSpec] = {
    "repro.durable.snapshot": _ModuleSpec(
        pairs=[
            _PairSpec("snapshot_bytes", "_decode_body"),
            _PairSpec("_write_tree", "_read_tree"),
        ],
        supported_const="_SUPPORTED_VERSIONS",
        default_const="_VERSION",
    ),
    "repro.query.persist": _ModuleSpec(
        pairs=[_PairSpec("save_store", "_load_store_checked")],
        supported_const="_SUPPORTED_VERSIONS",
        default_const="_VERSION",
    ),
    "repro.labeling.codec": _ModuleSpec(
        pairs=[_PairSpec("VarintCodec.encode", "VarintCodec.decode")],
    ),
    "repro.durable.wal": _ModuleSpec(
        supported_const="SUPPORTED_WAL_VERSIONS",
        default_const="_DEFAULT_VERSION",
    ),
}


def _find_function(
    module_tree: ast.Module, dotted: str
) -> Optional[ast.FunctionDef]:
    parts = dotted.split(".")
    body: Sequence[ast.stmt] = module_tree.body
    for index, part in enumerate(parts):
        found = None
        for stmt in body:
            if index < len(parts) - 1:
                if isinstance(stmt, ast.ClassDef) and stmt.name == part:
                    found = stmt
                    break
            else:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == part:
                    return stmt
        if found is None:
            return None
        body = found.body
    return None


def _find_assign(
    module_tree: ast.Module, name: str
) -> Optional[ast.stmt]:
    for stmt in module_tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt
    return None


def _str_keyed_dict(
    module_tree: ast.Module, name: str
) -> Optional[Dict[str, object]]:
    """A module-level dict literal's string keys, values best-effort.

    ``_OP_FIELDS`` maps names to shapes containing ``int``/``str`` type
    objects, which ``ast.literal_eval`` rejects — so the symbol table
    never records it as a constant.  The table checks only need the key
    sets (and, for ``_OPCODES``, the int codes), so read them straight
    off the AST and fall back to ``None`` for unevaluable values.
    """
    stmt = _find_assign(module_tree, name)
    if stmt is None:
        return None
    value = stmt.value if isinstance(stmt, (ast.Assign, ast.AnnAssign)) else None
    if not isinstance(value, ast.Dict):
        return None
    out: Dict[str, object] = {}
    for key, val in zip(value.keys, value.values):
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            try:
                out[key.value] = ast.literal_eval(val)
            except (ValueError, SyntaxError):
                out[key.value] = None
    return out


def _references(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == name
        for child in ast.walk(node)
    )


@register
class WireParityRule(ProgramRule):
    id = "R16"
    title = "wire-format encoders and decoders must agree per version"
    rationale = (
        "Encode/decode drift between format versions corrupts data silently: "
        "an opcode without a decode branch, a field written in one order and "
        "read in another, or a version the dispatch table misses all turn "
        "into garbage labels on the next recovery."
    )

    def check_program(self, program: "Program") -> Iterator[Finding]:
        for module_name, spec in _MODULE_SPECS.items():
            ctx = program.context_for_module(module_name)
            if ctx is None:
                continue
            info = program.symbols.modules.get(module_name)
            constants = dict(info.constants) if info is not None else {}
            yield from self._check_versions(ctx, spec, constants)
            yield from self._check_pairs(ctx, spec, constants)
            if module_name == "repro.durable.wal":
                yield from self._check_wal_tables(ctx, constants)
            if module_name == "repro.labeling.codec":
                yield from self._check_kind_vocabulary(ctx)
        yield from self._check_format_map(program)

    # -- version tables ------------------------------------------------

    def _check_versions(
        self, ctx: FileContext, spec: _ModuleSpec, constants: Dict[str, object]
    ) -> Iterator[Finding]:
        if spec.supported_const is None or spec.default_const is None:
            return
        supported = constants.get(spec.supported_const)
        default = constants.get(spec.default_const)
        if not isinstance(supported, tuple) or not isinstance(default, int):
            return
        anchor = _find_assign(ctx.tree, spec.default_const)
        line = anchor.lineno if anchor is not None else 1
        if default not in supported:
            yield Finding(
                rule=self.id,
                message=(
                    f"default format version {default} is not in "
                    f"{spec.supported_const} {supported}"
                ),
                path=ctx.rel,
                line=line,
                severity=self.severity,
            )
        elif supported and max(int(v) for v in supported) != default:
            yield Finding(
                rule=self.id,
                message=(
                    f"newest supported version {max(int(v) for v in supported)} "
                    f"is not the default ({spec.default_const} = {default}); "
                    "new files would be written in an old format"
                ),
                path=ctx.rel,
                line=line,
                severity=self.severity,
            )

    # -- token-stream parity -------------------------------------------

    def _check_pairs(
        self, ctx: FileContext, spec: _ModuleSpec, constants: Dict[str, object]
    ) -> Iterator[Finding]:
        versions: List[Optional[int]] = [None]
        if spec.supported_const is not None:
            supported = constants.get(spec.supported_const)
            if isinstance(supported, tuple) and supported:
                versions = [int(v) for v in supported]
        for pair in spec.pairs:
            writer = _find_function(ctx.tree, pair.writer)
            reader = _find_function(ctx.tree, pair.reader)
            if writer is None or reader is None:
                continue
            for version in versions:
                evaluator = _Evaluator(version, constants)
                wrote = _StreamExtractor("writer", evaluator).run(writer)
                read = _StreamExtractor("reader", evaluator).run(reader)
                if wrote == read:
                    continue
                label = f"version {version}" if version is not None else "all versions"
                index = next(
                    (
                        i
                        for i, (a, b) in enumerate(zip(wrote, read))
                        if a != b
                    ),
                    min(len(wrote), len(read)),
                )
                wrote_at = wrote[index] if index < len(wrote) else "<end>"
                read_at = read[index] if index < len(read) else "<end>"
                yield Finding(
                    rule=self.id,
                    message=(
                        f"{pair.writer}/{pair.reader} disagree for {label}: "
                        f"field {index + 1} is {wrote_at!r} on the write side "
                        f"but {read_at!r} on the read side "
                        f"(writer emits {len(wrote)} fields, reader consumes "
                        f"{len(read)})"
                    ),
                    path=ctx.rel,
                    line=writer.lineno,
                    column=writer.col_offset,
                    severity=self.severity,
                )

    # -- WAL opcode tables ---------------------------------------------

    def _check_wal_tables(
        self, ctx: FileContext, constants: Dict[str, object]
    ) -> Iterator[Finding]:
        opcodes = _str_keyed_dict(ctx.tree, "_OPCODES")
        op_fields = _str_keyed_dict(ctx.tree, "_OP_FIELDS")
        if opcodes is None or op_fields is None:
            return
        anchor = _find_assign(ctx.tree, "_OPCODES")
        line = anchor.lineno if anchor is not None else 1
        decodable = set(op_fields) | {"batch"}
        for name in sorted(set(opcodes) - decodable):
            yield Finding(
                rule=self.id,
                message=(
                    f"WAL opcode {name!r} (code {opcodes[name]}) is emitted "
                    "by the v3 encoder but has no _OP_FIELDS entry, so the "
                    "decoder cannot read it"
                ),
                path=ctx.rel,
                line=line,
                severity=self.severity,
            )
        for name in sorted(set(op_fields) - set(opcodes)):
            yield Finding(
                rule=self.id,
                message=(
                    f"WAL field table entry {name!r} has no opcode in "
                    "_OPCODES, so the encoder can never emit it"
                ),
                path=ctx.rel,
                line=line,
                severity=self.severity,
            )
        by_code: Dict[object, List[str]] = {}
        for name, code in opcodes.items():
            by_code.setdefault(code, []).append(str(name))
        for code, names in sorted(by_code.items(), key=lambda kv: str(kv[0])):
            if len(names) > 1:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"WAL opcodes {sorted(names)} share code {code}; "
                        "decode is ambiguous"
                    ),
                    path=ctx.rel,
                    line=line,
                    severity=self.severity,
                )
            if code == 0:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"WAL opcode {names[0]!r} uses code 0, which is "
                        "reserved for the JSON fallback record"
                    ),
                    path=ctx.rel,
                    line=line,
                    severity=self.severity,
                )
        encoder = _find_function(ctx.tree, "_encode_op_v3")
        decoder = _find_function(ctx.tree, "_decode_op_v3")
        if encoder is not None and decoder is not None:
            for fn in (encoder, decoder):
                if not _references(fn, "_OP_FIELDS"):
                    yield Finding(
                        rule=self.id,
                        message=(
                            f"{fn.name} does not read the shared _OP_FIELDS "
                            "table; encoder and decoder field orders can "
                            "drift independently"
                        ),
                        path=ctx.rel,
                        line=fn.lineno,
                        severity=self.severity,
                    )

    # -- label-kind vocabulary -----------------------------------------

    def _check_kind_vocabulary(self, ctx: FileContext) -> Iterator[Finding]:
        kind_of = _find_function(ctx.tree, "_kind_of")
        ints_to_label = _find_function(ctx.tree, "ints_to_label")
        if kind_of is None or ints_to_label is None:
            return
        produced: Set[str] = set()
        for node in ast.walk(kind_of):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, str):
                    produced.add(node.value.value)
        consumed: Set[str] = set()
        for node in ast.walk(ints_to_label):
            if isinstance(node, ast.Compare):
                for comparator in [node.left, *node.comparators]:
                    if isinstance(comparator, ast.Constant) and isinstance(
                        comparator.value, str
                    ):
                        consumed.add(comparator.value)
        for kind in sorted(produced - consumed):
            yield Finding(
                rule=self.id,
                message=(
                    f"label kind {kind!r} is produced by _kind_of but "
                    "ints_to_label has no branch for it"
                ),
                path=ctx.rel,
                line=ints_to_label.lineno,
                severity=self.severity,
            )
        for kind in sorted(consumed - produced):
            yield Finding(
                rule=self.id,
                message=(
                    f"ints_to_label handles label kind {kind!r} that "
                    "_kind_of never produces (dead or misspelled branch)"
                ),
                path=ctx.rel,
                line=ints_to_label.lineno,
                severity=self.severity,
            )

    # -- cross-module version map --------------------------------------

    def _check_format_map(self, program: "Program") -> Iterator[Finding]:
        ctx = program.context_for_module("repro.durable.collection")
        if ctx is None:
            return
        info = program.symbols.modules.get("repro.durable.collection")
        if info is None or "DurableCollection" not in info.classes:
            return
        cls = info.classes["DurableCollection"]
        assign = None
        for stmt in cls.node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "_FORMAT_VERSIONS"
                    ):
                        assign = stmt
        if assign is None:
            return
        try:
            format_map = ast.literal_eval(assign.value)
        except (ValueError, SyntaxError):
            return
        if not isinstance(format_map, dict):
            return
        snap_info = program.symbols.modules.get("repro.durable.snapshot")
        wal_info = program.symbols.modules.get("repro.durable.wal")
        snap_supported = (
            snap_info.constants.get("_SUPPORTED_VERSIONS") if snap_info else None
        )
        wal_supported = (
            wal_info.constants.get("SUPPORTED_WAL_VERSIONS") if wal_info else None
        )
        for collection_version, pair in sorted(format_map.items()):
            if not (isinstance(pair, tuple) and len(pair) == 2):
                continue
            snap_version, wal_version = pair
            if (
                isinstance(snap_supported, tuple)
                and snap_version not in snap_supported
            ):
                yield Finding(
                    rule=self.id,
                    message=(
                        f"_FORMAT_VERSIONS[{collection_version}] pins "
                        f"snapshot version {snap_version}, which "
                        "repro.durable.snapshot does not support"
                    ),
                    path=ctx.rel,
                    line=assign.lineno,
                    severity=self.severity,
                )
            if isinstance(wal_supported, tuple) and wal_version not in wal_supported:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"_FORMAT_VERSIONS[{collection_version}] pins WAL "
                        f"version {wal_version}, which repro.durable.wal "
                        "does not support"
                    ),
                    path=ctx.rel,
                    line=assign.lineno,
                    severity=self.severity,
                )
