"""Whole-program analysis: symbol table, call graph, and interprocedural passes.

:class:`Program` bundles pass-0 artefacts (symbol table + call graph) built
once per lint run from all file contexts.  Program rules (R14-R17, see
``repro.analysis.program.passes``) subclass :class:`~repro.analysis.engine.ProgramRule`
and receive the :class:`Program` instead of a single file context.

See docs/ANALYSIS.md ("Whole-program passes") for the architecture and the
approximations each pass makes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..context import FileContext
from .callgraph import CallGraph, build_callgraph
from .symbols import ClassInfo, ModuleInfo, SymbolTable

__all__ = [
    "Program",
    "SymbolTable",
    "CallGraph",
    "ModuleInfo",
    "ClassInfo",
]


class Program:
    """Pass-0 view of the whole project under analysis."""

    def __init__(self, contexts: Iterable[FileContext]) -> None:
        self.contexts: List[FileContext] = list(contexts)
        self.symbols = SymbolTable(self.contexts)
        self.callgraph = build_callgraph(self.symbols)
        self._by_rel: Dict[str, FileContext] = {ctx.rel: ctx for ctx in self.contexts}
        self._by_module: Dict[str, FileContext] = {
            ctx.module: ctx for ctx in self.contexts
        }

    def context_for(self, rel: str) -> Optional[FileContext]:
        """The file context at repo-relative path ``rel``, if in this run."""
        return self._by_rel.get(rel)

    def context_for_module(self, module: str) -> Optional[FileContext]:
        """The file context defining dotted module ``module``, if present."""
        return self._by_module.get(module)

    def stats(self) -> Dict[str, int]:
        """Pass-0 sizes: files, symbols, and call-graph counts."""
        out = {"files": len(self.contexts)}
        out.update(self.symbols.stats())
        graph = self.callgraph.stats()
        out["call_edges"] = graph["edges"]
        out["call_nodes"] = graph["nodes"]
        out["unresolved_calls"] = graph["unresolved"]
        return out
