"""Project-wide symbol table construction (pass 0, part 1).

Builds :class:`SymbolTable` from a set of :class:`~repro.analysis.context.FileContext`
objects.  The table records, per module:

* import aliases (``import repro.durable.wal as wal`` -> ``wal`` maps to
  ``repro.durable.wal``),
* from-imports (``from .wal import WriteAheadLog`` -> local name maps to the
  defining module plus original name, enabling re-export chasing),
* top-level classes with their methods, declared attribute types, and
  ``# repro: guarded-by(<lock>): fields`` declarations,
* top-level functions,
* module-level constants whose values are simple literals (ints, strings,
  tuples, dicts) — used by the wire-protocol pass to resolve version tables.

Everything here is a best-effort approximation over stdlib ``ast``; the
limitations are documented in docs/ANALYSIS.md.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..context import FileContext

_GUARDED_BY = re.compile(
    r"#\s*repro:\s*guarded-by\((?P<lock>\w+)\)\s*:\s*(?P<fields>[A-Za-z0-9_,\s]+)"
)


@dataclass
class FunctionInfo:
    """A function or method definition."""

    name: str
    node: ast.FunctionDef
    lineno: int
    is_method: bool = False
    decorators: Tuple[str, ...] = ()

    @property
    def is_classmethod(self) -> bool:
        return "classmethod" in self.decorators

    @property
    def is_staticmethod(self) -> bool:
        return "staticmethod" in self.decorators


@dataclass
class GuardDecl:
    """A ``# repro: guarded-by(lock): fields`` declaration inside a class."""

    lock: str
    fields: Tuple[str, ...]
    lineno: int


@dataclass
class ClassInfo:
    """A top-level class definition."""

    name: str
    node: ast.ClassDef
    lineno: int
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: maps ``self.<attr>`` names to a best-effort type name (class name or
    #: dotted name) inferred from annotations or constructor calls.
    attr_types: Dict[str, str] = field(default_factory=dict)
    guards: List[GuardDecl] = field(default_factory=list)

    @property
    def guarded_fields(self) -> Dict[str, str]:
        """Map of field name -> lock attribute name."""
        out: Dict[str, str] = {}
        for decl in self.guards:
            for name in decl.fields:
                out[name] = decl.lock
        return out


@dataclass
class ModuleInfo:
    """Symbols defined by one module."""

    module: str
    rel: str
    #: ``import x.y as z`` -> {"z": "x.y"}; ``import x.y`` -> {"x": "x"}
    imports: Dict[str, str] = field(default_factory=dict)
    #: ``from m import a as b`` -> {"b": ("m", "a")}
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    constants: Dict[str, object] = field(default_factory=dict)


def _decorator_names(node: ast.FunctionDef) -> Tuple[str, ...]:
    names: List[str] = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return tuple(names)


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """Extract a plain class name from an annotation, unwrapping Optional."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # string annotation: take the last identifier-ish component
        text = annotation.value.strip()
        match = re.search(r"([A-Za-z_][A-Za-z0-9_]*)\s*\]?$", text)
        return match.group(1) if match else None
    if isinstance(annotation, ast.Subscript):
        # Optional[T] / Final[T] -> T; other generics are too fuzzy to chase.
        base = annotation.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name in {"Optional", "Final", "ClassVar"}:
            return _annotation_name(annotation.slice)
    return None


def _call_type_name(value: ast.expr) -> Optional[str]:
    """If ``value`` is ``ClassName(...)`` or ``mod.ClassName(...)``, return the name."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _collect_attr_types(info: ClassInfo) -> None:
    """Infer ``self.<attr>`` types from class-body annotations and __init__."""
    for stmt in info.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = _annotation_name(stmt.annotation)
            if name:
                info.attr_types[stmt.target.id] = name
    init = info.methods.get("__init__")
    if init is None:
        return
    # Parameter annotations let ``self.x = x`` inherit the declared type.
    param_types: Dict[str, str] = {}
    args = init.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        name = _annotation_name(arg.annotation)
        if name:
            param_types[arg.arg] = name
    for stmt in ast.walk(init.node):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        attr = target.attr
        if isinstance(stmt, ast.AnnAssign):
            name = _annotation_name(stmt.annotation)
            if name:
                info.attr_types.setdefault(attr, name)
                continue
        if value is None:
            continue
        ctor = _call_type_name(value)
        if ctor:
            info.attr_types.setdefault(attr, ctor)
        elif isinstance(value, ast.Name) and value.id in param_types:
            info.attr_types.setdefault(attr, param_types[value.id])


def _parse_guards(ctx: FileContext) -> List[Tuple[int, GuardDecl]]:
    decls: List[Tuple[int, GuardDecl]] = []
    for lineno, line in enumerate(ctx.source.splitlines(), start=1):
        match = _GUARDED_BY.search(line)
        if not match:
            continue
        fields = tuple(
            part.strip() for part in match.group("fields").split(",") if part.strip()
        )
        if fields:
            decls.append((lineno, GuardDecl(match.group("lock"), fields, lineno)))
    return decls


def _module_from_level(ctx_module: str, level: int, module: Optional[str]) -> str:
    """Resolve a relative import to an absolute dotted module name."""
    if level == 0:
        return module or ""
    parts = ctx_module.split(".")
    # level=1 from inside a module means "this package".
    base = parts[: len(parts) - level]
    if module:
        base = base + module.split(".")
    return ".".join(base)


def module_info_from_context(ctx: FileContext) -> ModuleInfo:
    info = ModuleInfo(module=ctx.module, rel=ctx.rel)
    guard_decls = _parse_guards(ctx)
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    info.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            source = _module_from_level(ctx.module, stmt.level, stmt.module)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.from_imports[local] = (source, alias.name)
        elif isinstance(stmt, ast.FunctionDef):
            info.functions[stmt.name] = FunctionInfo(
                name=stmt.name,
                node=stmt,
                lineno=stmt.lineno,
                decorators=_decorator_names(stmt),
            )
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(
                name=stmt.name,
                node=stmt,
                lineno=stmt.lineno,
                bases=tuple(
                    base.id if isinstance(base, ast.Name) else base.attr
                    for base in stmt.bases
                    if isinstance(base, (ast.Name, ast.Attribute))
                ),
            )
            for item in stmt.body:
                if isinstance(item, ast.FunctionDef):
                    cls.methods[item.name] = FunctionInfo(
                        name=item.name,
                        node=item,
                        lineno=item.lineno,
                        is_method=True,
                        decorators=_decorator_names(item),
                    )
            _collect_attr_types(cls)
            end = stmt.end_lineno or stmt.lineno
            for lineno, decl in guard_decls:
                if stmt.lineno <= lineno <= end:
                    cls.guards.append(decl)
            info.classes[stmt.name] = cls
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets: List[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
                value = stmt.value
            else:
                targets = [stmt.target]
                value = stmt.value
            if value is None:
                continue
            try:
                literal = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    info.constants[target.id] = literal
    return info


class SymbolTable:
    """Project-wide symbol table keyed by dotted module name."""

    def __init__(self, contexts: Iterable[FileContext]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.contexts: Dict[str, FileContext] = {}
        for ctx in contexts:
            info = module_info_from_context(ctx)
            self.modules[ctx.module] = info
            self.contexts[ctx.module] = ctx

    def module(self, name: str) -> Optional[ModuleInfo]:
        """The :class:`ModuleInfo` for dotted module ``name``, if analyzed."""
        return self.modules.get(name)

    def resolve_function(
        self, module: str, name: str, _depth: int = 0
    ) -> Optional[Tuple[str, FunctionInfo]]:
        """Resolve ``name`` in ``module`` to its defining (module, function).

        Follows from-import re-export chains up to a small depth.
        """
        if _depth > 8:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return module, info.functions[name]
        if name in info.from_imports:
            source, orig = info.from_imports[name]
            return self.resolve_function(source, orig, _depth + 1)
        return None

    def resolve_class(
        self, module: str, name: str, _depth: int = 0
    ) -> Optional[Tuple[str, ClassInfo]]:
        """Resolve ``name`` in ``module`` to its defining (module, class)."""
        if _depth > 8:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.classes:
            return module, info.classes[name]
        if name in info.from_imports:
            source, orig = info.from_imports[name]
            return self.resolve_class(source, orig, _depth + 1)
        return None

    def find_class(self, name: str) -> Optional[Tuple[str, ClassInfo]]:
        """Find a class by bare name anywhere in the project (first match)."""
        for module in sorted(self.modules):
            info = self.modules[module]
            if name in info.classes:
                return module, info.classes[name]
        return None

    def constant(self, module: str, name: str) -> Optional[object]:
        """A module-level literal constant, following from-import re-exports."""
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.constants:
            return info.constants[name]
        if name in info.from_imports:
            source, orig = info.from_imports[name]
            if source != module:
                return self.constant(source, orig)
        return None

    def stats(self) -> Dict[str, int]:
        """Symbol counts (modules, classes, functions incl. methods)."""
        return {
            "modules": len(self.modules),
            "classes": sum(len(m.classes) for m in self.modules.values()),
            "functions": sum(
                len(m.functions) + sum(len(c.methods) for c in m.classes.values())
                for m in self.modules.values()
            ),
        }
