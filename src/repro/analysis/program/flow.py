"""Flow-sensitive lock tracking over method bodies.

Walks a function body in source order, maintaining the set of ``self.<lock>``
attributes currently held via ``with self._lock:`` statements.  Produces:

* every ``self.<field>`` read/write paired with the held-lock set at that
  point, and
* every ``self.m(...)`` call site paired with the held-lock set, so the lock
  pass can compute which methods are only ever invoked under a lock.

The analysis is intraprocedural and path-insensitive beyond ``with`` scoping:
branches of an ``if`` inherit the enclosing held set, and a lock acquired in
one branch is not assumed held after the branch.  ``try``/``finally`` is
treated like any other block.  Explicit ``.acquire()``/``.release()`` calls
are NOT modelled — use ``with`` (this is also what R12's confinement pushes
toward).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Tuple


@dataclass
class FieldAccess:
    """A ``self.<field>`` load or store, with the locks held at that point."""

    attr: str
    lineno: int
    col: int
    is_store: bool
    held: FrozenSet[str]


@dataclass
class SelfCall:
    """A ``self.m(...)`` call, with the locks held at that point."""

    method: str
    lineno: int
    held: FrozenSet[str]


@dataclass
class FlowResult:
    accesses: List[FieldAccess] = field(default_factory=list)
    self_calls: List[SelfCall] = field(default_factory=list)


def _with_locks(node: ast.With) -> List[str]:
    """Locks acquired by a ``with`` statement: ``with self.<name>:`` items."""
    locks: List[str] = []
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            locks.append(expr.attr)
    return locks


def _self_attr(node: ast.expr) -> Tuple[bool, str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return True, node.attr
    return False, ""


def _iter_store_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(stmt, ast.Assign):
        yield from stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        yield stmt.target


class _FlowWalker:
    def __init__(self) -> None:
        self.result = FlowResult()

    def walk_body(self, body: List[ast.stmt], held: FrozenSet[str]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: FrozenSet[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_expr(item.context_expr, held, is_store=False, skip_self_attr=True)
            inner = held | frozenset(_with_locks(stmt))
            self.walk_body(stmt.body, frozenset(inner))
            return
        # Record store targets before scanning the value expression.
        store_targets = list(_iter_store_targets(stmt))
        for target in store_targets:
            is_self, attr = _self_attr(target)
            if is_self:
                self.result.accesses.append(
                    FieldAccess(attr, target.lineno, target.col_offset, True, held)
                )
            else:
                self._scan_expr(target, held, is_store=True)
        # AugAssign both reads and writes the target.
        if isinstance(stmt, ast.AugAssign):
            is_self, attr = _self_attr(stmt.target)
            if is_self:
                self.result.accesses.append(
                    FieldAccess(attr, stmt.target.lineno, stmt.target.col_offset, False, held)
                )
        for child in ast.iter_child_nodes(stmt):
            if child in store_targets:
                continue
            if isinstance(child, ast.expr):
                self._scan_expr(child, held, is_store=False)
            elif isinstance(child, ast.stmt):
                self._walk_stmt(child, held)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._walk_stmt(sub, held)
                    elif isinstance(sub, ast.expr):
                        self._scan_expr(sub, held, is_store=False)

    def _scan_expr(
        self,
        expr: ast.expr,
        held: FrozenSet[str],
        is_store: bool,
        skip_self_attr: bool = False,
    ) -> None:
        if isinstance(expr, ast.Call):
            func = expr.func
            is_self, method = (False, "")
            if isinstance(func, ast.Attribute):
                is_self, method = _self_attr(func)
            if is_self:
                self.result.self_calls.append(SelfCall(method, expr.lineno, held))
            else:
                self._scan_expr(func, held, is_store=False)
            for arg in expr.args:
                self._scan_expr(arg, held, is_store=False)
            for kw in expr.keywords:
                if isinstance(kw.value, ast.expr):
                    self._scan_expr(kw.value, held, is_store=False)
            return
        is_self, attr = _self_attr(expr)
        if is_self and not skip_self_attr:
            self.result.accesses.append(
                FieldAccess(attr, expr.lineno, expr.col_offset, is_store, held)
            )
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held, is_store=False)
            elif isinstance(child, ast.comprehension):
                self._scan_expr(child.iter, held, is_store=False)
                for cond in child.ifs:
                    self._scan_expr(cond, held, is_store=False)


def analyze_method(node: ast.FunctionDef) -> FlowResult:
    """Run the lock-flow analysis over one method body."""
    walker = _FlowWalker()
    walker.walk_body(node.body, frozenset())
    return walker.result
