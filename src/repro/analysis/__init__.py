"""repro.analysis — AST-level invariant linter for the update protocol.

The paper's guarantees (Property 3 ancestor test, CRT-based SC order
decode) and the systems layers built on them (durability, resilience,
batching) are correct only while a handful of *update-protocol
disciplines* hold: labels change only through ``_set_label``, SC residue
state mutates only inside the SC layer, core layers never import service
layers, replayed paths stay deterministic, and so on.  This package
machine-checks those disciplines over plain Python ASTs — stdlib only,
no third-party dependencies:

* :mod:`repro.analysis.engine` — rule registry, file walker, inline
  ``# repro: ignore[RULE] -- justification`` suppressions,
* :mod:`repro.analysis.rules` — the per-file rules R1–R13,
* :mod:`repro.analysis.program` — the whole-program layer: project symbol
  table, approximate call graph, and the interprocedural passes R14–R17
  (lock discipline, publication escape, wire-protocol parity,
  WAL-before-apply ordering),
* :mod:`repro.analysis.baseline` — committed grandfather list with
  stale-entry expiry and rename-tolerant basename fallback,
* :mod:`repro.analysis.reporters` — text, JSON, and SARIF 2.1.0 output,
* :mod:`repro.analysis.cli` — the ``python -m repro lint`` verb.

The rule catalog with full rationale and the suppression policy live in
``docs/ANALYSIS.md``; CI runs the linter (plus the mypy strict gate) in
the ``lint-invariants`` job and fails on any new finding.
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.context import FileContext, Suppression, context_from_source
from repro.analysis.engine import (
    LintReport,
    ProgramRule,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.program import Program
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_stats,
    render_text,
)

__all__ = [
    "Baseline",
    "BaselineError",
    "FileContext",
    "Finding",
    "LintReport",
    "Program",
    "ProgramRule",
    "Rule",
    "Severity",
    "Suppression",
    "all_rules",
    "context_from_source",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_sarif",
    "render_stats",
    "render_text",
]
