"""repro.analysis — AST-level invariant linter for the update protocol.

The paper's guarantees (Property 3 ancestor test, CRT-based SC order
decode) and the systems layers built on them (durability, resilience,
batching) are correct only while a handful of *update-protocol
disciplines* hold: labels change only through ``_set_label``, SC residue
state mutates only inside the SC layer, core layers never import service
layers, replayed paths stay deterministic, and so on.  This package
machine-checks those disciplines over plain Python ASTs — stdlib only,
no third-party dependencies:

* :mod:`repro.analysis.engine` — rule registry, file walker, inline
  ``# repro: ignore[RULE] -- justification`` suppressions,
* :mod:`repro.analysis.rules` — the project rules R1–R11,
* :mod:`repro.analysis.baseline` — committed grandfather list with
  stale-entry expiry,
* :mod:`repro.analysis.reporters` — text, JSON, and SARIF 2.1.0 output,
* :mod:`repro.analysis.cli` — the ``python -m repro lint`` verb.

The rule catalog with full rationale and the suppression policy live in
``docs/ANALYSIS.md``; CI runs the linter (plus the mypy strict gate) in
the ``lint-invariants`` job and fails on any new finding.
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.context import FileContext, Suppression, context_from_source
from repro.analysis.engine import (
    LintReport,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = [
    "Baseline",
    "BaselineError",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "Suppression",
    "all_rules",
    "context_from_source",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
]
