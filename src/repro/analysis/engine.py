"""Rule engine: registry, file walker, suppression and baseline folding.

The pipeline per file is: parse → run every registered rule → fold in
inline suppressions (``# repro: ignore[RULE] -- reason``) → fold in the
committed baseline.  Only findings that survive both are *active* and
drive the non-zero exit code; suppressed and baselined findings stay in
the report so reporters can show the full picture.

Rules subclass :class:`Rule` and register with :func:`register`; they
see one :class:`~repro.analysis.context.FileContext` at a time and yield
``(line, column, message)`` triples via :meth:`Rule.emit` so location
bookkeeping stays in one place.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.analysis.baseline import Baseline
from repro.analysis.context import FileContext, context_from_file, context_from_source
from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:
    from repro.analysis.program import Program

__all__ = [
    "Rule",
    "ProgramRule",
    "register",
    "all_rules",
    "LintReport",
    "lint_contexts",
    "lint_paths",
    "lint_source",
    "iter_python_files",
]

#: Rule id for the meta-finding raised on a justification-less directive.
SUPPRESSION_RULE = "SUP"


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one file.  ``rationale`` feeds the rule
    catalog in the SARIF output and ``docs/ANALYSIS.md``.
    """

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    rationale: str = ""
    #: Program rules run once per lint with the whole-program view instead
    #: of once per file; see :class:`ProgramRule`.
    program: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError

    def emit(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """A finding of this rule at ``node``'s location in ``ctx``."""
        return Finding(
            rule=self.id,
            message=message,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            severity=self.severity,
        )


class ProgramRule(Rule):
    """Base class for whole-program (interprocedural) rules.

    Program rules run once per lint over a :class:`~repro.analysis.program.Program`
    built from every context in the run; their findings flow through the
    same suppression/baseline folding as per-file findings, keyed by the
    context each finding lands in.  ``check`` is a no-op so a program rule
    accidentally run per-file yields nothing rather than crashing.
    """

    program: bool = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_program(self, program: "Program") -> Iterator[Finding]:
        """Yield every violation of this rule across the program."""
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (by id) to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id (imports the rule modules)."""
    # Import for side effect: rule classes register themselves on import.
    from repro.analysis import rules as _rules  # noqa: F401
    from repro.analysis.program import passes as _passes  # noqa: F401

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)  # active
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)  # fingerprints
    files_checked: int = 0
    #: cumulative wall-clock seconds spent in each rule's check, by rule id.
    rule_timings: Dict[str, float] = field(default_factory=dict)
    #: pass-0 sizes (files/modules/classes/functions/call graph) when the
    #: whole-program passes ran; empty when they were skipped.
    program_stats: Dict[str, int] = field(default_factory=dict)
    #: non-fatal notices (baseline fallback matches, skipped passes, ...).
    warnings: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when no active finding remains, 1 otherwise."""
        return 1 if self.findings else 0

    def sort(self) -> None:
        """Order every bucket by location for stable output."""
        key = lambda f: (f.path, f.line, f.column, f.rule)  # noqa: E731
        self.findings.sort(key=key)
        self.suppressed.sort(key=key)
        self.baselined.sort(key=key)
        self.stale_baseline.sort()


def _fold_suppressions(
    ctx: FileContext, raw: Iterable[Finding], report: LintReport
) -> Iterator[Finding]:
    """Split raw findings into suppressed vs still-pending ones."""
    for finding in raw:
        directive = ctx.suppression_for(finding.rule, finding.line)
        if directive is None:
            yield finding
        elif directive.valid:
            report.suppressed.append(finding.suppress(directive.justification))
        else:
            # Directive present but naked: the finding stands, and the
            # directive itself is called out so it gets a justification.
            yield finding
            report.findings.append(
                Finding(
                    rule=SUPPRESSION_RULE,
                    message=(
                        "suppression directive is missing a '-- justification'; "
                        "explain why the finding is acceptable"
                    ),
                    path=ctx.rel,
                    line=directive.line,
                    severity=Severity.ERROR,
                )
            )


def lint_contexts(
    contexts: Sequence[FileContext],
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
    include_program: bool = True,
) -> LintReport:
    """Run rules over already-built contexts; fold suppressions/baseline.

    File rules run per context; program rules (``rule.program``) run once
    over a :class:`~repro.analysis.program.Program` built from every
    context, unless ``include_program`` is false (partial file sets make
    whole-program conclusions unsound, so ``--changed-only`` disables them).
    """
    report = LintReport(files_checked=len(contexts))
    chosen = list(rules) if rules is not None else all_rules()
    file_rules = [rule for rule in chosen if not rule.program]
    program_rules = [rule for rule in chosen if rule.program]
    pending: List[Finding] = []
    for ctx in contexts:
        raw: List[Finding] = []
        for rule in file_rules:
            started = time.perf_counter()
            raw.extend(rule.check(ctx))
            elapsed = time.perf_counter() - started
            report.rule_timings[rule.id] = (
                report.rule_timings.get(rule.id, 0.0) + elapsed
            )
        pending.extend(_fold_suppressions(ctx, raw, report))
    if program_rules and include_program and contexts:
        # Imported lazily: program construction pulls in the pass modules,
        # which import this engine for the ProgramRule base class.
        from repro.analysis.program import Program

        started = time.perf_counter()
        program = Program(contexts)
        report.program_stats = program.stats()
        report.rule_timings["pass0"] = time.perf_counter() - started
        by_rel = {ctx.rel: ctx for ctx in contexts}
        for rule in program_rules:
            started = time.perf_counter()
            raw = list(rule.check_program(program))
            report.rule_timings[rule.id] = time.perf_counter() - started
            grouped: Dict[str, List[Finding]] = {}
            for finding in raw:
                grouped.setdefault(finding.path, []).append(finding)
            for rel, batch in grouped.items():
                ctx = by_rel.get(rel)
                if ctx is None:
                    pending.extend(batch)
                else:
                    pending.extend(_fold_suppressions(ctx, batch, report))
    elif program_rules and not include_program:
        report.warnings.append(
            "whole-program passes (R14-R17) skipped: partial file set"
        )
    if baseline is not None:
        active, grandfathered, stale = baseline.split(
            pending, warnings=report.warnings
        )
        report.findings.extend(active)
        report.baselined.extend(grandfathered)
        report.stale_baseline.extend(stale)
    else:
        report.findings.extend(pending)
    report.sort()
    return report


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``*.py`` under ``root`` (a file yields itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def lint_paths(
    paths: Sequence[Path],
    repo_root: Path,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
    include_program: bool = True,
) -> LintReport:
    """Lint every python file under ``paths``.

    ``repo_root`` anchors the repo-relative paths findings are reported
    under (and therefore baseline fingerprints): pass the directory that
    contains ``src/``.
    """
    contexts = []
    for path in paths:
        for file_path in iter_python_files(Path(path)):
            contexts.append(context_from_file(file_path, repo_root))
    return lint_contexts(
        contexts, baseline=baseline, rules=rules, include_program=include_program
    )


def lint_source(
    source: str,
    rel: str,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint one in-memory snippet under a virtual repo-relative path.

    The workhorse of the rule-fixture tests: rules see exactly the same
    context they would for a real file at ``rel``.
    """
    return lint_contexts(
        [context_from_source(source, rel)], baseline=baseline, rules=rules
    )
