"""Render a :class:`~repro.analysis.engine.LintReport` as text/JSON/SARIF.

Every reporter is a pure function from report to string; printing (and
choosing a destination file) is the CLI's job, which keeps this module
compliant with the linter's own no-print rule (R9).

The SARIF output targets SARIF 2.1.0 with the subset GitHub code
scanning ingests: one run, a ``tool.driver`` carrying the rule catalog
(id, short/full description, default level), and one ``result`` per
finding.  Suppressed and baselined findings are emitted with SARIF's
native ``suppressions`` property instead of being dropped, so the
artifact is a complete record of the run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.engine import LintReport, Rule, all_rules
from repro.analysis.findings import Finding

__all__ = ["render_text", "render_json", "render_sarif", "render_stats"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-oriented rendering: one line per finding plus a summary."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    if verbose:
        for finding in report.suppressed:
            lines.append(f"{finding.render()} [suppressed: {finding.justification}]")
        for finding in report.baselined:
            lines.append(f"{finding.render()} [baselined]")
    for fingerprint in report.stale_baseline:
        lines.append(
            f"stale baseline entry (finding fixed — remove it): {fingerprint}"
        )
    for warning in report.warnings:
        lines.append(f"warning: {warning}")
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} "
        f"suppressed, {len(report.baselined)} baselined, "
        f"{len(report.stale_baseline)} stale baseline entr(ies) across "
        f"{report.files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-oriented JSON: full buckets plus a summary object."""
    payload: Dict[str, Any] = {
        "tool": TOOL_NAME,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
        "baselined": [finding.to_dict() for finding in report.baselined],
        "stale_baseline": list(report.stale_baseline),
        "warnings": list(report.warnings),
        "summary": {
            "files_checked": report.files_checked,
            "active": len(report.findings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "stale_baseline": len(report.stale_baseline),
            "exit_code": report.exit_code,
            "rule_timings": {
                rule: round(seconds, 6)
                for rule, seconds in sorted(report.rule_timings.items())
            },
            "program": dict(report.program_stats),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_stats(report: LintReport) -> str:
    """The ``--stats`` self-audit exhibit: sizes, runtimes, rule counts."""
    lines: List[str] = ["# lint run statistics", ""]
    if report.program_stats:
        lines.append("whole-program pass 0:")
        for key in sorted(report.program_stats):
            lines.append(f"  {key:<18} {report.program_stats[key]}")
    else:
        lines.append("whole-program pass 0: skipped")
    lines.append("")
    lines.append("rule runtimes (cumulative seconds):")
    for rule in sorted(report.rule_timings):
        lines.append(f"  {rule:<6} {report.rule_timings[rule]:.4f}")
    counts: Dict[str, List[int]] = {}
    for bucket_index, bucket in enumerate(
        (report.findings, report.suppressed, report.baselined)
    ):
        for finding in bucket:
            counts.setdefault(finding.rule, [0, 0, 0])[bucket_index] += 1
    lines.append("")
    lines.append("per-rule finding counts (active/suppressed/baselined):")
    if counts:
        for rule in sorted(counts):
            active, suppressed, baselined = counts[rule]
            lines.append(f"  {rule:<6} {active}/{suppressed}/{baselined}")
    else:
        lines.append("  (none)")
    return "\n".join(lines)


def _sarif_rules(rules: Sequence[Rule]) -> List[Dict[str, Any]]:
    catalog = [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": rule.severity.sarif_level()},
        }
        for rule in rules
    ]
    catalog.append(
        {
            "id": "SUP",
            "name": "SuppressionJustification",
            "shortDescription": {"text": "suppression without justification"},
            "fullDescription": {
                "text": "Every # repro: ignore[...] directive must carry a "
                "'-- justification' explaining why the finding is acceptable."
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    return catalog


def _sarif_result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": finding.severity.sarif_level(),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                }
            }
        ],
    }
    if finding.suppressed:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.justification or "",
            }
        ]
    elif finding.baselined:
        result["suppressions"] = [
            {"kind": "external", "justification": "committed baseline"}
        ]
    return result


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 rendering (rule catalog + every finding bucket)."""
    results = [
        _sarif_result(finding)
        for finding in (*report.findings, *report.suppressed, *report.baselined)
    ]
    sarif = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": _sarif_rules(all_rules()),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)
