"""The project-specific invariant rules R1–R13.

Each rule machine-checks one update-protocol discipline the paper's
guarantees rest on (Property 3 ancestor test, CRT-based SC ordering) or
one serving-layer discipline the durability/resilience subsystems rest
on.  The catalog with full rationale lives in ``docs/ANALYSIS.md``; the
``rationale`` strings here are the one-line versions surfaced by the
SARIF reporter.

All rules operate on plain :mod:`ast` trees via the shared
:class:`~repro.analysis.context.FileContext` — no third-party deps, no
imports of the modules under analysis.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import FileContext
from repro.analysis.engine import Rule, register
from repro.analysis.findings import Finding, Severity

__all__ = ["dotted_name"]

#: The four packages forming the paper-core layer (rule R3).
CORE_PACKAGES = ("primes", "labeling", "order", "xmlkit")


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute/name chains to ``"a.b.c"`` (else None).

    Calls inside the chain dissolve to their function's chain
    (``self.wal().append`` → ``self.wal.append``) so receiver matching
    sees through trivial accessor calls.
    """
    parts: List[str] = []
    cursor = node
    while True:
        if isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        elif isinstance(cursor, ast.Call):
            cursor = cursor.func
        elif isinstance(cursor, ast.Name):
            parts.append(cursor.id)
            break
        else:
            return None
    return ".".join(reversed(parts))


def _assign_targets(node: ast.AST) -> Iterator[ast.expr]:
    """Every assignment target expression under ``node`` (one statement)."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield target
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        yield node.target
    # Tuple targets unpack below via the caller walking Tuple elts.


def _flatten_targets(targets: Iterator[ast.expr]) -> Iterator[ast.expr]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(iter(target.elts))
        else:
            yield target


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class LabelWriteRule(Rule):
    """R1 — labels change only through ``LabelingScheme._set_label``."""

    id = "R1"
    title = "label writes outside the labeling layer"
    rationale = (
        "Property 3 (ancestor test by divisibility) holds only if every "
        "label write flows through _set_label, which also feeds the exact "
        "relabel tracking the batch pipeline depends on."
    )

    _ATTRS = {"label", "_label"}
    _MAPS = {"_labels", "_nodes"}
    _MUTATORS = {"pop", "clear", "update", "setdefault", "popitem"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_labeling = ctx.in_package("labeling")
        for node in ast.walk(ctx.tree):
            for target in _flatten_targets(_assign_targets(node)):
                # someone.label = ... / someone._label = ...
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in self._ATTRS
                    and not in_labeling
                ):
                    yield self.emit(
                        ctx,
                        target,
                        f"assignment to .{target.attr} outside repro.labeling; "
                        "labels may only change via LabelingScheme._set_label",
                    )
                # someone._labels[...] = ...
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr in self._MAPS
                    and ctx.module != "repro.labeling.base"
                ):
                    yield self.emit(
                        ctx,
                        target,
                        f"direct write into .{target.value.attr} outside "
                        "labeling/base.py; use _set_label/_drop_label",
                    )
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name is not None
                    and ctx.module != "repro.labeling.base"
                    and any(
                        f".{map_attr}.{mut}" in f".{name}"
                        for map_attr in self._MAPS
                        for mut in self._MUTATORS
                    )
                ):
                    yield self.emit(
                        ctx,
                        node,
                        f"mutating call {name}() bypasses _set_label/_drop_label",
                    )


@register
class ResidueMutationRule(Rule):
    """R2 — SC residue state mutates only inside primes/ and sc_table.py."""

    id = "R2"
    title = "CongruenceSystem internals touched outside the SC layer"
    rationale = (
        "The cached CRT value, the basis cache, and the residue map must "
        "move together; outside writers desynchronize them and break the "
        "paper's order decode (Theorem 1)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package("primes") or ctx.is_module("repro.order.sc_table"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "_congruences":
                yield self.emit(
                    ctx,
                    node,
                    "access to CongruenceSystem._congruences outside "
                    "repro.primes/* and repro.order.sc_table; use "
                    "append/set_residues/remove",
                )


@register
class LayeringRule(Rule):
    """R3 — core layers never import the service layers above them."""

    id = "R3"
    title = "core layer imports a service layer"
    severity = Severity.ERROR
    rationale = (
        "primes/labeling/order/xmlkit are the paper core; importing "
        "durable/resilient/bench/obs.audit from them inverts the "
        "dependency stack and re-creates the init-order cycles PR 2 "
        "fought.  Sole carve-out: repro.obs.metrics, the dependency-free "
        "instrumentation facade (R8 requires it)."
    )

    _BANNED_ROOTS = ("repro.durable", "repro.resilient", "repro.bench", "repro.obs")
    _ALLOWED = {"repro.obs.metrics"}

    def _banned(self, module: str) -> bool:
        if module in self._ALLOWED:
            return False
        return any(
            module == root or module.startswith(root + ".")
            for root in self._BANNED_ROOTS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*CORE_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._banned(alias.name):
                        yield self.emit(
                            ctx,
                            node,
                            f"core package {ctx.package!r} imports service "
                            f"module {alias.name}",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay within the package
                module = node.module
                names = {alias.name for alias in node.names}
                if module == "repro.obs" and names == {"metrics"}:
                    continue  # the sanctioned instrumentation facade
                offenders = []
                if self._banned(module):
                    offenders.append(module)
                else:
                    # `from repro import durable` smuggles the package in.
                    offenders.extend(
                        f"{module}.{name}"
                        for name in sorted(names)
                        if self._banned(f"{module}.{name}")
                        and f"{module}.{name}" not in self._ALLOWED
                    )
                for offender in offenders:
                    yield self.emit(
                        ctx,
                        node,
                        f"core package {ctx.package!r} imports service "
                        f"module {offender}",
                    )


@register
class DeterminismRule(Rule):
    """R4 — no ambient randomness or wall-clock reads in library code."""

    id = "R4"
    title = "ambient nondeterminism in library code"
    rationale = (
        "WAL replay and chaos soaks assert byte-identical recovery; that "
        "only holds when every random draw comes from an explicitly "
        "seeded random.Random and every clock is injected or monotonic."
    )

    _EXEMPT_PACKAGES = ("bench", "datasets")
    _BANNED_CALLS = {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package(*self._EXEMPT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    alias.name for alias in node.names if alias.name != "Random"
                )
                if bad:
                    yield self.emit(
                        ctx,
                        node,
                        f"importing ambient randomness from random: {bad}; "
                        "import Random and seed it explicitly",
                    )
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.startswith("random.") and name != "random.Random":
                yield self.emit(
                    ctx,
                    node,
                    f"{name}() draws from the ambient global RNG; construct "
                    "random.Random(seed) and pass it down",
                )
            elif name in self._BANNED_CALLS:
                yield self.emit(
                    ctx,
                    node,
                    f"{name}() reads the wall clock; inject a clock "
                    "parameter or use time.perf_counter for durations",
                )


@register
class SwallowedExceptionRule(Rule):
    """R5 — durable/resilient code never swallows broad exceptions."""

    id = "R5"
    title = "broad exception handler swallows silently"
    rationale = (
        "A swallowed error on the durability path turns a recoverable "
        "fault into silent data loss; handlers must re-raise, record a "
        "metric, or flag a report."
    )

    _SCOPES = ("durable", "resilient", "replica", "shard")
    _SIGNAL_CALLS = re.compile(
        r"(^|\.)(incr|gauge|timed|flag|warning|error|exception|critical)$"
    )

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        name = dotted_name(handler.type)
        return name in {"Exception", "BaseException"}

    def _signals(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and self._SIGNAL_CALLS.search(name):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*self._SCOPES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and self._is_broad(node):
                if not self._signals(node):
                    what = "bare except" if node.type is None else "except Exception"
                    yield self.emit(
                        ctx,
                        node,
                        f"{what} swallows without re-raise, metric, or "
                        "report.flag on a durability/resilience path",
                    )


@register
class WalAppendRule(Rule):
    """R6 — WAL appends happen only inside the durable write path."""

    id = "R6"
    title = "WAL append outside the checksummed write path"
    rationale = (
        "WriteAheadLog.append is the only encoder that checksums and "
        "fsync-policies records; append-family calls from other layers "
        "would bypass rollback/poisoning and break replay atomicity."
    )

    _ALLOWED = ("repro.durable.wal", "repro.durable.collection")
    _APPEND_METHODS = {"append", "write"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_module(*self._ALLOWED):
            return
        for node in _calls(ctx.tree):
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in self._APPEND_METHODS:
                continue
            receiver = dotted_name(node.func.value)
            if receiver is None:
                continue
            segments = receiver.split(".")
            if any(segment in {"wal", "_wal"} for segment in segments):
                yield self.emit(
                    ctx,
                    node,
                    f"{receiver}.{node.func.attr}() appends to the WAL from "
                    "outside repro.durable.{wal,collection}; route mutations "
                    "through DurableCollection",
                )


@register
class MutableDefaultRule(Rule):
    """R7 — no mutable default arguments."""

    id = "R7"
    title = "mutable default argument"
    rationale = (
        "A shared default list/dict/set aliases state across calls — the "
        "classic source of order-dependent, replay-divergent behaviour."
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "Counter", "defaultdict"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.emit(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the body",
                    )


@register
class MutationMetricRule(Rule):
    """R8 — public mutators in order/ and durable/ emit an obs metric."""

    id = "R8"
    title = "public mutator without an observability metric"
    rationale = (
        "docs/OBSERVABILITY.md promises every state transition in the "
        "order and durability layers is countable; a mutator that emits "
        "nothing is invisible to the audit trail and the benchmarks."
    )

    _SCOPES = ("order", "durable")
    _VERB = re.compile(
        r"^(insert|delete|remove|register|unregister|shift|set_|apply"
        r"|bulk_|checkpoint|compact|prune|reset|truncate|rollback|append)"
    )
    _EXEMPT_PREFIXES = ("from_", "_")

    def _delegates(self, node: ast.FunctionDef) -> bool:
        """Whether the body forwards to another mutation-verb method.

        Such a callee is itself subject to this rule wherever it is
        defined (``self.live.insert_child``, ``self.apply_batch_addressed``,
        ``wal.append`` ...), so the state transition is counted there and
        double-counting in the wrapper would skew the counters.
        """
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            if isinstance(sub.func, ast.Attribute) and self._VERB.match(sub.func.attr):
                return True
        return False

    def _emits_metric(self, node: ast.FunctionDef) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name and (
                    name.startswith("metrics.") or ".metrics." in f".{name}"
                ):
                    return True
        for decorator in node.decorator_list:
            name = dotted_name(decorator)
            if name and "metrics." in name:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*self._SCOPES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            name = node.name
            if name.startswith(self._EXEMPT_PREFIXES):
                continue
            if not self._VERB.match(name):
                continue
            if any(
                dotted_name(d) in {"property", "classmethod", "staticmethod"}
                for d in node.decorator_list
            ):
                continue
            if self._delegates(node) or self._emits_metric(node):
                continue
            yield self.emit(
                ctx,
                node,
                f"public mutator {name}() emits no repro.obs metric; add "
                "metrics.incr/timed or suppress with a justification",
            )


@register
class PrintRule(Rule):
    """R9 — no ``print()`` in library code."""

    id = "R9"
    title = "print() in library code"
    rationale = (
        "Library output must flow through return values, metrics, or "
        "raised errors; stray prints corrupt CLI/SARIF output streams "
        "and can't be captured by callers."
    )

    _EXEMPT_PACKAGES = ("bench",)
    _EXEMPT_MODULES = ("repro.cli", "repro.__main__")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package(*self._EXEMPT_PACKAGES) or ctx.is_module(
            *self._EXEMPT_MODULES
        ):
            return
        # The analysis reporters print through their own exempted writer
        # module; everything else in repro.analysis is library code too.
        if ctx.is_module("repro.analysis.cli"):
            return
        for node in _calls(ctx.tree):
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield self.emit(
                    ctx,
                    node,
                    "print() in library code; return data or raise, and let "
                    "the CLI layer do the printing",
                )


@register
class FsyncContainmentRule(Rule):
    """R10 — fsync/flush stay inside the WAL's policy layer."""

    id = "R10"
    title = "fsync/flush outside durable/wal.py"
    rationale = (
        "The fsync policy (always/batch:N/never) is enforced in exactly "
        "one place so the durability loss-window story stays provable; "
        "scattered fsyncs make the policy a lie.  Snapshot atomic-rename "
        "and test fault harnesses carry per-site justifications."
    )

    _ALLOWED = ("repro.durable.wal",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_module(*self._ALLOWED):
            return
        for node in _calls(ctx.tree):
            name = dotted_name(node.func)
            if name is None:
                continue
            if name == "os.fsync" or name.endswith(".fsync"):
                yield self.emit(
                    ctx,
                    node,
                    f"{name}() outside durable/wal.py's policy layer",
                )
            elif name.endswith(".flush") and not node.args and not node.keywords:
                yield self.emit(
                    ctx,
                    node,
                    f"{name}() outside durable/wal.py's policy layer",
                )


@register
class WindowMaintenanceRule(Rule):
    """R11 — window-index maintenance stays in the store/live layer."""

    id = "R11"
    title = "window-index maintenance outside the store/live layer"
    severity = Severity.ERROR
    rationale = (
        "The pre/post/level/size columns are trusted by the window "
        "strategy and the planner only because every mutation flows "
        "through LabelStore's row mutators (which keep rows, tag buckets, "
        "and the WindowIndex in lockstep) and LiveCollection's patch "
        "hooks; a bench or service module touching the maintenance API "
        "directly would desynchronize the columns from the tree."
    )

    #: Modules allowed to import the column machinery at all (readers of
    #: the entry types included: the engine binary-searches them).
    _IMPORT_SCOPE = "query"
    #: WindowIndex mutators — callable only where the index is owned.
    _INDEX_MUTATORS = {"apply_insert", "apply_delete"}
    _INDEX_CALLERS = ("repro.query.store", "repro.query.window")
    #: LabelStore row mutators — callable only from the live patch hooks
    #: (and the store itself).
    _STORE_MUTATORS = {"insert_row", "delete_subtree", "refresh_labels"}
    _STORE_CALLERS = ("repro.query.store", "repro.query.live")
    _STORE_SEGMENTS = {"store", "_store"}

    def _imports_window(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.query.window" or alias.name.startswith(
                    "repro.query.window."
                ):
                    return alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            if node.module == "repro.query.window":
                return node.module
            if node.module == "repro.query" and any(
                alias.name == "window" for alias in node.names
            ):
                return "repro.query.window"
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_query = ctx.in_package(self._IMPORT_SCOPE)
        for node in ast.walk(ctx.tree):
            if not in_query:
                offender = self._imports_window(node)
                if offender is not None:
                    yield self.emit(
                        ctx,
                        node,
                        f"import of {offender} outside repro.query; the "
                        "window columns are an internal accelerator "
                        "structure — query through QueryEngine instead",
                    )
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method in self._INDEX_MUTATORS and not ctx.is_module(
                *self._INDEX_CALLERS
            ):
                receiver = dotted_name(node.func.value) or "<expr>"
                yield self.emit(
                    ctx,
                    node,
                    f"{receiver}.{method}() mutates a WindowIndex outside "
                    "repro.query.store; route mutations through "
                    "LabelStore.insert_row/delete_subtree",
                )
            elif method in self._STORE_MUTATORS and not ctx.is_module(
                *self._STORE_CALLERS
            ):
                receiver = dotted_name(node.func.value)
                if receiver is None:
                    continue
                segments = receiver.split(".")
                if any(segment in self._STORE_SEGMENTS for segment in segments):
                    yield self.emit(
                        ctx,
                        node,
                        f"{receiver}.{method}() patches store rows outside "
                        "repro.query.{store,live}; mutate through "
                        "LiveCollection so columns stay consistent",
                    )


@register
class ThreadingContainmentRule(Rule):
    """R12 — threading primitives stay in the replication layer."""

    id = "R12"
    title = "threading primitives outside the replication layer"
    severity = Severity.ERROR
    rationale = (
        "The concurrency story is single-writer / many-readers over "
        "immutable published versions: repro.replica owns every thread "
        "(tailers, ship servers, reader pools) and repro.query.live owns "
        "the one publication lock.  A thread or lock anywhere else would "
        "create a second, unreviewed synchronization discipline — and the "
        "paper-core layers must stay deterministic and thread-free."
    )

    _ALLOWED_PACKAGES = ("replica",)
    _ALLOWED_MODULES = ("repro.query.live",)
    _BANNED_ROOTS = {"threading", "_thread", "concurrent"}

    def _offending(self, module: str) -> Optional[str]:
        root = module.split(".")[0]
        return module if root in self._BANNED_ROOTS else None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package(*self._ALLOWED_PACKAGES) or ctx.is_module(
            *self._ALLOWED_MODULES
        ):
            return
        for node in ast.walk(ctx.tree):
            offenders: List[str] = []
            if isinstance(node, ast.Import):
                offenders = [
                    alias.name
                    for alias in node.names
                    if self._offending(alias.name) is not None
                ]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                if self._offending(node.module) is not None:
                    offenders = [node.module]
            for offender in offenders:
                yield self.emit(
                    ctx,
                    node,
                    f"import of {offender} outside repro.replica / "
                    "repro.query.live; threads and locks are confined to "
                    "the replication layer (single-writer MVCC discipline)",
                )


@register
class ProcessContainmentRule(Rule):
    """R13 — process spawning stays in the sharding layer."""

    id = "R13"
    title = "process spawning outside the sharding layer"
    severity = Severity.ERROR
    rationale = (
        "repro.shard is the one fault-isolation boundary: its supervisor "
        "owns every child process, restart, and kill, so crash recovery "
        "and quarantine accounting stay provable.  A multiprocessing or "
        "subprocess import anywhere else would create worker lifetimes no "
        "supervisor tracks — orphans on crash, unbounded restarts, and a "
        "second unreviewed IPC discipline."
    )

    _ALLOWED_PACKAGES = ("shard",)
    _BANNED_ROOTS = {"multiprocessing", "subprocess"}
    _SPAWN_CALLS = {
        "os.fork",
        "os.forkpty",
        "os.system",
        "os.popen",
        "os.posix_spawn",
        "os.posix_spawnp",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package(*self._ALLOWED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            offenders: List[str] = []
            if isinstance(node, ast.Import):
                offenders = [
                    alias.name
                    for alias in node.names
                    if alias.name.split(".")[0] in self._BANNED_ROOTS
                ]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                if node.module.split(".")[0] in self._BANNED_ROOTS:
                    offenders = [node.module]
            for offender in offenders:
                yield self.emit(
                    ctx,
                    node,
                    f"import of {offender} outside repro.shard; worker "
                    "processes are spawned and supervised only by the "
                    "sharding layer (fault-isolation discipline)",
                )
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and (
                    name in self._SPAWN_CALLS
                    or name.startswith("os.spawn")
                    or name.startswith("os.exec")
                ):
                    yield self.emit(
                        ctx,
                        node,
                        f"{name}() spawns a process outside repro.shard; "
                        "route worker lifecycles through ShardSupervisor",
                    )
