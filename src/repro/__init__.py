"""repro — a reproduction of *A Prime Number Labeling Scheme for Dynamic
Ordered XML Trees* (Xiaodong Wu, Mong Li Lee, Wynne Hsu; ICDE 2004).

The package implements the paper's prime number labeling scheme with all
its optimizations, the Chinese-Remainder-Theorem SC table that maintains
global document order under updates, every baseline scheme the paper
compares against, and the full experimental harness behind the paper's
tables and figures.

Quickstart::

    from repro import parse_document, PrimeScheme, OrderedDocument

    root = parse_document("<book><title/><author/><author/></book>")
    scheme = PrimeScheme().label_tree(root)
    title, author1, _ = root.children
    assert scheme.is_ancestor(root, author1)

    document = OrderedDocument(parse_document("<a><b/><c/></a>"))
    report = document.insert_child(document.root, 1, tag="d")
    print(report.total_cost)  # nodes relabeled + SC records rewritten

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every exhibit.
"""

from repro.errors import (
    AuditError,
    CapacityError,
    DatasetError,
    DeadlineExceededError,
    DegradedModeError,
    LabelingError,
    LabelOverflowError,
    OrderingError,
    QueryEvaluationError,
    QuerySyntaxError,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
    XmlSyntaxError,
)
from repro.obs import metrics
from repro.obs.audit import AuditReport, audit_any
from repro.labeling import (
    BottomUpPrimeScheme,
    DeweyScheme,
    FixedWidthCodec,
    FloatIntervalScheme,
    LabelingScheme,
    Prefix1Scheme,
    Prefix2Scheme,
    PrimeLabel,
    PrimeScheme,
    RelabelReport,
    Relationship,
    StartEndIntervalScheme,
    VarintCodec,
    XissIntervalScheme,
)
from repro.order import OrderedAxes, OrderedDocument, OrderedUpdateReport, SCTable
from repro.query import (
    DataGuide,
    GuidedQueryEngine,
    LabelStore,
    LiveCollection,
    QueryEngine,
    TwigPattern,
    load_store,
    match_twig,
    nested_loop_join,
    parse_query,
    prime_merge_join,
    save_store,
    stack_tree_join,
    to_sql,
)
from repro.xmlkit import (
    XmlElement,
    element,
    parse_document,
    serialize,
    stream_labels,
    stream_prime_labels,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "XmlSyntaxError",
    "LabelingError",
    "CapacityError",
    "LabelOverflowError",
    "OrderingError",
    "QuerySyntaxError",
    "QueryEvaluationError",
    "DatasetError",
    "AuditError",
    "ResilienceError",
    "DegradedModeError",
    "DeadlineExceededError",
    "RetryExhaustedError",
    # observability
    "metrics",
    "AuditReport",
    "audit_any",
    # xml substrate
    "XmlElement",
    "element",
    "parse_document",
    "serialize",
    # labeling schemes
    "LabelingScheme",
    "RelabelReport",
    "Relationship",
    "PrimeScheme",
    "PrimeLabel",
    "BottomUpPrimeScheme",
    "XissIntervalScheme",
    "StartEndIntervalScheme",
    "FloatIntervalScheme",
    "Prefix1Scheme",
    "Prefix2Scheme",
    "DeweyScheme",
    # ordering
    "OrderedDocument",
    "OrderedUpdateReport",
    "OrderedAxes",
    "SCTable",
    # queries
    "LabelStore",
    "LiveCollection",
    "QueryEngine",
    "DataGuide",
    "GuidedQueryEngine",
    "TwigPattern",
    "match_twig",
    "nested_loop_join",
    "stack_tree_join",
    "prime_merge_join",
    "save_store",
    "load_store",
    "parse_query",
    "to_sql",
    # streaming
    "stream_labels",
    "stream_prime_labels",
    # codecs
    "FixedWidthCodec",
    "VarintCodec",
    "__version__",
]
