"""Primality testing via deterministic Miller–Rabin.

Labels in the prime number scheme grow multiplicatively with depth, so the
scheme sometimes needs to test or search around integers far beyond any
precomputed sieve.  The Miller–Rabin witnesses used here are a proven
deterministic set for every integer below 3.3 * 10^24, and a probabilistic
extension (with fixed extra witnesses) beyond — more than enough for label
self-values, which stay in the millions for realistic documents.
"""

from __future__ import annotations

__all__ = ["is_prime", "next_prime", "previous_prime"]

# Deterministic for n < 3,317,044,064,679,887,385,961,981 (Sorenson & Webster).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _miller_rabin_witness(n: int, witness: int) -> bool:
    """Return True if ``witness`` proves ``n`` composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(witness, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int) -> bool:
    """Return True iff ``n`` is prime.

    Deterministic for all inputs below ~3.3e24; beyond that the witness set
    still gives an error probability far below 4^-13.
    """
    if n < 2:
        return False
    for prime in _SMALL_PRIMES:
        if n == prime:
            return True
        if n % prime == 0:
            return False
    witnesses = _DETERMINISTIC_WITNESSES
    if n >= _DETERMINISTIC_LIMIT:
        witnesses = _DETERMINISTIC_WITNESSES + (43, 47, 53, 59)
    return not any(_miller_rabin_witness(n, w % n) for w in witnesses if w % n)


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    if n < 2:
        return 2
    candidate = n + 1
    if candidate % 2 == 0:
        if candidate == 2:
            return 2
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def previous_prime(n: int) -> int:
    """Return the largest prime strictly smaller than ``n``.

    Raises ``ValueError`` when no such prime exists (``n <= 2``).
    """
    if n <= 2:
        raise ValueError(f"no prime below {n}")
    if n == 3:
        return 2
    candidate = n - 1
    if candidate % 2 == 0:
        candidate -= 1
    while candidate > 2 and not is_prime(candidate):
        candidate -= 2
    return candidate if candidate > 1 else 2
