"""Incremental prime supply with a reserved pool for top-level nodes.

The paper's ``PrimeLabel`` algorithm (Figure 7) draws primes from two
sources:

* ``getReservedPrime()`` — a pool of the smallest primes set aside for the
  nodes directly below the root (optimization Opt1, Section 3.2), because
  those labels are inherited by every descendant and dominate label size;
* ``getPrime()`` — the next smallest unreserved prime, for every other
  non-leaf node.

:class:`PrimeGenerator` implements both, backed by a sieve that extends
itself on demand and by Miller–Rabin once candidates outgrow the sieve.  It
also provides ``get_power2(n)`` for optimization Opt2 (labeling the n-th leaf
child with ``2**n``).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.obs import metrics
from repro.primes.sieve import primes_first_n, segmented_sieve

__all__ = ["PrimeGenerator"]

_BOOTSTRAP_COUNT = 1024


class PrimeGenerator:
    """Hands out primes in ascending order, never repeating one.

    Parameters
    ----------
    reserved:
        How many of the smallest primes to set aside for
        :meth:`get_reserved_prime` (Opt1).  With ``reserved=0`` the reserved
        pool is disabled and :meth:`get_reserved_prime` falls through to
        :meth:`get_prime`.

    The generator is deterministic: two generators constructed with the same
    ``reserved`` hand out identical sequences.
    """

    def __init__(self, reserved: int = 0) -> None:
        if reserved < 0:
            raise ValueError(f"reserved must be >= 0, got {reserved}")
        self._cache: List[int] = primes_first_n(max(_BOOTSTRAP_COUNT, reserved))
        self._reserved_limit = reserved
        self._next_reserved_index = 0
        self._next_general_index = reserved
        self._issued = 0

    @property
    def reserved_remaining(self) -> int:
        """How many reserved primes are still available."""
        return self._reserved_limit - self._next_reserved_index

    @property
    def issued(self) -> int:
        """Total primes handed out so far (reserved + general)."""
        return self._issued

    @property
    def largest_issued(self) -> int:
        """The largest prime handed out so far (0 if none)."""
        largest = 0
        if self._next_reserved_index > 0:
            largest = self._cache[self._next_reserved_index - 1]
        if self._next_general_index > self._reserved_limit:
            largest = max(largest, self._cache[self._next_general_index - 1])
        return largest

    def _ensure_cached(self, index: int) -> None:
        # Extend in bulk with a segmented sieve: doubling the sieved range
        # keeps amortized cost near-linear even for very large documents.
        while index >= len(self._cache):
            low = self._cache[-1] + 1
            high = max(low * 2, low + 10_000)
            self._cache.extend(segmented_sieve(low, high))
            metrics.incr("primes.sieve_extensions")
            metrics.gauge("primes.cache_size", len(self._cache))

    def get_reserved_prime(self) -> int:
        """Return the next prime from the reserved pool (Opt1).

        Falls back to :meth:`get_prime` when the pool is exhausted or was
        never configured, matching the paper's intent that Opt1 is purely an
        optimization, never a correctness requirement.
        """
        if self._next_reserved_index >= self._reserved_limit:
            return self.get_prime()
        prime = self._cache[self._next_reserved_index]
        self._next_reserved_index += 1
        self._issued += 1
        metrics.incr("primes.issued")
        metrics.incr("primes.reserved_hits")
        return prime

    def get_prime(self) -> int:
        """Return the next smallest unreserved, unissued prime."""
        self._ensure_cached(self._next_general_index)
        prime = self._cache[self._next_general_index]
        self._next_general_index += 1
        self._issued += 1
        metrics.incr("primes.issued")
        return prime

    # ------------------------------------------------------------------
    # State capture (durability snapshots)
    # ------------------------------------------------------------------

    def state(self) -> Tuple[int, int, int, int]:
        """The generator's issuance position as a plain tuple.

        ``(reserved_limit, next_reserved_index, next_general_index, issued)``
        — everything :meth:`from_state` needs to resume the exact prime
        sequence.  The cache itself is *not* part of the state: it is a pure
        function of the indices and is regrown on demand.
        """
        return (
            self._reserved_limit,
            self._next_reserved_index,
            self._next_general_index,
            self._issued,
        )

    @classmethod
    def from_state(cls, state: Tuple[int, int, int, int]) -> "PrimeGenerator":
        """Rebuild a generator that continues exactly where ``state`` left off.

        Because issuance is deterministic, the restored generator hands out
        the same primes the original would have — the property crash
        recovery relies on to replay updates byte-identically.
        """
        reserved_limit, next_reserved, next_general, issued = state
        if not 0 <= next_reserved <= reserved_limit <= next_general:
            raise ValueError(f"inconsistent generator state {state}")
        generator = cls(reserved=reserved_limit)
        generator._next_reserved_index = next_reserved
        generator._next_general_index = next_general
        generator._issued = issued
        generator._ensure_cached(next_general)
        return generator

    @staticmethod
    def get_power2(n: int) -> int:
        """Return ``2**n``, the Opt2 label for the n-th leaf child (n >= 1)."""
        if n < 1:
            raise ValueError(f"leaf ordinal must be >= 1, got {n}")
        return 1 << n

    def iter_primes(self) -> Iterator[int]:
        """Yield primes from :meth:`get_prime` forever (general pool only)."""
        while True:
            yield self.get_prime()
