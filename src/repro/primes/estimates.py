"""Prime Number Theorem estimates used in the paper's size analysis.

Section 3.1 of the paper estimates the n-th prime as ``n * log2(n)`` (the
paper consistently uses base-2 logarithms, footnote 1) and the bit length of
the n-th prime as ``log2(n * log2(n))``.  Figure 3 compares that estimate
against the true bit lengths of the first 10,000 primes; the benchmark
``benchmarks/test_fig03_prime_estimate.py`` regenerates exactly that series.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.primes.sieve import primes_first_n

__all__ = [
    "estimated_nth_prime",
    "estimated_bit_length",
    "prime_count_estimate",
    "figure3_series",
]


def estimated_nth_prime(n: int) -> float:
    """The paper's estimate of the n-th prime: ``n * log2(n)`` (n >= 1).

    For n = 1 the logarithm vanishes; we clamp to 2, the first prime.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 2.0
    return n * math.log2(n)


def estimated_bit_length(n: int) -> float:
    """Estimated bit length of the n-th prime: ``log2(n * log2(n))``."""
    return math.log2(estimated_nth_prime(n))


def prime_count_estimate(x: float) -> float:
    """The paper's estimate of pi(x): ``x / log2(x)`` primes below ``x``."""
    if x < 2:
        return 0.0
    return x / math.log2(x)


def figure3_series(count: int = 10_000) -> List[Tuple[int, int, float]]:
    """Return ``(n, actual_bits, estimated_bits)`` for the first ``count`` primes.

    This is the raw data behind Figure 3 of the paper.
    """
    rows = []
    for index, prime in enumerate(primes_first_n(count), start=1):
        rows.append((index, prime.bit_length(), estimated_bit_length(index)))
    return rows
