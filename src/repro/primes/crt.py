"""Chinese Remainder Theorem solvers.

The paper (Theorem 1, Section 4) stores the document order of a group of
nodes as a single *simultaneous congruence* value ``x`` with
``x mod self_label(v) == order(v)`` for every node ``v`` in the group.  The
self-labels are distinct primes, so they are pairwise coprime and the CRT
guarantees a unique solution modulo their product.

Two solvers are provided:

* :func:`solve_congruences` — incremental pairwise merging (the default,
  fastest in pure Python and tolerant of non-prime but coprime moduli), and
* :func:`solve_congruences_euler` — the Euler-totient formula quoted verbatim
  in the paper, ``x = sum((C/m_i) ** phi(m_i) * n_i) mod C``.  It is
  exponentially slower and exists to validate the paper's formula; both
  agree on all inputs (see the property tests).

:class:`CongruenceSystem` wraps a solved system and supports the paper's
update operations: appending a new congruence, rewriting residues, and
dropping a congruence — each maintained *incrementally* against the cached
value (delta-merge for rewrites, ``value % reduced_product`` for drops), so
no update re-solves unrelated congruences from scratch.  For bulk
mutations, :meth:`CongruenceSystem.begin_deferred` switches the system into
a mode where mutations only touch the residue map and the single CRT solve
is paid lazily after :meth:`CongruenceSystem.end_deferred` — one solve per
system per batch, however many members changed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.primes.euclid import extended_gcd, gcd, modular_inverse
from repro.primes.totient import totient

__all__ = ["solve_congruences", "solve_congruences_euler", "CongruenceSystem"]


def _merge(
    residue_a: int, modulus_a: int, residue_b: int, modulus_b: int
) -> Tuple[int, int]:
    """Merge two congruences into one; moduli need not be coprime.

    Returns ``(residue, lcm)`` satisfying both, or raises ``ValueError`` when
    the congruences conflict.
    """
    g, p, _ = extended_gcd(modulus_a, modulus_b)
    if (residue_b - residue_a) % g != 0:
        raise ValueError(
            f"incompatible congruences: x={residue_a} (mod {modulus_a}) "
            f"and x={residue_b} (mod {modulus_b})"
        )
    lcm = modulus_a // g * modulus_b
    step = (residue_b - residue_a) // g * p % (modulus_b // g)
    residue = (residue_a + modulus_a * step) % lcm
    return residue, lcm


def solve_congruences(moduli: Sequence[int], residues: Sequence[int]) -> int:
    """Return the unique ``x`` in ``[0, prod(moduli))`` with
    ``x mod moduli[i] == residues[i]`` for every ``i``.

    Moduli must be positive and pairwise compatible (coprime moduli always
    are).  An empty system has solution 0.
    """
    if len(moduli) != len(residues):
        raise ValueError(
            f"length mismatch: {len(moduli)} moduli vs {len(residues)} residues"
        )
    solution, combined = 0, 1
    for modulus, residue in zip(moduli, residues):
        if modulus <= 0:
            raise ValueError(f"moduli must be positive, got {modulus}")
        solution, combined = _merge(solution, combined, residue % modulus, modulus)
    return solution


def solve_congruences_euler(moduli: Sequence[int], residues: Sequence[int]) -> int:
    """The paper's Euler-quotient CRT formula (Section 4).

    ``x = sum_i (C/m_i)^phi(m_i) * n_i  mod C`` with ``C = prod(m_i)``.
    Requires pairwise-coprime moduli.  Quadratic-ish and only suitable for
    small systems; use :func:`solve_congruences` in production paths.
    """
    if len(moduli) != len(residues):
        raise ValueError(
            f"length mismatch: {len(moduli)} moduli vs {len(residues)} residues"
        )
    if not moduli:
        return 0
    for i, a in enumerate(moduli):
        if a <= 0:
            raise ValueError(f"moduli must be positive, got {a}")
        for b in moduli[i + 1 :]:
            if gcd(a, b) != 1:
                raise ValueError(f"moduli {a} and {b} are not coprime")
    product = 1
    for modulus in moduli:
        product *= modulus
    total = 0
    for modulus, residue in zip(moduli, residues):
        cofactor = product // modulus
        # (C/m_i)^phi(m_i) mod m_i == 1 by Euler's theorem, so the term
        # contributes residue_i modulo m_i and 0 modulo every other m_j.
        total += pow(cofactor, totient(modulus), product) * residue
    return total % product


class CongruenceSystem:
    """A live system of congruences ``x mod m_i == n_i`` with updates.

    This is the algebraic core of the paper's SC table row: the moduli are
    node self-labels (distinct primes) and the residues are document-order
    numbers.  The class keeps the solved value cached and supports:

    * :meth:`append` — add a congruence for a newly inserted node,
    * :meth:`set_residues` — rewrite several residues at once (the "+1 shift"
      applied to nodes after an insertion point), and
    * :meth:`remove` — drop a congruence (node deletion; the paper notes
      deletions never disturb order, but dropping keeps the value small).

    All three maintain the cached value incrementally (no from-scratch
    re-solve); between :meth:`begin_deferred` and :meth:`end_deferred` they
    skip even that and only update the residue map, leaving one lazy solve
    for the whole run of mutations.
    """

    def __init__(
        self, moduli: Iterable[int] = (), residues: Iterable[int] = ()
    ) -> None:
        self._congruences: Dict[int, int] = {}
        for modulus, residue in zip(list(moduli), list(residues)):
            self._check_new_modulus(modulus)
            self._congruences[modulus] = residue % modulus
        self._value: int | None = None
        self._deferred = False

    def _check_new_modulus(self, modulus: int) -> None:
        if modulus <= 1:
            raise ValueError(f"modulus must be > 1, got {modulus}")
        if modulus in self._congruences:
            raise ValueError(f"duplicate modulus {modulus}")
        for existing in self._congruences:
            if gcd(existing, modulus) != 1:
                raise ValueError(f"modulus {modulus} not coprime with {existing}")

    def __len__(self) -> int:
        return len(self._congruences)

    def __contains__(self, modulus: int) -> bool:
        return modulus in self._congruences

    @property
    def moduli(self) -> Tuple[int, ...]:
        return tuple(self._congruences)

    @property
    def product(self) -> int:
        result = 1
        for modulus in self._congruences:
            result *= modulus
        return result

    @property
    def value(self) -> int:
        """The solved simultaneous-congruence value (0 for an empty system)."""
        if self._value is None:
            self._value = solve_congruences(
                list(self._congruences), list(self._congruences.values())
            )
        return self._value

    def residue(self, modulus: int) -> int:
        """Return the residue stored for ``modulus``."""
        try:
            return self._congruences[modulus]
        except KeyError:
            raise KeyError(f"no congruence with modulus {modulus}") from None

    @property
    def deferred(self) -> bool:
        """Whether value maintenance is currently deferred (batch mode)."""
        return self._deferred

    def begin_deferred(self) -> None:
        """Enter batch mode: mutations update residues only, no CRT work.

        While deferred, :meth:`append`, :meth:`set_residues`, and
        :meth:`remove` drop the cached value instead of maintaining it, so
        an arbitrary run of mutations costs small-integer dictionary work.
        Reading :attr:`value` mid-batch still works (it lazily solves and
        the next mutation re-invalidates); the point of the mode is that
        callers who *don't* read mid-batch pay exactly one solve at the end.
        """
        self._deferred = True

    def end_deferred(self) -> None:
        """Leave batch mode; the next :attr:`value` read solves once."""
        self._deferred = False

    def append(self, modulus: int, residue: int) -> None:
        """Add ``x mod modulus == residue``.

        Incremental: merges into the cached value instead of re-solving,
        which is exactly the low-cost update the paper advertises.
        """
        self._check_new_modulus(modulus)
        residue %= modulus
        if self._deferred:
            self._value = None
        elif self._value is not None:
            self._value, _ = _merge(self._value, self.product, residue, modulus)
        self._congruences[modulus] = residue

    def set_residues(self, updates: Mapping[int, int]) -> None:
        """Rewrite residues for existing moduli, incrementally.

        With a cached value ``x`` and product ``P``, each rewrite of modulus
        ``m`` from ``r_old`` to ``r_new`` adds ``(r_new - r_old) * c_m`` to
        ``x`` modulo ``P``, where ``c_m = (P/m) * ((P/m)^-1 mod m)`` is the
        canonical CRT basis element (``c_m == 1 mod m`` and ``0`` modulo
        every other member).  That is O(group) integer work per call instead
        of the from-scratch re-solve this method used to trigger — the fix
        for delete/shift being O(group^2) under churn.  :meth:`check`
        remains the oracle that the shortcut agrees with a full solve.
        """
        for modulus in updates:
            if modulus not in self._congruences:
                raise KeyError(f"no congruence with modulus {modulus}")
        if self._deferred or self._value is None:
            for modulus, residue in updates.items():
                self._congruences[modulus] = residue % modulus
            self._value = None
            return
        product = self.product
        delta = 0
        for modulus, residue in updates.items():
            residue %= modulus
            old = self._congruences[modulus]
            if residue != old:
                cofactor = product // modulus
                basis = cofactor * modular_inverse(cofactor % modulus, modulus)
                delta += (residue - old) * basis
                self._congruences[modulus] = residue
        self._value = (self._value + delta) % product

    def remove(self, modulus: int) -> None:
        """Drop the congruence for ``modulus`` in O(1) CRT work.

        Every remaining modulus divides the reduced product ``P' = P/m``,
        so ``value % P'`` still satisfies every remaining congruence and is
        the unique solution in ``[0, P')`` — no re-solve needed.
        """
        if modulus not in self._congruences:
            raise KeyError(f"no congruence with modulus {modulus}")
        del self._congruences[modulus]
        if self._deferred:
            self._value = None
        elif self._value is not None:
            self._value %= self.product

    def check(self) -> bool:
        """Verify ``value mod m == n`` for every stored congruence."""
        solved = self.value
        return all(
            solved % modulus == residue
            for modulus, residue in self._congruences.items()
        )
