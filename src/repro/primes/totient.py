"""Euler's totient function.

Used only by the paper's Euler-quotient CRT formula
(:func:`repro.primes.crt.solve_congruences_euler`); the production CRT path
uses the extended Euclidean algorithm instead.
"""

from __future__ import annotations

__all__ = ["totient"]


def totient(n: int) -> int:
    """Return ``phi(n)``: how many integers in ``[1, n]`` are coprime to ``n``.

    Computed by trial-division factorization, fine for the label-sized inputs
    this library deals with.
    """
    if n <= 0:
        raise ValueError(f"totient is defined for positive integers, got {n}")
    result = n
    remaining = n
    factor = 2
    while factor * factor <= remaining:
        if remaining % factor == 0:
            while remaining % factor == 0:
                remaining //= factor
            result -= result // factor
        factor += 1 if factor == 2 else 2
    if remaining > 1:
        result -= result // remaining
    return result
