"""Number-theory substrate for the prime number labeling scheme.

The paper relies on four number-theoretic building blocks:

* a supply of prime numbers (:mod:`repro.primes.sieve`,
  :mod:`repro.primes.gen`),
* primality testing for numbers beyond any precomputed sieve
  (:mod:`repro.primes.primality`),
* the extended Euclidean algorithm / modular inverses
  (:mod:`repro.primes.euclid`), and
* the Chinese Remainder Theorem used to build SC values
  (:mod:`repro.primes.crt`).

:mod:`repro.primes.estimates` implements the Prime Number Theorem
approximations used in the paper's size analysis (Section 3.1, Figure 3),
and :mod:`repro.primes.totient` implements Euler's totient function used by
the paper's Euler-quotient CRT formula.
"""

from repro.primes.crt import CongruenceSystem, solve_congruences
from repro.primes.euclid import extended_gcd, gcd, modular_inverse
from repro.primes.estimates import (
    estimated_bit_length,
    estimated_nth_prime,
    prime_count_estimate,
)
from repro.primes.gen import PrimeGenerator
from repro.primes.primality import is_prime, next_prime
from repro.primes.sieve import nth_prime, primes_below, primes_first_n, sieve_of_eratosthenes
from repro.primes.totient import totient

__all__ = [
    "CongruenceSystem",
    "solve_congruences",
    "extended_gcd",
    "gcd",
    "modular_inverse",
    "estimated_bit_length",
    "estimated_nth_prime",
    "prime_count_estimate",
    "PrimeGenerator",
    "is_prime",
    "next_prime",
    "nth_prime",
    "primes_below",
    "primes_first_n",
    "sieve_of_eratosthenes",
    "totient",
]
