"""Euclidean algorithms: gcd, extended gcd, and modular inverses.

The extended Euclidean algorithm is the workhorse behind the Chinese
Remainder Theorem solver in :mod:`repro.primes.crt`, which in turn powers the
paper's SC (simultaneous congruence) table.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["gcd", "extended_gcd", "modular_inverse", "lcm"]


def gcd(a: int, b: int) -> int:
    """Greatest common divisor of ``a`` and ``b`` (always non-negative)."""
    a, b = abs(a), abs(b)
    while b:
        a, b = b, a % b
    return a


def lcm(a: int, b: int) -> int:
    """Least common multiple of ``a`` and ``b`` (non-negative)."""
    if a == 0 or b == 0:
        return 0
    return abs(a // gcd(a, b) * b)


def extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
        old_y, y = y, old_y - quotient * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def modular_inverse(a: int, modulus: int) -> int:
    """Return ``x`` in ``[0, modulus)`` with ``a*x = 1 (mod modulus)``.

    Raises ``ValueError`` when ``a`` is not invertible (gcd != 1).
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    g, x, _ = extended_gcd(a % modulus, modulus)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {modulus} (gcd={g})")
    return x % modulus
