"""Sieve of Eratosthenes and friends.

These functions produce the bulk prime supplies used when labeling whole
documents at once.  For incremental label assignment (dynamic inserts) see
:class:`repro.primes.gen.PrimeGenerator`, and for testing arbitrary integers
see :mod:`repro.primes.primality`.
"""

from __future__ import annotations

import math
from typing import Iterator, List

__all__ = [
    "sieve_of_eratosthenes",
    "primes_below",
    "primes_first_n",
    "nth_prime",
    "segmented_sieve",
]


def sieve_of_eratosthenes(limit: int) -> List[bool]:
    """Return a boolean table ``t`` where ``t[i]`` is True iff ``i`` is prime.

    The table has ``limit + 1`` entries (indices ``0..limit``).  ``limit`` may
    be 0 or negative, in which case a table marking nothing prime is returned.
    """
    if limit < 1:
        return [False] * (max(limit, 0) + 1)
    table = [True] * (limit + 1)
    table[0] = False
    if limit >= 1:
        table[1] = False
    for candidate in range(2, math.isqrt(limit) + 1):
        if table[candidate]:
            start = candidate * candidate
            table[start : limit + 1 : candidate] = [False] * len(
                range(start, limit + 1, candidate)
            )
    return table


def primes_below(limit: int) -> List[int]:
    """Return all primes strictly less than ``limit``, ascending."""
    if limit <= 2:
        return []
    table = sieve_of_eratosthenes(limit - 1)
    return [value for value, flag in enumerate(table) if flag]


def _upper_bound_for_nth_prime(n: int) -> int:
    """A proven upper bound on the n-th prime (1-indexed).

    For ``n >= 6`` the bound ``n * (ln n + ln ln n)`` holds (Rosser).  Smaller
    ``n`` use a fixed constant.
    """
    if n < 6:
        return 13
    logn = math.log(n)
    return int(n * (logn + math.log(logn))) + 1


def primes_first_n(n: int) -> List[int]:
    """Return the first ``n`` primes (so ``primes_first_n(3) == [2, 3, 5]``)."""
    if n <= 0:
        return []
    limit = _upper_bound_for_nth_prime(n)
    primes = primes_below(limit + 1)
    while len(primes) < n:  # bound is proven, but stay safe
        limit *= 2
        primes = primes_below(limit + 1)
    return primes[:n]


def nth_prime(n: int) -> int:
    """Return the ``n``-th prime, 1-indexed: ``nth_prime(1) == 2``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return primes_first_n(n)[-1]


def segmented_sieve(low: int, high: int) -> Iterator[int]:
    """Yield primes in ``[low, high)`` without sieving everything below.

    Memory use is ``O(sqrt(high) + (high - low))`` instead of ``O(high)``,
    which matters when generating labels for very large documents whose next
    free prime sits far from zero.
    """
    if high <= 2 or high <= low:
        return
    low = max(low, 2)
    base = primes_below(math.isqrt(high - 1) + 1)
    # Composites are struck out with bytearray slice assignment — the same
    # bulk-write trick sieve_of_eratosthenes uses — instead of a Python-level
    # loop over every multiple, which dominated generator refills on large
    # documents (each strided store runs in C).
    span = bytearray(b"\x01") * (high - low)
    for prime in base:
        start = max(prime * prime, ((low + prime - 1) // prime) * prime)
        if start >= high:
            continue
        span[start - low :: prime] = bytes(len(range(start, high, prime)))
    for offset, flag in enumerate(span):
        if flag:
            yield low + offset
