"""Exception hierarchy for the ``repro`` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subpackages define more specific subclasses
here rather than in their own modules to avoid circular imports.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "XmlSyntaxError",
    "LabelingError",
    "CapacityError",
    "LabelOverflowError",
    "OrderingError",
    "AuditError",
    "QuerySyntaxError",
    "QueryEvaluationError",
    "DatasetError",
    "DurabilityError",
    "WalCorruptError",
    "SnapshotCorruptError",
    "RecoveryError",
    "ReplicationError",
    "ShardError",
    "ShardUnavailableError",
    "ResilienceError",
    "DegradedModeError",
    "DeadlineExceededError",
    "RetryExhaustedError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class XmlSyntaxError(ReproError):
    """Raised by the XML tokenizer/parser on malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending character
    when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class LabelingError(ReproError):
    """Raised when a labeling scheme is misused (e.g. unlabeled node)."""


class OrderingError(ReproError):
    """Raised on inconsistent use of the SC (simultaneous congruence) table."""


class CapacityError(OrderingError, LabelingError):
    """A labeling or ordering structure ran out of room.

    This is the scheme's known weakness versus compact ancestry labels:
    under skewed insertion an order number can catch up with its prime
    self-label (a CRT residue must stay below its modulus), and bounded
    label encodings can exhaust their width.  The error carries enough
    context to act on:

    * ``document`` — collection index of the affected document (``None``
      when the structure is used standalone),
    * ``group`` — index of the affected SC group/record, when one exists,
    * ``hint`` — the recovery action an operator (or the resilient
      serving layer) should take, e.g. ``compact()`` or relabel.

    Subclasses both :class:`OrderingError` and :class:`LabelingError`
    because capacity can be exhausted on either side of the scheme, and
    existing handlers for either hierarchy must keep working.
    """

    def __init__(
        self,
        message: str,
        document: int | None = None,
        group: int | None = None,
        hint: str | None = None,
    ):
        detail = message
        if hint:
            detail += f" (recovery hint: {hint})"
        super().__init__(detail)
        self.document = document
        self.group = group
        self.hint = hint


class LabelOverflowError(CapacityError):
    """Raised when a scheme with a bounded label width runs out of room.

    Only the float-interval scheme (QRS) has an intrinsic bound; integer
    schemes use Python's arbitrary-precision ints and never overflow.
    A :class:`CapacityError`, so the resilient layer classifies it into
    the capacity-exhaustion fault domain.
    """


class AuditError(ReproError):
    """Raised by :meth:`repro.obs.audit.AuditReport.raise_if_failed`.

    The message carries the full audit summary: every violated invariant,
    its subject, and the counts of checks that did pass.
    """


class QuerySyntaxError(ReproError):
    """Raised by the XPath-subset parser on malformed query text."""


class QueryEvaluationError(ReproError):
    """Raised by the query engine on unevaluable queries."""


class DatasetError(ReproError):
    """Raised by dataset generators on invalid parameters."""


class DurabilityError(ReproError):
    """Base class for the write-ahead-log / snapshot / recovery subsystem."""


class WalCorruptError(DurabilityError):
    """Raised when a write-ahead log's header or interior records are
    corrupt beyond the repairable torn tail (a torn tail is *not* an
    error — it is truncated silently on open, per the recovery protocol)."""


class SnapshotCorruptError(DurabilityError):
    """Raised when a snapshot file fails its CRC32 footer, is truncated,
    or cannot be decoded.  Recovery reacts by falling back to the previous
    snapshot generation instead of loading bad state."""


class RecoveryError(DurabilityError):
    """Raised when no snapshot generation yields a valid, audit-clean
    collection — durable state is unrecoverable without operator help."""


class ReplicationError(DurabilityError):
    """The replication stream or a replica's state is unusable.

    Raised by :mod:`repro.replica` when the shipped WAL stream carries a
    sequence gap (the primary pruned past the replica's position), when
    mid-stream bytes fail validation with trustworthy bytes after them
    (real corruption, not a torn tail), or when a replica cannot
    re-bootstrap.  A :class:`DurabilityError` subclass so existing
    durability handlers still catch it; the CLI maps it to its own exit
    code (5) ahead of the generic durability code (4).
    """


class ShardError(ReproError):
    """Base class for the sharded serving layer (:mod:`repro.shard`).

    Raised for shard-service misuse (bad manifest, unknown shard, router
    protocol violations).  Deliberately *not* a :class:`DurabilityError`:
    a shard-layer failure says nothing about the per-shard durable state,
    which each worker recovers independently.  The CLI maps it to its own
    exit code (6), ahead of the generic :class:`ReproError` code (1).
    """


class ShardUnavailableError(ShardError):
    """An operation routed to a shard that cannot serve it right now.

    Mirrors :class:`CapacityError`'s context-rich contract: the message
    alone tells an operator which shard failed, why, and what the
    supervisor's restart budget looked like when the request was refused.

    * ``shard`` — the shard id the document hashed to,
    * ``state`` — the shard's supervision state (``down`` / ``quarantined``),
    * ``restarts`` — restarts the supervisor has already spent on it,
    * ``budget`` — the total restart budget before quarantine,
    * ``hint`` — the recovery action an operator should take.
    """

    def __init__(
        self,
        message: str,
        shard: int | None = None,
        state: str | None = None,
        restarts: int | None = None,
        budget: int | None = None,
        hint: str | None = None,
    ):
        detail = message
        if shard is not None:
            detail += f" [shard {shard}"
            if state:
                detail += f" {state}"
            if restarts is not None and budget is not None:
                detail += f", restart budget {restarts}/{budget} spent"
            detail += "]"
        if hint:
            detail += f" (recovery hint: {hint})"
        super().__init__(detail)
        self.shard = shard
        self.state = state
        self.restarts = restarts
        self.budget = budget
        self.hint = hint


class ResilienceError(ReproError):
    """Base class for the resilient serving layer (:mod:`repro.resilient`)."""


class DegradedModeError(ResilienceError):
    """A mutation was rejected because the collection is serving degraded.

    Raised by :class:`repro.resilient.ResilientCollection` in
    ``fail_fast`` degraded policy after the circuit breaker has tripped:
    queries keep answering from the in-memory store, but mutations are
    refused until a half-open probe re-establishes the storage path.
    """


class DeadlineExceededError(ResilienceError):
    """An operation (including its retries) overran its time budget.

    Slow storage counts as failed storage for a serving system; the
    per-operation deadline turns an indefinitely hanging write into a
    typed, retriable-by-the-caller error.
    """


class RetryExhaustedError(ResilienceError):
    """Transient-fault retries ran out without a success.

    The final underlying fault is chained as ``__cause__``; the breaker
    has already recorded every attempt, so repeated exhaustion trips the
    durable path into degraded mode.
    """
