"""Exception hierarchy for the ``repro`` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subpackages define more specific subclasses
here rather than in their own modules to avoid circular imports.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "XmlSyntaxError",
    "LabelingError",
    "LabelOverflowError",
    "OrderingError",
    "AuditError",
    "QuerySyntaxError",
    "QueryEvaluationError",
    "DatasetError",
    "DurabilityError",
    "WalCorruptError",
    "SnapshotCorruptError",
    "RecoveryError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class XmlSyntaxError(ReproError):
    """Raised by the XML tokenizer/parser on malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending character
    when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class LabelingError(ReproError):
    """Raised when a labeling scheme is misused (e.g. unlabeled node)."""


class LabelOverflowError(LabelingError):
    """Raised when a scheme with a bounded label width runs out of room.

    Only the float-interval scheme (QRS) has an intrinsic bound; integer
    schemes use Python's arbitrary-precision ints and never overflow.
    """


class OrderingError(ReproError):
    """Raised on inconsistent use of the SC (simultaneous congruence) table."""


class AuditError(ReproError):
    """Raised by :meth:`repro.obs.audit.AuditReport.raise_if_failed`.

    The message carries the full audit summary: every violated invariant,
    its subject, and the counts of checks that did pass.
    """


class QuerySyntaxError(ReproError):
    """Raised by the XPath-subset parser on malformed query text."""


class QueryEvaluationError(ReproError):
    """Raised by the query engine on unevaluable queries."""


class DatasetError(ReproError):
    """Raised by dataset generators on invalid parameters."""


class DurabilityError(ReproError):
    """Base class for the write-ahead-log / snapshot / recovery subsystem."""


class WalCorruptError(DurabilityError):
    """Raised when a write-ahead log's header or interior records are
    corrupt beyond the repairable torn tail (a torn tail is *not* an
    error — it is truncated silently on open, per the recovery protocol)."""


class SnapshotCorruptError(DurabilityError):
    """Raised when a snapshot file fails its CRC32 footer, is truncated,
    or cannot be decoded.  Recovery reacts by falling back to the previous
    snapshot generation instead of loading bad state."""


class RecoveryError(DurabilityError):
    """Raised when no snapshot generation yields a valid, audit-clean
    collection — durable state is unrecoverable without operator help."""
