"""The ordered document: tree + prime labels + SC table, kept consistent.

:class:`OrderedDocument` is the paper's full system (Sections 3 + 4): nodes
carry top-down prime labels for structural tests, and global document order
lives in an :class:`repro.order.sc_table.SCTable`.  Order-sensitive
insertion follows Section 4.2 exactly:

1. the new node takes a fresh prime self-label (no existing label changes),
2. its order number is its document position, and every node after it gets
   ``order + 1`` — applied as SC-record rewrites, one record at a time.

Two faithful deviations from the paper's presentation, both documented in
DESIGN.md:

* The SC machinery requires ``order < self_label`` (a CRT residue must be
  smaller than its modulus).  Bulk labeling in document order guarantees it
  (the k-th prime exceeds k), but repeated insertions can push a node's
  order up to its prime; when that happens the node is relabeled with a
  fresh prime (its descendants inherit the change) and the cost is charged
  to the update's relabel count.  The paper does not address this case.
* Opt2's power-of-two leaf self-labels are not pairwise coprime and cannot
  serve as CRT moduli, so ordered documents default to the *original*
  top-down scheme — consistent with the paper's own Figure 9, whose
  self-labels are all primes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import OrderingError
from repro.labeling.prime import PrimeLabel, PrimeScheme
from repro.obs import metrics
from repro.order.sc_table import SCTable
from repro.xmlkit.tree import XmlElement

__all__ = ["OrderedDocument", "OrderedUpdateReport"]


@dataclass
class OrderedUpdateReport:
    """Cost breakdown of one order-sensitive update.

    ``total_cost`` is the paper's Figure 18 metric: relabeled nodes plus SC
    record updates, "a record update in the SC table [counts] as a node that
    requires re-labeling".
    """

    new_node: Optional[XmlElement] = None
    relabeled_nodes: List[XmlElement] = field(default_factory=list)
    sc_records_updated: int = 0

    @property
    def node_relabels(self) -> int:
        return len(self.relabeled_nodes)

    @property
    def total_cost(self) -> int:
        return self.node_relabels + self.sc_records_updated


class OrderedDocument:
    """A prime-labeled XML document with CRT-maintained global order."""

    def __init__(
        self,
        root: XmlElement,
        group_size: int | None = 5,
        scheme: Optional[PrimeScheme] = None,
    ) -> None:
        if scheme is None:
            scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        if scheme.power2_leaves:
            raise OrderingError(
                "ordered documents need pairwise-coprime self-labels; "
                "construct the PrimeScheme with power2_leaves=False"
            )
        self.scheme = scheme
        self.sc_table = SCTable(group_size=group_size)
        self.root = root
        scheme.label_tree(root)
        for order, node in enumerate(root.iter_preorder()):
            if order == 0:
                continue  # the root's order is 0 by definition and not stored
            self.sc_table.register(self._self_label(node), order)

    @classmethod
    def from_state(
        cls,
        root: XmlElement,
        scheme: PrimeScheme,
        sc_table: SCTable,
    ) -> "OrderedDocument":
        """Assemble a document from already-restored parts, relabeling nothing.

        The durability subsystem rebuilds the tree, the labeled scheme (with
        its prime generator resumed mid-sequence), and the SC table from a
        snapshot; this constructor wires them together without the bulk
        labeling pass ``__init__`` performs.  The caller vouches that the
        three parts are mutually consistent — recovery verifies that with
        :func:`repro.obs.audit.audit_ordered_document` afterwards.
        """
        if scheme.power2_leaves:
            raise OrderingError(
                "ordered documents need pairwise-coprime self-labels; "
                "construct the PrimeScheme with power2_leaves=False"
            )
        document = cls.__new__(cls)
        document.scheme = scheme
        document.sc_table = sc_table
        document.root = root
        return document

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def _self_label(self, node: XmlElement) -> int:
        label: PrimeLabel = self.scheme.label_of(node)
        return label.self_label

    def label_of(self, node: XmlElement) -> PrimeLabel:
        """The node's prime label (value + self-label)."""
        return self.scheme.label_of(node)

    def order_of(self, node: XmlElement) -> int:
        """Global order number of ``node`` (root is 0), from the SC table."""
        if node.is_root:
            return 0
        return self.sc_table.order_of(self._self_label(node))

    def nodes_in_order(self) -> List[XmlElement]:
        """Every labeled node sorted by SC-derived order — no tree walk."""
        return sorted(self.scheme.labeled_nodes(), key=self.order_of)

    # ------------------------------------------------------------------
    # Order-sensitive updates (Section 4.2)
    # ------------------------------------------------------------------

    @contextmanager
    def batch(self) -> Iterator["OrderedDocument"]:
        """Coalesce SC-record CRT solves across a run of updates.

        Delegates to :meth:`repro.order.sc_table.SCTable.batch`: inside the
        context, inserts and deletes follow exactly the sequential
        algorithm (same grouping, same overflow repairs, same per-record
        cost reports) but each touched SC record is re-solved once when the
        context exits instead of once per mutation.  Must not span
        :meth:`compact`, which replaces the SC table wholesale.
        """
        with self.sc_table.batch():
            yield self

    def _preorder_rank(self, node: XmlElement) -> int:
        """Order number a node at this tree position should carry.

        The node immediately preceding ``node`` in document order is either
        the deepest last descendant of its previous sibling, or its parent;
        the rank is that node's order plus one (correct even when deletions
        have left gaps in the order sequence).
        """
        parent = node.parent
        assert parent is not None
        index = node.child_index
        if index == 0:
            return self.order_of(parent) + 1
        predecessor = parent.children[index - 1]
        while predecessor.children:
            predecessor = predecessor.children[-1]
        return self.order_of(predecessor) + 1

    def insert_child(
        self, parent: XmlElement, index: int, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Insert a new element at sibling position ``index`` under ``parent``.

        Follows Section 4.2: fresh prime for the new node, ``+1`` order shift
        for everything after it (SC record rewrites), one registration for
        the new congruence.
        """
        with metrics.timed("order.insert"):
            report = OrderedUpdateReport()
            relabel = self.scheme.insert_leaf(parent, tag=tag, index=index)
            report.new_node = relabel.new_node
            report.relabeled_nodes.extend(relabel.relabeled)
            assert relabel.new_node is not None
            rank = self._preorder_rank(relabel.new_node)
            touched, overflowed = self.sc_table.shift_orders_from(rank)
            report.sc_records_updated += touched
            report.relabeled_nodes.extend(self._repair_residue_overflows(overflowed))
            report.sc_records_updated += self.sc_table.register(
                self._self_label(relabel.new_node), rank
            )
            metrics.incr("order.inserts")
        return report

    def insert_before(self, reference: XmlElement, tag: str = "new") -> OrderedUpdateReport:
        """Insert a new sibling immediately before ``reference``."""
        if reference.is_root:
            raise OrderingError("cannot insert a sibling of the root")
        return self.insert_child(reference.parent, reference.child_index, tag=tag)

    def insert_after(self, reference: XmlElement, tag: str = "new") -> OrderedUpdateReport:
        """Insert a new sibling immediately after ``reference``."""
        if reference.is_root:
            raise OrderingError("cannot insert a sibling of the root")
        return self.insert_child(reference.parent, reference.child_index + 1, tag=tag)

    def append_child(self, parent: XmlElement, tag: str = "new") -> OrderedUpdateReport:
        """Insert as the last child of ``parent``."""
        return self.insert_child(parent, len(parent.children), tag=tag)

    def delete(self, node: XmlElement) -> OrderedUpdateReport:
        """Delete ``node`` and its subtree.

        Per Section 4.2, "the deletion of nodes from an XML tree does not
        affect any node ordering": remaining orders keep their (now gappy)
        values, which still compare correctly.

        The root cannot be deleted: its self-label 1 was never registered
        in the SC table (order 0 is implicit), so "delete the root" has no
        coherent meaning short of destroying the document — rejected with
        a clear error instead of crashing mid-unregister and leaving the
        table half-emptied.
        """
        if node.is_root:
            raise OrderingError(
                "cannot delete the document root; deleting every child "
                "individually is the closest well-defined operation"
            )
        report = OrderedUpdateReport()
        for gone in node.iter_preorder():
            self.sc_table.unregister(self._self_label(gone))
        self.scheme.delete(node)
        metrics.incr("order.deletes")
        return report

    def _repair_residue_overflows(
        self, overflowed: List[tuple[int, int]]
    ) -> List[XmlElement]:
        """Relabel nodes whose shifted order reached their self-label.

        A CRT residue must stay below its modulus.  The affected node (and,
        through inheritance, its whole subtree) takes a fresh prime — an
        update cost the paper's presentation overlooks; in practice it only
        bites nodes holding the very smallest primes.  The SC table has
        already unregistered these nodes; we relabel and re-register them.
        """
        relabeled: List[XmlElement] = []
        if not overflowed:
            return relabeled
        by_self_label: Dict[int, XmlElement] = {
            self._self_label(node): node for node in self.scheme.labeled_nodes()
        }
        for old_self, order in overflowed:
            node = by_self_label[old_self]
            old_label: PrimeLabel = self.scheme.label_of(node)
            new_self = self.scheme._generator.get_prime()
            while new_self <= order:
                new_self = self.scheme._generator.get_prime()
            self.scheme._set_label(
                node,
                PrimeLabel(value=old_label.parent_value * new_self, self_label=new_self),
            )
            relabeled.append(node)
            for descendant in node.iter_descendants():
                sub: PrimeLabel = self.scheme.label_of(descendant)
                self.scheme._set_label(
                    descendant,
                    PrimeLabel(
                        value=sub.value // old_self * new_self,
                        self_label=sub.self_label,
                    ),
                )
                relabeled.append(descendant)
            self.sc_table.register(new_self, order)
        metrics.incr("order.overflow_relabels", len(relabeled))
        return relabeled

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Renumber orders densely and rebuild the SC table.

        Deletions leave gaps in the order sequence; gaps are harmless for
        comparisons but inflate SC residues and (after heavy churn) SC
        values.  Compaction reassigns orders 1..N in document order and
        rebuilds the table from scratch.  Returns the number of SC records
        in the rebuilt table.  Labels are untouched — order is the SC
        table's business alone.
        """
        self.sc_table = SCTable(group_size=self.sc_table.group_size)
        for order, node in enumerate(self.root.iter_preorder()):
            if order == 0:
                continue
            self.sc_table.register(self._self_label(node), order)
        return len(self.sc_table)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check(self) -> bool:
        """Verify SC-derived order matches true document order everywhere."""
        if not self.sc_table.check():
            return False
        expected = {
            id(node): position
            for position, node in enumerate(self.root.iter_preorder())
        }
        actual = {id(node): self.order_of(node) for node in self.root.iter_preorder()}
        ranked_expected = sorted(expected, key=expected.__getitem__)
        ranked_actual = sorted(actual, key=actual.__getitem__)
        return ranked_expected == ranked_actual
