"""Order-sensitive query axes answered from labels and SC values only.

Section 4.3's three query classes:

a) ``preceding`` / ``following`` — nodes before/after the context node in
   document order, excluding ancestors (preceding) or descendants
   (following);
b) ``preceding-sibling`` / ``following-sibling`` — same-parent nodes before/
   after the context node;
c) ``position() = n`` — the n-th node of a context set, by document order.

Everything here is computed from the stored labels and the SC table — the
tree is never walked, which is the entire point of a labeling scheme.
Sibling detection uses the parent-label identity
(``label // self_label`` equal for siblings); document order comes from
``SC mod self_label``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.labeling.prime import PrimeLabel
from repro.order.document import OrderedDocument
from repro.xmlkit.tree import XmlElement

__all__ = ["OrderedAxes"]


class OrderedAxes:
    """Order-sensitive axes over an :class:`OrderedDocument`."""

    def __init__(self, document: OrderedDocument) -> None:
        self.document = document

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _all_nodes(self) -> Iterable[XmlElement]:
        return self.document.scheme.labeled_nodes()

    def _is_ancestor(self, first: XmlElement, second: XmlElement) -> bool:
        scheme = self.document.scheme
        return scheme.is_ancestor_label(scheme.label_of(first), scheme.label_of(second))

    def _sorted_by_order(self, nodes: Iterable[XmlElement]) -> List[XmlElement]:
        return sorted(nodes, key=self.document.order_of)

    # ------------------------------------------------------------------
    # Axis a: preceding / following
    # ------------------------------------------------------------------

    def following(self, context: XmlElement) -> List[XmlElement]:
        """All nodes after ``context`` in document order, minus descendants."""
        pivot = self.document.order_of(context)
        return self._sorted_by_order(
            node
            for node in self._all_nodes()
            if self.document.order_of(node) > pivot
            and not self._is_ancestor(context, node)
        )

    def preceding(self, context: XmlElement) -> List[XmlElement]:
        """All nodes before ``context`` in document order, minus ancestors."""
        pivot = self.document.order_of(context)
        return self._sorted_by_order(
            node
            for node in self._all_nodes()
            if self.document.order_of(node) < pivot
            and not self._is_ancestor(node, context)
        )

    # ------------------------------------------------------------------
    # Axis b: sibling axes
    # ------------------------------------------------------------------

    def _siblings(self, context: XmlElement) -> List[XmlElement]:
        if context.is_root:
            return []
        context_label: PrimeLabel = self.document.label_of(context)
        parent_value = context_label.parent_value
        return [
            node
            for node in self._all_nodes()
            if node is not context
            and self.document.label_of(node).parent_value == parent_value
            and not node.is_root
        ]

    def following_siblings(self, context: XmlElement) -> List[XmlElement]:
        """Same-parent nodes after ``context``, by SC order."""
        pivot = self.document.order_of(context)
        return self._sorted_by_order(
            node for node in self._siblings(context) if self.document.order_of(node) > pivot
        )

    def preceding_siblings(self, context: XmlElement) -> List[XmlElement]:
        """Same-parent nodes before ``context``, by SC order."""
        pivot = self.document.order_of(context)
        return self._sorted_by_order(
            node for node in self._siblings(context) if self.document.order_of(node) < pivot
        )

    # ------------------------------------------------------------------
    # Axis c: position = n
    # ------------------------------------------------------------------

    def position(self, context_set: Sequence[XmlElement], n: int) -> XmlElement:
        """The ``n``-th node (1-based) of ``context_set`` in document order.

        This is the strategy of Section 4.3: "the author nodes are sorted
        first according to their order numbers; finally, we return the
        author node that is in the [n-th] position".
        """
        if n < 1:
            raise ValueError(f"position must be >= 1, got {n}")
        ranked = self._sorted_by_order(context_set)
        if n > len(ranked):
            raise IndexError(f"position {n} out of range for {len(ranked)} nodes")
        return ranked[n - 1]

    def descendants_by_tag(self, context: XmlElement, tag: str) -> List[XmlElement]:
        """All ``tag`` descendants of ``context``, by label tests alone."""
        return self._sorted_by_order(
            node
            for node in self._all_nodes()
            if node.tag == tag and self._is_ancestor(context, node)
        )
