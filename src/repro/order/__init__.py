"""Document order via simultaneous-congruence (SC) values — Section 4.

The prime labels themselves carry no order.  The paper's trick: group node
*self-labels* (distinct primes) and store, per group, one integer ``SC``
with ``SC mod self_label(v) == order(v)`` for every node ``v`` in the group
(Chinese Remainder Theorem).  Order-sensitive insertion then updates a few
SC records instead of relabeling nodes.

* :mod:`repro.order.sc_table` — the SC table itself.
* :mod:`repro.order.document` — :class:`OrderedDocument`, the facade tying
  tree + prime labels + SC table together, with order-maintaining updates.
* :mod:`repro.order.axes` — the three order-sensitive query classes
  (preceding/following, sibling axes, position=n) answered from labels and
  SC values only.
"""

from repro.order.axes import OrderedAxes
from repro.order.document import OrderedDocument, OrderedUpdateReport
from repro.order.sc_table import SCRecord, SCTable

__all__ = [
    "OrderedAxes",
    "OrderedDocument",
    "OrderedUpdateReport",
    "SCRecord",
    "SCTable",
]
