"""The SC (simultaneous congruence) table of Section 4.

Each record covers a group of node self-labels (pairwise-coprime, in
practice distinct primes) and stores

* ``sc`` — the CRT value with ``sc mod self_label == order`` for every
  member, and
* ``max_prime`` — the largest self-label in the group, which is what the
  paper stores to route lookups ("we record the maximum prime number for
  each SC value in the SC table").

Order numbers follow the paper's convention: the root is order 0 and the
remaining nodes are numbered by document position.

Cost model: the paper counts **one record update as one relabeled node**
("We consider a record update in the SC table as a node that requires
re-labeling", Section 5.4); :meth:`SCTable.shift_orders_from` and
:meth:`SCTable.register` return how many records they touched so the
Figure 18 experiment can charge exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import CapacityError, OrderingError
from repro.obs import metrics
from repro.primes.crt import CongruenceSystem

__all__ = ["SCRecord", "SCTable"]


@dataclass
class SCRecord:
    """One row of the SC table: a congruence system plus its routing key."""

    system: CongruenceSystem
    max_prime: int

    @property
    def sc(self) -> int:
        """The simultaneous congruence value of this record."""
        return self.system.value

    def __len__(self) -> int:
        return len(self.system)


class SCTable:
    """Maintains global document order for prime-labeled nodes.

    Parameters
    ----------
    group_size:
        Maximum number of nodes per SC record.  The paper's Figure 18 run
        uses ``group_size=5`` ("we use one SC value to maintain the order of
        5 nodes"); a single huge record (``group_size=None``) reproduces the
        single-SC-value presentation of Figure 9.
    """

    def __init__(self, group_size: int | None = 5):
        if group_size is not None and group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = group_size
        self._records: List[SCRecord] = []
        self._record_of: Dict[int, int] = {}  # self_label -> record index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SCRecord]:
        return iter(self._records)

    @property
    def records(self) -> Tuple[SCRecord, ...]:
        return tuple(self._records)

    @property
    def node_count(self) -> int:
        return len(self._record_of)

    def record_for(self, self_label: int) -> SCRecord:
        """The record covering ``self_label``.

        Routing follows the paper: scan for the first record whose
        ``max_prime`` is >= the self-label (records are built in ascending
        prime order, so ranges are disjoint); the exact membership index
        keeps this O(1).
        """
        try:
            return self._records[self._record_of[self_label]]
        except KeyError:
            raise OrderingError(f"self-label {self_label} is not in the SC table") from None

    def record_for_by_scan(self, self_label: int) -> SCRecord:
        """The paper's literal routing: scan ``max_prime`` boundaries.

        "We record the maximum prime number for each SC value in the SC
        table.  These maximum prime numbers will indicate the set of nodes
        whose ordering is captured by the corresponding SC value."  The
        O(1) index of :meth:`record_for` returns the same record (the
        equivalence is tested); this method exists to validate the paper's
        storage story — a plain relational SC table needs no side index.
        """
        for record in self._records:
            if self_label <= record.max_prime and self_label in record.system:
                return record
        raise OrderingError(f"self-label {self_label} is not in the SC table")

    def order_of(self, self_label: int) -> int:
        """Order number of the node with ``self_label``: ``SC mod self_label``."""
        return self.record_for(self_label).sc % self_label

    def groups(self) -> List[Tuple[int, List[Tuple[int, int]]]]:
        """Record-by-record ``(max_prime, [(modulus, residue), ...])`` dump.

        This is the durable form of the table: unlike :meth:`orders` it
        preserves the *grouping* of nodes into SC records, which
        :meth:`register` depends on (it appends to the last record while it
        has room) — so a table restored from groups behaves identically to
        the original under further updates.
        """
        return [
            (
                record.max_prime,
                [
                    (modulus, record.system.residue(modulus))
                    for modulus in record.system.moduli
                ],
            )
            for record in self._records
        ]

    @classmethod
    def from_groups(
        cls,
        groups: List[Tuple[int, List[Tuple[int, int]]]],
        group_size: int | None = 5,
    ) -> "SCTable":
        """Rebuild a table from a :meth:`groups` dump, grouping preserved.

        Each group becomes one SC record with its CRT value re-solved from
        the stored residues; ``max_prime`` is validated against the group's
        members (a corrupt snapshot must not smuggle in a broken routing
        key).  Empty groups are legal — :meth:`unregister` can drain a
        record without removing it, and the drained record still absorbs
        future registrations — and round-trip with ``max_prime == 0``.
        """
        table = cls(group_size=group_size)
        for index, (max_prime, members) in enumerate(groups):
            moduli = [modulus for modulus, _residue in members]
            if max_prime != max(moduli, default=0):
                raise OrderingError(
                    f"SC group #{index} routing key {max_prime} != max modulus"
                )
            if table.group_size is not None and len(members) > table.group_size:
                raise OrderingError(
                    f"SC group #{index} holds {len(members)} nodes; "
                    f"group_size is {table.group_size}"
                )
            for modulus, residue in members:
                if not 0 <= residue < modulus:
                    raise OrderingError(
                        f"residue {residue} is not valid for modulus {modulus}"
                    )
                if modulus in table._record_of:
                    raise OrderingError(f"self-label {modulus} appears twice")
                table._record_of[modulus] = index
            system = CongruenceSystem(moduli, [residue for _m, residue in members])
            table._records.append(SCRecord(system=system, max_prime=max_prime))
        return table

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def register(self, self_label: int, order: int) -> int:
        """Add a node's (self-label, order) pair; returns records touched (1).

        Appends to the last record while it has room, else opens a new one.
        ``max_prime`` of the receiving record is raised when the new
        self-label exceeds it — the paper's "search for the largest maximum
        prime number ... and update it".
        """
        if self_label < 2:
            raise OrderingError(
                f"self-label must be >= 2 to carry a residue, got {self_label}"
            )
        if self_label in self._record_of:
            raise OrderingError(f"self-label {self_label} already registered")
        if order < 0:
            raise OrderingError(f"order must be >= 0, got {order}")
        if order >= self_label:
            # The scheme's known capacity limit: a CRT residue must stay
            # below its modulus, and skewed insertion can push an order
            # number past the node's prime.  Typed so the serving layer
            # can classify it instead of treating it as a traceback.
            receiving = (
                len(self._records) - 1
                if self._records
                and (
                    self.group_size is None
                    or len(self._records[-1]) < self.group_size
                )
                else len(self._records)
            )
            metrics.incr("sc.capacity_errors")
            raise CapacityError(
                f"order {order} cannot be a residue of modulus {self_label}; "
                "the node needs a larger prime self-label",
                group=receiving,
                hint="compact() the document to renumber orders densely, "
                "or relabel the node with a larger prime",
            )
        if self._records and (
            self.group_size is None or len(self._records[-1]) < self.group_size
        ):
            record = self._records[-1]
            record.system.append(self_label, order)
            record.max_prime = max(record.max_prime, self_label)
            self._record_of[self_label] = len(self._records) - 1
        else:
            system = CongruenceSystem([self_label], [order])
            self._records.append(SCRecord(system=system, max_prime=self_label))
            self._record_of[self_label] = len(self._records) - 1
            metrics.incr("sc.records_opened")
        metrics.incr("sc.registered")
        metrics.incr("sc.records_touched")
        return 1

    def unregister(self, self_label: int) -> None:
        """Remove a node (deletion never shifts other orders, Section 4.2)."""
        index = self._record_of.pop(self_label, None)
        if index is None:
            raise OrderingError(f"self-label {self_label} is not in the SC table")
        record = self._records[index]
        record.system.remove(self_label)
        if self_label == record.max_prime:
            record.max_prime = max(record.system.moduli, default=0)
        metrics.incr("sc.unregistered")

    def shift_orders_from(self, threshold: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Add 1 to the order of every node with order >= ``threshold``.

        This is the bulk rewrite an order-sensitive insertion triggers for
        "the nodes that come after the newly inserted node".  Returns
        ``(records_touched, overflowed)``:

        * ``records_touched`` — how many SC records were rewritten, the
          paper's update-cost unit;
        * ``overflowed`` — ``(self_label, new_order)`` pairs whose shifted
          order reached the self-label (a CRT residue must stay below its
          modulus, a case the paper does not address).  These nodes are
          *unregistered* here; the caller must relabel them with a larger
          prime and re-register.

        A record whose only change is an overflow-driven ``unregister``
        (its CRT value is recomputed by ``system.remove``) counts toward
        ``records_touched`` too: the rewrite happens whether or not any
        sibling residue also shifted, so Figure 18's cost unit must charge
        it — the earlier accounting silently dropped exactly the case the
        paper overlooks.
        """
        touched = 0
        shifted = 0
        overflowed: List[Tuple[int, int]] = []
        for record in self._records:
            updates: Dict[int, int] = {}
            overflow_here = False
            for modulus in record.system.moduli:
                residue = record.system.residue(modulus)
                if residue < threshold:
                    continue
                if residue + 1 >= modulus:
                    overflowed.append((modulus, residue + 1))
                    overflow_here = True
                else:
                    updates[modulus] = residue + 1
            if updates:
                record.system.set_residues(updates)
                shifted += len(updates)
            if updates or overflow_here:
                touched += 1
        for self_label, _new_order in overflowed:
            self.unregister(self_label)
        metrics.incr("sc.records_touched", touched)
        metrics.incr("sc.shift_span", shifted)
        metrics.incr("sc.residue_overflows", len(overflowed))
        return touched, overflowed

    def set_order(self, self_label: int, order: int) -> int:
        """Rewrite a single node's order; returns records touched (1)."""
        if order < 0:
            raise OrderingError(f"order must be >= 0, got {order}")
        if order >= self_label:
            metrics.incr("sc.capacity_errors")
            raise CapacityError(
                f"order {order} cannot be a residue of modulus {self_label}; "
                "the node needs a larger prime self-label",
                group=self._record_of.get(self_label),
                hint="compact() the document to renumber orders densely, "
                "or relabel the node with a larger prime",
            )
        record = self.record_for(self_label)
        record.system.set_residues({self_label: order})
        metrics.incr("sc.records_touched")
        return 1

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check(self) -> bool:
        """Verify every record's CRT value reproduces its residues."""
        return all(record.system.check() for record in self._records)

    def orders(self) -> Dict[int, int]:
        """Snapshot mapping self-label -> order for every registered node."""
        return {
            self_label: self.order_of(self_label) for self_label in self._record_of
        }
