"""The SC (simultaneous congruence) table of Section 4.

Each record covers a group of node self-labels (pairwise-coprime, in
practice distinct primes) and stores

* ``sc`` — the CRT value with ``sc mod self_label == order`` for every
  member, and
* ``max_prime`` — the largest self-label in the group, which is what the
  paper stores to route lookups ("we record the maximum prime number for
  each SC value in the SC table").

Order numbers follow the paper's convention: the root is order 0 and the
remaining nodes are numbered by document position.

Cost model: the paper counts **one record update as one relabeled node**
("We consider a record update in the SC table as a node that requires
re-labeling", Section 5.4); :meth:`SCTable.shift_orders_from` and
:meth:`SCTable.register` return how many records they touched so the
Figure 18 experiment can charge exactly that.

Batching: inside a :meth:`SCTable.batch` context every record's
:class:`~repro.primes.crt.CongruenceSystem` runs deferred and the records
actually touched are re-solved **once each** when the outermost batch
exits.  On top of that, the ``+1`` order shifts themselves are *coalesced*:
:meth:`shift_orders_from` appends the threshold to a pending list and only
maintains two exact per-record aggregates (the maximum member order and a
conservative minimum residue slack), so each shift costs O(records)
instead of O(nodes).  Pending shifts are *folded* into a record's residue
map lazily — when the record is read, gains or loses a member, or the
batch exits — by replaying the thresholds in sequence, which reproduces
the sequential evolution exactly.  The slack aggregate can only
under-estimate, so a fold is always forced **at the op** where a residue
could reach its modulus: overflow repairs fire at the same operation, with
the same fresh primes, as the unbatched path.  The per-call return values
(records touched, overflowed members) are unchanged, so the paper's cost
accounting is identical batched or not.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.errors import CapacityError, OrderingError
from repro.obs import metrics
from repro.primes.crt import CongruenceSystem

__all__ = ["SCRecord", "SCTable"]


#: Slack sentinel for records with no members (nothing can overflow).
_NO_SLACK = 1 << 62


@dataclass
class SCRecord:
    """One row of the SC table: a congruence system plus its routing key.

    The last three fields are batch-scoped scratch state for coalesced
    shifts (see :meth:`SCTable.batch`); outside a batch they are inert:

    * ``pending_base`` — how many of the table's pending shift thresholds
      are already folded into this record's residues,
    * ``cur_max`` — exact maximum member order (``-1`` when empty),
    * ``cur_slack`` — conservative (never over-estimating) minimum of
      ``modulus - order`` over members; a fold is forced before it could
      reach 0, i.e. before any residue could touch its modulus,
    * ``stale`` — whether any pending threshold actually moved a member
      (``False`` means the pending tail is a no-op for this record).
    """

    system: CongruenceSystem
    max_prime: int
    pending_base: int = 0
    cur_max: int = -1
    cur_slack: int = _NO_SLACK
    stale: bool = False

    @property
    def sc(self) -> int:
        """The simultaneous congruence value of this record."""
        return self.system.value

    def __len__(self) -> int:
        return len(self.system)


class SCTable:
    """Maintains global document order for prime-labeled nodes.

    Parameters
    ----------
    group_size:
        Maximum number of nodes per SC record.  The paper's Figure 18 run
        uses ``group_size=5`` ("we use one SC value to maintain the order of
        5 nodes"); a single huge record (``group_size=None``) reproduces the
        single-SC-value presentation of Figure 9.
    """

    def __init__(self, group_size: int | None = 5) -> None:
        if group_size is not None and group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = group_size
        self._records: List[SCRecord] = []
        self._record_of: Dict[int, int] = {}  # self_label -> record index
        self._batch_depth = 0
        self._batch_dirty: Set[int] = set()  # record indices touched in-batch
        self._pending: List[int] = []  # unfolded shift thresholds, in op order

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SCRecord]:
        return iter(self._records)

    @property
    def records(self) -> Tuple[SCRecord, ...]:
        return tuple(self._records)

    @property
    def node_count(self) -> int:
        return len(self._record_of)

    def record_for(self, self_label: int) -> SCRecord:
        """The record covering ``self_label``.

        Routing follows the paper: scan for the first record whose
        ``max_prime`` is >= the self-label (records are built in ascending
        prime order, so ranges are disjoint); the exact membership index
        keeps this O(1).
        """
        try:
            return self._records[self._record_of[self_label]]
        except KeyError:
            raise OrderingError(f"self-label {self_label} is not in the SC table") from None

    def record_for_by_scan(self, self_label: int) -> SCRecord:
        """The paper's literal routing: scan ``max_prime`` boundaries.

        "We record the maximum prime number for each SC value in the SC
        table.  These maximum prime numbers will indicate the set of nodes
        whose ordering is captured by the corresponding SC value."  The
        O(1) index of :meth:`record_for` returns the same record (the
        equivalence is tested); this method exists to validate the paper's
        storage story — a plain relational SC table needs no side index.
        """
        for record in self._records:
            if self_label <= record.max_prime and self_label in record.system:
                return record
        raise OrderingError(f"self-label {self_label} is not in the SC table")

    def order_of(self, self_label: int) -> int:
        """Order number of the node with ``self_label``: ``SC mod self_label``.

        Reads the stored residue directly — by CRT construction it *is*
        ``sc % self_label`` (:meth:`check` verifies the equivalence), but
        the direct read is O(1) and never forces a lazy CRT solve.  Inside
        a :meth:`batch` the record may carry unfolded shift thresholds;
        they are replayed over the stored residue here, so reads stay
        exact mid-batch without folding the whole record.
        """
        record = self.record_for(self_label)
        order = record.system.residue(self_label)
        if record.stale and record.pending_base < len(self._pending):
            for threshold in self._pending[record.pending_base :]:
                if order >= threshold:
                    order += 1
        return order

    def groups(self) -> List[Tuple[int, List[Tuple[int, int]]]]:
        """Record-by-record ``(max_prime, [(modulus, residue), ...])`` dump.

        This is the durable form of the table: unlike :meth:`orders` it
        preserves the *grouping* of nodes into SC records, which
        :meth:`register` depends on (it appends to the last record while it
        has room) — so a table restored from groups behaves identically to
        the original under further updates.
        """
        if self._batch_depth:
            self._fold_all()
        return [
            (
                record.max_prime,
                [
                    (modulus, record.system.residue(modulus))
                    for modulus in record.system.moduli
                ],
            )
            for record in self._records
        ]

    @classmethod
    def from_groups(
        cls,
        groups: List[Tuple[int, List[Tuple[int, int]]]],
        group_size: int | None = 5,
    ) -> "SCTable":
        """Rebuild a table from a :meth:`groups` dump, grouping preserved.

        Each group becomes one SC record with its CRT value re-solved from
        the stored residues; ``max_prime`` is validated against the group's
        members (a corrupt snapshot must not smuggle in a broken routing
        key).  Empty groups are legal — :meth:`unregister` can drain a
        record without removing it, and the drained record still absorbs
        future registrations — and round-trip with ``max_prime == 0``.
        """
        table = cls(group_size=group_size)
        for index, (max_prime, members) in enumerate(groups):
            moduli = [modulus for modulus, _residue in members]
            if max_prime != max(moduli, default=0):
                raise OrderingError(
                    f"SC group #{index} routing key {max_prime} != max modulus"
                )
            if table.group_size is not None and len(members) > table.group_size:
                raise OrderingError(
                    f"SC group #{index} holds {len(members)} nodes; "
                    f"group_size is {table.group_size}"
                )
            for modulus, residue in members:
                if not 0 <= residue < modulus:
                    raise OrderingError(
                        f"residue {residue} is not valid for modulus {modulus}"
                    )
                if modulus in table._record_of:
                    raise OrderingError(f"self-label {modulus} appears twice")
                table._record_of[modulus] = index
            system = CongruenceSystem(moduli, [residue for _m, residue in members])
            table._records.append(SCRecord(system=system, max_prime=max_prime))
        return table

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------

    @property
    def in_batch(self) -> bool:
        """Whether a :meth:`batch` context is currently open."""
        return self._batch_depth > 0

    def _touch(self, index: int) -> None:
        if self._batch_depth:
            self._batch_dirty.add(index)

    def _refresh_caches(self, index: int) -> None:
        """Recompute a record's exact ``cur_max``/``cur_slack`` aggregates.

        Requires the record's residues to be fully folded (its pending
        tail applied); marks it so.
        """
        record = self._records[index]
        record.pending_base = len(self._pending)
        record.stale = False
        cur_max, cur_slack = -1, _NO_SLACK
        system = record.system
        for modulus in system.moduli:
            order = system.residue(modulus)
            if order > cur_max:
                cur_max = order
            slack = modulus - order
            if slack < cur_slack:
                cur_slack = slack
        record.cur_max = cur_max
        record.cur_slack = cur_slack

    def _fold(self, index: int) -> List[Tuple[int, int]]:
        """Apply a record's pending shift thresholds to its residues.

        Replays ``self._pending[record.pending_base:]`` in operation order
        over every member, which reproduces the sequential per-op shifts
        exactly.  Members whose folded order reaches their modulus are
        returned as ``(self_label, new_order)`` overflow pairs *without*
        writing their residue — the caller unregisters and relabels them,
        exactly as the unbatched :meth:`shift_orders_from` would have.

        Because :meth:`shift_orders_from` forces a fold whenever a record's
        conservative slack drops to 1, an overflow can only ever surface in
        a fold triggered by the shift that caused it — so folds from
        :meth:`register`/:meth:`unregister`/batch-exit never return pairs.
        """
        record = self._records[index]
        tail = self._pending[record.pending_base :]
        record.pending_base = len(self._pending)
        if not tail or not record.stale:
            record.stale = False
            return []
        record.stale = False
        updates: Dict[int, int] = {}
        overflowed: List[Tuple[int, int]] = []
        shifted = 0
        cur_max, cur_slack = -1, _NO_SLACK
        system = record.system
        for modulus in system.moduli:
            base = order = system.residue(modulus)
            for threshold in tail:
                if order >= threshold:
                    order += 1
            if order > base and order >= modulus:
                # The final +1 is the overflowing one; sequential accounting
                # charges it to sc.residue_overflows, not sc.shift_span.
                shifted += order - base - 1
                overflowed.append((modulus, order))
                continue  # unregistered by the caller; keep it out of the caches
            if order > base:
                updates[modulus] = order
                shifted += order - base
            if order > cur_max:
                cur_max = order
            slack = modulus - order
            if slack < cur_slack:
                cur_slack = slack
        if updates:
            system.set_residues(updates)
        record.cur_max = cur_max
        record.cur_slack = cur_slack
        metrics.incr("sc.shift_span", shifted)
        return overflowed

    def _checked_fold(self, index: int) -> None:
        """Fold one record where the slack invariant forbids overflow."""
        leftover = self._fold(index)
        if leftover:  # pragma: no cover - guarded by the slack invariant
            raise OrderingError(
                f"SC record #{index} overflowed outside shift_orders_from: "
                f"{leftover}"
            )

    def _fold_all(self) -> None:
        """Fold every record's pending tail; the pending list empties."""
        for index in range(len(self._records)):
            self._checked_fold(index)
        self._pending.clear()

    @contextmanager
    def batch(self) -> Iterator["SCTable"]:
        """Coalesce CRT solves *and* order shifts across a run of mutations.

        Inside the context every record's congruence system is deferred
        (mutations cost residue-map work only) and
        :meth:`shift_orders_from` coalesces: each call is O(records),
        appending its threshold to a pending list and maintaining exact
        per-record aggregates, instead of rewriting O(nodes) residues.
        Reads (:meth:`order_of`) and membership changes fold the pending
        thresholds lazily, so every operation observes exactly the state
        the sequential path would produce — including residue-overflow
        repairs, which are forced to surface at the very operation that
        caused them.  When the outermost context exits — on success *or*
        failure, so no system is ever left deferred — all residues are
        folded and each record touched during the batch is re-solved
        exactly once (metric ``sc.batch_solves``).  Records the batch
        never touched keep their cached values untouched.  Contexts nest;
        only the outermost one commits.
        """
        self._batch_depth += 1
        if self._batch_depth == 1:
            self._pending.clear()
            for index, record in enumerate(self._records):
                record.system.begin_deferred()
                self._refresh_caches(index)
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._fold_all()
                dirty, self._batch_dirty = self._batch_dirty, set()
                for record in self._records:
                    record.system.end_deferred()
                for index in sorted(dirty):
                    self._records[index].system.value  # the one solve per record
                metrics.incr("sc.batch_solves", len(dirty))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def register(self, self_label: int, order: int) -> int:
        """Add a node's (self-label, order) pair; returns records touched (1).

        Appends to the last record while it has room, else opens a new one.
        ``max_prime`` of the receiving record is raised when the new
        self-label exceeds it — the paper's "search for the largest maximum
        prime number ... and update it".
        """
        if self_label < 2:
            raise OrderingError(
                f"self-label must be >= 2 to carry a residue, got {self_label}"
            )
        if self_label in self._record_of:
            raise OrderingError(f"self-label {self_label} already registered")
        if order < 0:
            raise OrderingError(f"order must be >= 0, got {order}")
        if order >= self_label:
            # The scheme's known capacity limit: a CRT residue must stay
            # below its modulus, and skewed insertion can push an order
            # number past the node's prime.  Typed so the serving layer
            # can classify it instead of treating it as a traceback.
            receiving = (
                len(self._records) - 1
                if self._records
                and (
                    self.group_size is None
                    or len(self._records[-1]) < self.group_size
                )
                else len(self._records)
            )
            metrics.incr("sc.capacity_errors")
            raise CapacityError(
                f"order {order} cannot be a residue of modulus {self_label}; "
                "the node needs a larger prime self-label",
                group=receiving,
                hint="compact() the document to renumber orders densely, "
                "or relabel the node with a larger prime",
            )
        if self._records and (
            self.group_size is None or len(self._records[-1]) < self.group_size
        ):
            index = len(self._records) - 1
            if self._batch_depth:
                # Fold first so the new member and the existing ones share
                # the same (current) coordinate space.
                self._checked_fold(index)
            record = self._records[index]
            record.system.append(self_label, order)
            record.max_prime = max(record.max_prime, self_label)
            self._record_of[self_label] = index
            if self._batch_depth:
                record.cur_max = max(record.cur_max, order)
                record.cur_slack = min(record.cur_slack, self_label - order)
        else:
            system = CongruenceSystem([self_label], [order])
            record = SCRecord(system=system, max_prime=self_label)
            if self._batch_depth:
                system.begin_deferred()
                record.pending_base = len(self._pending)
                record.cur_max = order
                record.cur_slack = self_label - order
            self._records.append(record)
            self._record_of[self_label] = len(self._records) - 1
            metrics.incr("sc.records_opened")
        self._touch(self._record_of[self_label])
        metrics.incr("sc.registered")
        metrics.incr("sc.records_touched")
        return 1

    def unregister(self, self_label: int) -> None:
        """Remove a node (deletion never shifts other orders, Section 4.2)."""
        index = self._record_of.pop(self_label, None)
        if index is None:
            raise OrderingError(f"self-label {self_label} is not in the SC table")
        if self._batch_depth:
            self._checked_fold(index)
        record = self._records[index]
        record.system.remove(self_label)
        if self_label == record.max_prime:
            record.max_prime = max(record.system.moduli, default=0)
        if self._batch_depth:
            self._refresh_caches(index)
        self._touch(index)
        metrics.incr("sc.unregistered")

    def shift_orders_from(self, threshold: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Add 1 to the order of every node with order >= ``threshold``.

        This is the bulk rewrite an order-sensitive insertion triggers for
        "the nodes that come after the newly inserted node".  Returns
        ``(records_touched, overflowed)``:

        * ``records_touched`` — how many SC records were rewritten, the
          paper's update-cost unit;
        * ``overflowed`` — ``(self_label, new_order)`` pairs whose shifted
          order reached the self-label (a CRT residue must stay below its
          modulus, a case the paper does not address).  These nodes are
          *unregistered* here; the caller must relabel them with a larger
          prime and re-register.

        A record whose only change is an overflow-driven ``unregister``
        (its CRT value is recomputed by ``system.remove``) counts toward
        ``records_touched`` too: the rewrite happens whether or not any
        sibling residue also shifted, so Figure 18's cost unit must charge
        it — the earlier accounting silently dropped exactly the case the
        paper overlooks.

        Inside a :meth:`batch` the shift is coalesced: the threshold joins
        the pending list and only the per-record aggregates move, O(records)
        instead of O(nodes).  A record is touched iff its maximum member
        order reaches the threshold — the same criterion the member scan
        applies — and whenever the conservative slack says a member *could*
        overflow, the record is folded on the spot so the overflow (if
        real) is repaired at this very operation.
        """
        if self._batch_depth:
            return self._shift_coalesced(threshold)
        touched = 0
        shifted = 0
        overflowed: List[Tuple[int, int]] = []
        for index, record in enumerate(self._records):
            updates: Dict[int, int] = {}
            overflow_here = False
            for modulus in record.system.moduli:
                residue = record.system.residue(modulus)
                if residue < threshold:
                    continue
                if residue + 1 >= modulus:
                    overflowed.append((modulus, residue + 1))
                    overflow_here = True
                else:
                    updates[modulus] = residue + 1
            if updates:
                record.system.set_residues(updates)
                shifted += len(updates)
            if updates or overflow_here:
                touched += 1
                self._touch(index)
        for self_label, _new_order in overflowed:
            self.unregister(self_label)
        metrics.incr("sc.records_touched", touched)
        metrics.incr("sc.shift_span", shifted)
        metrics.incr("sc.residue_overflows", len(overflowed))
        return touched, overflowed

    def _shift_coalesced(self, threshold: int) -> Tuple[int, List[Tuple[int, int]]]:
        """The batched shift: O(records) aggregate maintenance per call.

        ``cur_max >= threshold`` decides "touched" exactly (some member has
        order >= threshold iff the maximum does).  A touched record's
        maximum grows by exactly one, and its minimum slack shrinks by at
        most one — decrementing unconditionally keeps ``cur_slack`` a safe
        under-estimate.  When it hits 1 a residue may reach its modulus on
        this very shift, so the record folds now and any real overflow is
        returned from *this* call, keeping overflow repair (and the prime
        issuance it triggers) on the sequential schedule.
        """
        self._pending.append(threshold)
        touched = 0
        overflowed: List[Tuple[int, int]] = []
        dirty = self._batch_dirty
        for index, record in enumerate(self._records):
            if record.cur_max < threshold:
                continue
            record.cur_max += 1
            record.cur_slack -= 1
            record.stale = True
            touched += 1
            dirty.add(index)
            if record.cur_slack <= 1:
                overflowed.extend(self._fold(index))
        for self_label, _new_order in overflowed:
            self.unregister(self_label)
        metrics.incr("sc.records_touched", touched)
        metrics.incr("sc.residue_overflows", len(overflowed))
        return touched, overflowed

    def set_order(self, self_label: int, order: int) -> int:
        """Rewrite a single node's order; returns records touched (1)."""
        if order < 0:
            raise OrderingError(f"order must be >= 0, got {order}")
        if order >= self_label:
            metrics.incr("sc.capacity_errors")
            raise CapacityError(
                f"order {order} cannot be a residue of modulus {self_label}; "
                "the node needs a larger prime self-label",
                group=self._record_of.get(self_label),
                hint="compact() the document to renumber orders densely, "
                "or relabel the node with a larger prime",
            )
        record = self.record_for(self_label)  # validates membership
        index = self._record_of[self_label]
        if self._batch_depth:
            self._checked_fold(index)
        record.system.set_residues({self_label: order})
        if self._batch_depth:
            self._refresh_caches(index)
        self._touch(index)
        metrics.incr("sc.records_touched")
        return 1

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check(self) -> bool:
        """Verify every record's CRT value reproduces its residues."""
        return all(record.system.check() for record in self._records)

    def orders(self) -> Dict[int, int]:
        """Snapshot mapping self-label -> order for every registered node."""
        return {
            self_label: self.order_of(self_label) for self_label in self._record_of
        }
