"""Result tables: titled rows with text and bar-chart rendering.

This is the neutral home of :class:`ResultTable`, the tabular value
object every layer is allowed to produce — benchmark exhibits
(:mod:`repro.bench`), but also core-layer reports like the label-space
comparison in :mod:`repro.labeling.stats`.  It lives outside
``repro.bench`` on purpose: the core layers (``primes``, ``labeling``,
``order``, ``xmlkit``) must not import the benchmark harness (layering
rule R3 in ``docs/ANALYSIS.md``), yet they legitimately render tables.
This module imports nothing from ``repro``, so anyone may depend on it.

``repro.bench.harness`` re-exports :class:`ResultTable` for backwards
compatibility and keeps the metrics-capture wrapper that *does* belong
to the benchmark layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ResultTable"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of experiment results.

    ``columns`` names the series; each row is keyed by the first column.
    Renders to aligned monospaced text (:meth:`to_text`) and, for numeric
    series, a crude inline bar chart (:meth:`to_chart`) so running a
    benchmark shows the figure's *shape* in the terminal.
    """

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    note: Optional[str] = None
    #: Observability snapshot captured while building the exhibit (see
    #: :func:`repro.bench.harness.capture_metrics`); exported to JSON,
    #: ignored by the text render.
    metrics: Optional[Dict[str, Any]] = None

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells; table {self.title!r} "
                f"has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        """Values of the named column, top to bottom."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in table {self.title!r}") from None
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Rows as column-keyed dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_text(self) -> str:
        """Render the table as aligned monospaced text."""
        header = [str(column) for column in self.columns]
        body = [[_format_cell(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(header, widths)))
        for row in body:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)

    def to_chart(self, width: int = 40) -> str:
        """Render numeric columns as horizontal bars (one block per row)."""
        numeric_columns = [
            index
            for index in range(1, len(self.columns))
            if all(isinstance(row[index], (int, float)) for row in self.rows)
        ]
        if not numeric_columns or not self.rows:
            return self.to_text()
        peak = max(
            max(abs(float(row[index])) for index in numeric_columns) for row in self.rows
        )
        scale = width / peak if peak else 0.0
        lines = [self.title, "-" * len(self.title)]
        label_width = max(len(str(row[0])) for row in self.rows)
        series_width = max(len(str(self.columns[i])) for i in numeric_columns)
        for row in self.rows:
            for index in numeric_columns:
                value = float(row[index])
                bar = "#" * max(int(value * scale), 0)
                lines.append(
                    f"{str(row[0]).rjust(label_width)} "
                    f"{str(self.columns[index]).ljust(series_width)} "
                    f"|{bar} {_format_cell(row[index])}"
                )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()
