"""Resilient serving layer: retries, circuit breaker, degraded mode.

The durability subsystem (:mod:`repro.durable`) answers "what survives a
crash?"; this package answers "what survives a *disk having a bad day*?"
— transient I/O errors, stalls, and fsync failures that kill individual
operations without killing the process.  The pieces:

* :mod:`repro.resilient.policy` — fault domains, classification, and the
  retry/backoff/deadline and breaker-threshold knobs,
* :mod:`repro.resilient.breaker` — the circuit breaker
  (CLOSED → OPEN → HALF_OPEN) guarding the durable path,
* :mod:`repro.resilient.collection` — :class:`ResilientCollection`, the
  serving wrapper: retries transient faults with WAL repair in between,
  degrades to in-memory serving when the breaker trips, and re-syncs
  storage (checkpoint × 2 + WAL restart) on recovery,
* :mod:`repro.resilient.chaos` — :class:`ChaosInjector`, seeded
  probabilistic transient faults at every WAL/snapshot boundary; built
  from ``$REPRO_CHAOS`` by the CLI.

See ``docs/RESILIENCE.md`` for the fault-domain table, knob reference,
degraded-mode semantics, and the chaos test matrix.
"""

from repro.resilient.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilient.chaos import ALL_SITES, ChaosInjector, TransientIOError
from repro.resilient.collection import DEGRADED_MODES, ResilientCollection
from repro.resilient.policy import (
    BreakerPolicy,
    FaultDomain,
    RetryPolicy,
    classify_fault,
)

__all__ = [
    "ResilientCollection",
    "DEGRADED_MODES",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ChaosInjector",
    "TransientIOError",
    "ALL_SITES",
    "FaultDomain",
    "classify_fault",
    "RetryPolicy",
    "BreakerPolicy",
]
