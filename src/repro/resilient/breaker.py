"""A circuit breaker for the durable storage path.

Retries alone make a *briefly* faulty disk invisible; they make a *dead*
disk expensive, because every operation still burns its full retry budget
before failing.  The breaker is the standard fix (Nygard's "Release It!"
pattern): count consecutive failures, and past a threshold stop touching
the failing dependency at all — fail fast, serve what can be served from
memory, and probe occasionally to notice recovery.

States and transitions::

              failure_threshold
    CLOSED ────────────────────────▶ OPEN
      ▲  ▲                            │ cooldown elapsed
      │  │ probe succeeds             ▼
      │  └──────────────────────── HALF_OPEN
      │                               │ probe fails
      └── (success resets the        ─┘ (back to OPEN,
           failure streak)              cooldown restarts)

The breaker is deliberately dumb about *what* failed — it only counts.
Classification (only TRANSIENT faults count as breaker failures) is the
caller's job, and so is deciding what OPEN means (the resilient
collection maps it to degraded mode).  The clock is injectable so tests
drive the cooldown deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs import metrics
from repro.resilient.policy import BreakerPolicy

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding for ``resilient.breaker.state``.
_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Counts consecutive failures and gates access to a dependency."""

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Lifetime transition counts, for health reports.
        self.times_opened = 0
        self.times_closed = 0
        self.probes = 0

    @property
    def state(self) -> str:
        """Current state, cooldown-aware: OPEN reports HALF_OPEN once the
        cooldown has elapsed and a probe would be admitted."""
        if self._state == OPEN and self._cooldown_elapsed():
            return HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Length of the current failure streak (0 after any success)."""
        return self._consecutive_failures

    def _cooldown_elapsed(self) -> bool:
        return self.clock() - self._opened_at >= self.policy.cooldown_seconds

    def allow(self) -> bool:
        """Whether the caller may attempt the guarded dependency now.

        CLOSED always admits.  OPEN admits nothing until the cooldown
        elapses, then admits exactly one attempt as the half-open probe;
        further calls are rejected until that probe's outcome is recorded.
        """
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN:
            return False  # a probe is already in flight
        if self._cooldown_elapsed():
            self._state = HALF_OPEN
            self.probes += 1
            metrics.incr("resilient.breaker.probes")
            self._publish()
            return True
        return False

    def record_success(self) -> None:
        """Note a successful attempt; closes the circuit from any state."""
        self._consecutive_failures = 0
        if self._state != CLOSED:
            self._state = CLOSED
            self.times_closed += 1
            metrics.incr("resilient.breaker.closed")
        self._publish()

    def record_failure(self) -> None:
        """Note a failed attempt; may open (or re-open) the circuit."""
        self._consecutive_failures += 1
        if self._state == HALF_OPEN:
            # The probe failed: straight back to OPEN, cooldown restarts.
            self._trip()
        elif (
            self._state == CLOSED
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip()
        else:
            self._publish()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self.clock()
        self.times_opened += 1
        metrics.incr("resilient.breaker.opened")
        self._publish()

    def _publish(self) -> None:
        metrics.gauge("resilient.breaker.state", _STATE_GAUGE[self._state])

    def force_open(self) -> None:
        """Trip the breaker unconditionally (operator override)."""
        self._consecutive_failures = max(
            self._consecutive_failures, self.policy.failure_threshold
        )
        self._trip()
